"""Shared test fixtures: stub nodes and hand-driven TCP harnesses."""

from __future__ import annotations

from typing import List, Optional

from repro.net.node import Node
from repro.net.packet import Packet, PacketFactory
from repro.sim.engine import Simulator


class CaptureNode(Node):
    """A node that records what agents transmit instead of forwarding."""

    def __init__(self, sim: Simulator, name: str = "capture") -> None:
        super().__init__(sim, name)
        self.transmitted: List[Packet] = []

    def forward(self, packet: Packet) -> None:  # overrides routing entirely
        self.transmitted.append(packet)

    def data_seqnos(self) -> List[int]:
        """Sequence numbers of captured DATA packets, in order."""
        return [p.seqno for p in self.transmitted if p.is_data]


class TcpHarness:
    """Drive a TCP sender by hand: feed ACKs, observe transmissions.

    The sender sits on a :class:`CaptureNode`; nothing is actually
    delivered, so tests control time (via the simulator) and the ACK
    stream completely.
    """

    def __init__(self, sender_cls, sender_kwargs: Optional[dict] = None) -> None:
        self.sim = Simulator()
        self.node = CaptureNode(self.sim)
        self.factory = PacketFactory()
        self.sender = sender_cls(
            self.sim,
            self.node,
            flow_id=0,
            peer="peer",
            packet_factory=self.factory,
            **(sender_kwargs or {}),
        )

    @property
    def transmitted(self) -> List[Packet]:
        return self.node.transmitted

    def sent_seqnos(self) -> List[int]:
        return self.node.data_seqnos()

    def give_app_packets(self, n: int) -> None:
        """Hand ``n`` application packets to the sender."""
        self.sender.app_arrival(n)

    def deliver_ack(self, ackno: int, ecn_echo: bool = False) -> None:
        """Inject an ACK into the sender at the current time."""
        ack = self.factory.ack(
            flow_id=0,
            src="peer",
            dst=self.node.name,
            ackno=ackno,
            now=self.sim.now,
            ecn_echo=ecn_echo,
        )
        self.sender.receive(ack)

    def advance(self, dt: float) -> None:
        """Run the simulator forward ``dt`` seconds."""
        self.sim.run(until=self.sim.now + dt)

    def ack_all_outstanding(self) -> None:
        """Cumulatively acknowledge everything transmitted so far."""
        if self.sender.maxseq >= 0:
            self.deliver_ack(self.sender.maxseq)
