"""Tests for replicated (multi-seed) experiments."""

import pytest

from repro.experiments.config import paper_config
from repro.experiments.replication import (
    DEFAULT_METRICS,
    compare,
    replicate,
)


@pytest.fixture(scope="module")
def reno_replication():
    config = paper_config(protocol="reno", n_clients=4, duration=6.0)
    return replicate(config, n_replicas=3, base_seed=10)


class TestReplicate:
    def test_runs_requested_replicas(self, reno_replication):
        assert len(reno_replication.replicas) == 3
        assert reno_replication.seeds == (10, 11, 12)

    def test_replicas_differ(self, reno_replication):
        covs = {replica.cov for replica in reno_replication.replicas}
        assert len(covs) > 1  # different seeds, different sample paths

    def test_summaries_cover_default_metrics(self, reno_replication):
        assert set(reno_replication.summaries) == set(DEFAULT_METRICS)

    def test_summary_statistics_consistent(self, reno_replication):
        summary = reno_replication.summary("cov")
        values = [replica.cov for replica in reno_replication.replicas]
        assert summary.mean == pytest.approx(sum(values) / len(values))
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.values == values

    def test_render_table(self, reno_replication):
        table = reno_replication.render_table()
        assert "cov" in table
        assert "replicas" in table

    def test_single_replica_degenerate_interval(self):
        config = paper_config(protocol="udp", n_clients=2, duration=3.0)
        result = replicate(config, n_replicas=1)
        summary = result.summary("cov")
        assert summary.ci_low == summary.ci_high == summary.mean
        assert summary.std == 0.0

    def test_invalid_replica_count(self):
        with pytest.raises(ValueError):
            replicate(paper_config(), n_replicas=0)

    def test_deterministic_given_base_seed(self):
        config = paper_config(protocol="udp", n_clients=2, duration=3.0)
        a = replicate(config, n_replicas=2, base_seed=5)
        b = replicate(config, n_replicas=2, base_seed=5)
        assert a.summary("cov").mean == b.summary("cov").mean


class TestCompare:
    def test_difference_sign(self):
        heavy = replicate(
            paper_config(protocol="udp", n_clients=8, duration=4.0), n_replicas=2
        )
        light = replicate(
            paper_config(protocol="udp", n_clients=2, duration=4.0), n_replicas=2
        )
        difference, _ = compare(heavy, light, "throughput_packets")
        assert difference > 0

    def test_disjoint_detection(self):
        heavy = replicate(
            paper_config(protocol="udp", n_clients=8, duration=4.0), n_replicas=3
        )
        light = replicate(
            paper_config(protocol="udp", n_clients=2, duration=4.0), n_replicas=3
        )
        _, disjoint = compare(heavy, light, "throughput_packets")
        assert disjoint  # 4x the load: no overlap possible
