"""Unit tests for the trace recorder."""

import csv

from repro.sim.trace import TraceRecorder


def test_records_all_categories_by_default():
    trace = TraceRecorder()
    trace.record(1.0, "a", x=1)
    trace.record(2.0, "b", y=2)
    assert len(trace) == 2


def test_enabled_filter_drops_other_categories():
    trace = TraceRecorder(enabled=["keep"])
    trace.record(1.0, "keep", x=1)
    trace.record(2.0, "drop", x=2)
    assert len(trace) == 1
    assert trace.rows()[0].category == "keep"


def test_enable_disable():
    trace = TraceRecorder(enabled=[])
    assert not trace.wants("a")
    trace.enable("a")
    assert trace.wants("a")
    trace.record(1.0, "a")
    trace.disable("a")
    trace.record(2.0, "a")
    assert len(trace) == 1


def test_rows_filtered_by_category():
    trace = TraceRecorder()
    trace.record(1.0, "a", v=1)
    trace.record(2.0, "b", v=2)
    trace.record(3.0, "a", v=3)
    assert [r.time for r in trace.rows("a")] == [1.0, 3.0]


def test_row_get_with_default():
    trace = TraceRecorder()
    trace.record(1.0, "a", v=1)
    row = trace.rows()[0]
    assert row.get("v") == 1
    assert row.get("missing", 9) == 9


def test_clear():
    trace = TraceRecorder()
    trace.record(1.0, "a")
    trace.clear()
    assert len(trace) == 0


def test_iteration():
    trace = TraceRecorder()
    trace.record(1.0, "a")
    trace.record(2.0, "b")
    assert [row.category for row in trace] == ["a", "b"]


def test_to_csv_union_of_fields(tmp_path):
    trace = TraceRecorder()
    trace.record(1.0, "a", x=1)
    trace.record(2.0, "a", y=2)
    path = tmp_path / "trace.csv"
    written = trace.to_csv(str(path))
    assert written == 2
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["time", "category", "x", "y"]
    assert rows[1] == ["1.0", "a", "1", ""]
    assert rows[2] == ["2.0", "a", "", "2"]
