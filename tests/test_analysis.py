"""Unit tests for the analysis utilities (stats, timeseries, plots, tables, io)."""

import json

import numpy as np
import pytest

from repro.analysis.asciiplot import ascii_series_plot, ascii_step_plot
from repro.analysis.io import results_to_csv, results_to_json
from repro.analysis.stats import (
    Summary,
    confidence_interval,
    jains_fairness_index,
    summarize,
)
from repro.analysis.tables import format_table
from repro.analysis.timeseries import (
    sample_step_series,
    step_mean,
    uniform_grid,
)


class TestStats:
    def test_summarize_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.n == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)
        assert summary.cov == pytest.approx(summary.std / summary.mean)

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summary_cov_zero_mean(self):
        summary = Summary(n=2, mean=0.0, std=0.0, minimum=0, maximum=0, median=0)
        assert summary.cov == 0.0

    def test_confidence_interval_contains_mean(self):
        values = np.random.default_rng(0).normal(10, 2, size=400)
        low, high = confidence_interval(values, 0.95)
        assert low < values.mean() < high
        # ~1.96 * 2/sqrt(400) ~ 0.2 half-width.
        assert (high - low) / 2 == pytest.approx(0.196, rel=0.15)

    def test_confidence_interval_single_sample(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)

    def test_confidence_interval_bad_level(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], level=0.5)

    def test_fairness_equal_allocations(self):
        assert jains_fairness_index([10, 10, 10]) == pytest.approx(1.0)

    def test_fairness_single_hog(self):
        # One of n flows getting everything: index = 1/n.
        assert jains_fairness_index([30, 0, 0]) == pytest.approx(1 / 3)

    def test_fairness_empty_raises(self):
        with pytest.raises(ValueError):
            jains_fairness_index([])


class TestTimeseries:
    LOG = [(1.0, 10.0), (3.0, 20.0)]

    def test_sample_before_first_change_uses_initial(self):
        values = sample_step_series(self.LOG, [0.5], initial=5.0)
        assert list(values) == [5.0]

    def test_sample_holds_value_between_changes(self):
        values = sample_step_series(self.LOG, [1.0, 2.0, 3.0, 4.0])
        assert list(values) == [10.0, 10.0, 20.0, 20.0]

    def test_sample_empty_log(self):
        values = sample_step_series([], [0.0, 1.0], initial=7.0)
        assert list(values) == [7.0, 7.0]

    def test_uniform_grid(self):
        grid = uniform_grid(0.0, 1.0, 0.25)
        assert list(grid) == [0.0, 0.25, 0.5, 0.75]

    def test_uniform_grid_validation(self):
        with pytest.raises(ValueError):
            uniform_grid(0.0, 1.0, 0.0)
        assert uniform_grid(1.0, 1.0, 0.1).size == 0

    def test_step_mean_time_weighted(self):
        # value 0 on [0,1), 10 on [1,3), 20 on [3,4] -> (0 + 20 + 20)/4.
        assert step_mean(self.LOG, 0.0, 4.0, initial=0.0) == pytest.approx(10.0)

    def test_step_mean_window_after_changes(self):
        assert step_mean(self.LOG, 5.0, 6.0) == pytest.approx(20.0)

    def test_step_mean_invalid_window(self):
        with pytest.raises(ValueError):
            step_mean(self.LOG, 2.0, 2.0)


class TestAsciiPlot:
    def test_series_plot_contains_markers_and_legend(self):
        plot = ascii_series_plot(
            {"a": ([0, 1, 2], [0, 1, 2]), "b": ([0, 1, 2], [2, 1, 0])},
            width=40,
            height=10,
            title="T",
        )
        assert "T" in plot
        assert "legend:" in plot
        assert "o a" in plot and "* b" in plot

    def test_empty_series(self):
        assert ascii_series_plot({}) == "(no data)"

    def test_non_finite_only(self):
        plot = ascii_series_plot({"a": ([0.0], [float("nan")])})
        assert plot == "(no finite data)"

    def test_axis_labels_present(self):
        plot = ascii_series_plot(
            {"a": ([0, 10], [5, 15])}, width=30, height=8, xlabel="clients"
        )
        assert "clients" in plot
        assert "15" in plot  # y max label

    def test_step_plot(self):
        plot = ascii_step_plot([(0.0, 1.0), (5.0, 3.0)], 0.0, 10.0, width=30)
        assert "time (s)" in plot


class TestTables:
    def test_alignment_and_headers(self):
        table = format_table(
            ["name", "value"], [["reno", 1.5], ["vegas", 2.25]], precision=2
        )
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in table and "2.25" in table

    def test_title(self):
        table = format_table(["a"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_nan_rendered_as_dash(self):
        table = format_table(["x"], [[float("nan")]])
        assert "-" in table.splitlines()[-1]

    def test_bool_rendering(self):
        table = format_table(["flag"], [[True], [False]])
        assert "yes" in table and "no" in table

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table


class TestIO:
    def test_json_roundtrip_with_numpy(self, tmp_path):
        path = tmp_path / "out.json"
        results_to_json({"arr": np.array([1.0, 2.0]), "x": 3}, str(path))
        data = json.loads(path.read_text())
        assert data == {"arr": [1.0, 2.0], "x": 3}

    def test_json_serializes_dataclasses(self, tmp_path):
        from repro.analysis.stats import Summary

        summary = summarize([1.0, 2.0])
        path = tmp_path / "s.json"
        results_to_json(summary, str(path))
        data = json.loads(path.read_text())
        assert data["n"] == 2

    def test_csv_field_union(self, tmp_path):
        path = tmp_path / "out.csv"
        n = results_to_csv([{"a": 1}, {"b": 2}], str(path))
        assert n == 2
        text = path.read_text()
        assert text.splitlines()[0] == "a,b"

    def test_csv_explicit_fields(self, tmp_path):
        path = tmp_path / "out.csv"
        results_to_csv([{"a": 1, "b": 2}], str(path), field_names=["b"])
        assert path.read_text().splitlines()[0] == "b"
