"""Documentation consistency checks.

Cheap guards that the repository's documentation deliverables exist,
cover what they promise, and stay consistent with the code (e.g. the
Table-1 values quoted in DESIGN.md match the config defaults).
"""

import pathlib


ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name):
    path = ROOT / name
    assert path.exists(), f"missing {name}"
    return path.read_text()


class TestReadme:
    def test_mentions_paper_and_quickstart(self):
        text = read("README.md")
        assert "ICDCS 2000" in text
        assert "run_scenario" in text
        assert "pytest tests/" in text
        assert "benchmarks/" in text

    def test_documents_every_example(self):
        text = read("README.md")
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in text, f"README does not mention {example.name}"


class TestDesign:
    def test_has_experiment_index_for_every_figure(self):
        text = read("DESIGN.md")
        for artifact in ["Table 1", "Figure 2", "Figure 13"]:
            assert artifact in text
        for figure_id in ["F2", "F3", "F4", "F13"]:
            assert f"| {figure_id} " in text

    def test_documents_parameter_reconstruction(self):
        text = read("DESIGN.md")
        assert "Parameter reconstruction" in text
        assert "OCR" in text

    def test_quoted_table1_values_match_config(self):
        from repro.experiments.config import ScenarioConfig

        config = ScenarioConfig()
        text = read("DESIGN.md")
        assert "3 Mbps" in text
        assert "**50 packets**" in text
        assert config.buffer_capacity == 50
        assert config.bottleneck_rate_bps == 3e6

    def test_design_lists_every_bench_ablation(self):
        text = read("DESIGN.md")
        for bench in (ROOT / "benchmarks").glob("bench_ablation_*.py"):
            assert bench.name in text, f"DESIGN.md does not mention {bench.name}"


class TestExperiments:
    def test_covers_every_paper_artifact(self):
        text = read("EXPERIMENTS.md")
        for artifact in [
            "Table 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figures 5–9",
            "Figures 10–12",
            "Figure 13",
        ]:
            assert artifact in text, artifact

    def test_has_deviations_section(self):
        text = read("EXPERIMENTS.md")
        assert "Deviations" in text


class TestBenchmarkCoverage:
    def test_a_bench_exists_for_every_paper_artifact(self):
        names = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        assert "bench_table1_parameters.py" in names
        assert "bench_fig02_cov.py" in names
        assert "bench_fig03_throughput.py" in names
        assert "bench_fig04_loss.py" in names
        assert "bench_fig05_09_reno_cwnd.py" in names
        assert "bench_fig10_12_vegas_cwnd.py" in names
        assert "bench_fig13_timeout_ratio.py" in names

    def test_public_modules_have_docstrings(self):
        import importlib
        import pkgutil

        import repro

        missing = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            if not module.__doc__:
                missing.append(module_info.name)
        assert missing == []
