"""Unit tests for the complementary burstiness measures."""

import math

import numpy as np
import pytest

from repro.core.burstiness import (
    BurstinessProfile,
    aggregate_counts,
    index_of_dispersion,
    multiscale_cov,
    peak_to_mean,
)


class TestIDC:
    def test_poisson_idc_near_one(self):
        counts = np.random.default_rng(0).poisson(20.0, size=20000)
        assert index_of_dispersion(counts) == pytest.approx(1.0, rel=0.05)

    def test_constant_idc_zero(self):
        assert index_of_dispersion([7, 7, 7]) == 0.0

    def test_all_zero(self):
        assert index_of_dispersion([0, 0]) == 0.0

    def test_empty_nan(self):
        assert math.isnan(index_of_dispersion([]))


class TestPeakToMean:
    def test_known_value(self):
        assert peak_to_mean([1, 2, 3]) == pytest.approx(1.5)

    def test_constant(self):
        assert peak_to_mean([4, 4]) == 1.0

    def test_empty_nan(self):
        assert math.isnan(peak_to_mean([]))

    def test_zero_mean(self):
        assert peak_to_mean([0, 0]) == 0.0


class TestAggregation:
    def test_sums_adjacent_groups(self):
        assert list(aggregate_counts([1, 2, 3, 4, 5, 6], 2)) == [3, 7, 11]

    def test_discards_remainder(self):
        assert list(aggregate_counts([1, 2, 3, 4, 5], 2)) == [3, 7]

    def test_factor_one_identity(self):
        assert list(aggregate_counts([1, 2, 3], 1)) == [1, 2, 3]

    def test_factor_larger_than_series(self):
        assert aggregate_counts([1, 2], 5).size == 0

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            aggregate_counts([1], 0)


class TestMultiscale:
    def test_iid_counts_smooth_like_sqrt_m(self):
        counts = np.random.default_rng(2).poisson(20.0, size=4096)
        scales = multiscale_cov(counts, factors=(1, 4, 16))
        assert scales[4] == pytest.approx(scales[1] / 2.0, rel=0.15)
        assert scales[16] == pytest.approx(scales[1] / 4.0, rel=0.2)

    def test_skips_scales_with_too_few_groups(self):
        scales = multiscale_cov([1, 2, 3, 4], factors=(1, 2, 4))
        assert 4 not in scales
        assert 1 in scales


class TestProfile:
    def test_from_counts_consistency(self):
        counts = [2, 4, 6, 8]
        profile = BurstinessProfile.from_counts(counts)
        assert profile.mean == pytest.approx(5.0)
        assert profile.cov == pytest.approx(np.std(counts) / 5.0)
        assert profile.peak_to_mean == pytest.approx(1.6)
        assert 1 in profile.multiscale

    def test_describe_mentions_measures(self):
        text = BurstinessProfile.from_counts([1, 2, 3, 4]).describe()
        assert "c.o.v." in text
        assert "IDC" in text
