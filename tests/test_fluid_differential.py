"""Packet-vs-fluid cross-validation gate.

Runs the same 12 scenario cells -- {reno, vegas} x {droptail, RED} x
N in {50, 200, 500} -- through both backends and checks the fluid
solver's headline metrics against the packet engine within documented
tolerance bands.  This is the differential suite the CI ``fluid-xval``
job runs; set ``REPRO_XVAL_REPORT=/path/report.json`` to also write a
machine-readable tolerance report (uploaded as a CI artifact).

Both backends are deterministic at a fixed seed, so the bands measure
real model error, not run-to-run noise.  The bands (derivation and
validity envelope in DESIGN.md section 12):

* throughput: relative error <= 18% (the fluid link saturates exactly
  at C while the packet engine leaves a few percent idle during
  synchronized backoff);
* mean queue: absolute error <= 10 packets (of a 50-packet buffer);
* rate c.o.v.: fluid in ``[0.3 * packet - 0.02, packet + 0.12]`` --
  asymmetric because the deterministic mean-field limit legitimately
  loses finite-N stochastic synchronization (low side) yet can
  over-express the undamped limit cycle (high side).
"""

import json
import os

import pytest

from repro.experiments.config import paper_config
from repro.experiments.results import ScenarioMetrics
from repro.experiments.scenario import run_scenario

DURATION = 60.0
WARMUP = 10.0
CLIENT_COUNTS = (50, 200, 500)
PROTOCOL_QUEUES = (
    ("reno", "fifo"),
    ("reno", "red"),
    ("vegas", "fifo"),
    ("vegas", "red"),
)
CELLS = [
    (protocol, queue, n)
    for protocol, queue in PROTOCOL_QUEUES
    for n in CLIENT_COUNTS
]

# Tolerance bands -- keep in sync with DESIGN.md section 12.
THROUGHPUT_REL_TOL = 0.18
QUEUE_ABS_TOL = 10.0
COV_LOW_FACTOR = 0.3
COV_LOW_SLACK = 0.02
COV_HIGH_SLACK = 0.12


def _cell_config(protocol, queue, n_clients, backend):
    return paper_config(
        protocol=protocol,
        queue=queue,
        n_clients=n_clients,
        backend=backend,
        duration=DURATION,
        warmup=WARMUP,
        # The wheel scheduler makes the N=500 packet cells affordable;
        # it executes the same event sequence as the reference heap
        # (digest-excluded), so it does not change what we validate.
        scheduler="wheel" if backend == "packet" else "heap",
    )


@pytest.fixture(scope="module")
def comparisons():
    """Run all 12 cells through both backends once per session."""
    rows = []
    for protocol, queue, n in CELLS:
        packet = ScenarioMetrics.from_result(
            run_scenario(_cell_config(protocol, queue, n, "packet"))
        )
        fluid = ScenarioMetrics.from_result(
            run_scenario(_cell_config(protocol, queue, n, "fluid"))
        )
        rows.append(
            {
                "protocol": protocol,
                "queue": queue,
                "n_clients": n,
                # float() strips numpy scalar types so the JSON report
                # serializes with the stdlib encoder.
                "packet": {
                    "cov": float(packet.cov),
                    "throughput_pps": float(packet.throughput_pps),
                    "mean_queue_length": float(packet.mean_queue_length),
                    "loss_percent": float(packet.loss_percent),
                },
                "fluid": {
                    "cov": float(fluid.cov),
                    "throughput_pps": float(fluid.throughput_pps),
                    "mean_queue_length": float(fluid.mean_queue_length),
                    "loss_percent": float(fluid.loss_percent),
                },
            }
        )
    _maybe_write_report(rows)
    return {(r["protocol"], r["queue"], r["n_clients"]): r for r in rows}


def _band_checks(row):
    """The three gate checks for one cell, as (name, ok, detail)."""
    packet, fluid = row["packet"], row["fluid"]
    thr_rel = abs(fluid["throughput_pps"] - packet["throughput_pps"]) / packet[
        "throughput_pps"
    ]
    q_abs = abs(fluid["mean_queue_length"] - packet["mean_queue_length"])
    cov_lo = COV_LOW_FACTOR * packet["cov"] - COV_LOW_SLACK
    cov_hi = packet["cov"] + COV_HIGH_SLACK
    return [
        (
            "throughput",
            bool(thr_rel <= THROUGHPUT_REL_TOL),
            f"relative error {thr_rel:.3f} (tol {THROUGHPUT_REL_TOL}); "
            f"fluid {fluid['throughput_pps']:.1f} vs "
            f"packet {packet['throughput_pps']:.1f} pps",
        ),
        (
            "mean_queue",
            bool(q_abs <= QUEUE_ABS_TOL),
            f"absolute error {q_abs:.2f} pkts (tol {QUEUE_ABS_TOL}); "
            f"fluid {fluid['mean_queue_length']:.1f} vs "
            f"packet {packet['mean_queue_length']:.1f}",
        ),
        (
            "cov",
            bool(cov_lo <= fluid["cov"] <= cov_hi),
            f"fluid {fluid['cov']:.3f} outside [{cov_lo:.3f}, {cov_hi:.3f}] "
            f"(packet {packet['cov']:.3f})",
        ),
    ]


def _maybe_write_report(rows):
    path = os.environ.get("REPRO_XVAL_REPORT", "")
    if not path:
        return
    report = {
        "bands": {
            "throughput_rel_tol": THROUGHPUT_REL_TOL,
            "queue_abs_tol": QUEUE_ABS_TOL,
            "cov_low_factor": COV_LOW_FACTOR,
            "cov_low_slack": COV_LOW_SLACK,
            "cov_high_slack": COV_HIGH_SLACK,
        },
        "duration": DURATION,
        "warmup": WARMUP,
        "cells": [],
    }
    for row in rows:
        checks = _band_checks(row)
        report["cells"].append(
            {
                **row,
                "checks": {
                    name: {"ok": ok, "detail": detail}
                    for name, ok, detail in checks
                },
                "ok": all(ok for _, ok, _ in checks),
            }
        )
    report["ok"] = all(cell["ok"] for cell in report["cells"])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)


@pytest.mark.parametrize("protocol,queue,n", CELLS)
def test_throughput_within_band(comparisons, protocol, queue, n):
    name, ok, detail = _band_checks(comparisons[(protocol, queue, n)])[0]
    assert ok, f"{protocol}/{queue}@{n}: {detail}"


@pytest.mark.parametrize("protocol,queue,n", CELLS)
def test_mean_queue_within_band(comparisons, protocol, queue, n):
    name, ok, detail = _band_checks(comparisons[(protocol, queue, n)])[1]
    assert ok, f"{protocol}/{queue}@{n}: {detail}"


@pytest.mark.parametrize("protocol,queue,n", CELLS)
def test_cov_within_band(comparisons, protocol, queue, n):
    name, ok, detail = _band_checks(comparisons[(protocol, queue, n)])[2]
    assert ok, f"{protocol}/{queue}@{n}: {detail}"


def test_fluid_grid_is_orders_of_magnitude_cheaper(comparisons):
    """Sanity on the point of the backend: the whole 12-cell fluid grid
    must not have needed packet-engine-scale work.  (The real speedup
    gate lives in benchmarks/bench_fluid_scaling.py.)"""
    assert len(comparisons) == len(CELLS)
