"""Unit tests for the dumbbell topology builder."""

import pytest

from repro.net.queues import DropTailQueue
from repro.net.red import REDQueue
from repro.net.topology import DumbbellNetwork, DumbbellParams, build_dumbbell
from repro.sim.engine import Simulator
from repro.transport.base import Agent


class RecordingAgent(Agent):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def test_default_build_matches_table1_topology():
    network = build_dumbbell(Simulator())
    params = network.params
    assert len(network.clients) == params.n_clients
    assert params.buffer_capacity == 50
    assert isinstance(network.bottleneck_queue, DropTailQueue)
    assert network.bottleneck_queue.capacity == 50


def test_rtt_prop():
    params = DumbbellParams(client_delay=0.002, bottleneck_delay=0.2)
    assert params.rtt_prop == pytest.approx(0.404)
    network = DumbbellNetwork(Simulator(), params)
    assert network.rtt_prop == pytest.approx(0.404)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n_clients=0),
        dict(client_rate_bps=0),
        dict(bottleneck_rate_bps=-1),
        dict(client_delay=-0.1),
        dict(buffer_capacity=0),
    ],
)
def test_invalid_params_rejected(kwargs):
    with pytest.raises(ValueError):
        DumbbellParams(**kwargs).validate()


def test_custom_queue_factory_used_for_bottleneck():
    def factory(params, rng):
        return REDQueue(params.buffer_capacity, rng=rng)

    params = DumbbellParams(n_clients=2, queue_factory=factory)
    network = DumbbellNetwork(Simulator(), params)
    assert isinstance(network.bottleneck_queue, REDQueue)


def test_client_names_are_canonical():
    assert DumbbellNetwork.client_name(3) == "client-3"
    network = build_dumbbell(Simulator(), DumbbellParams(n_clients=2))
    assert [c.name for c in network.clients] == ["client-0", "client-1"]


def test_client_to_server_path_end_to_end():
    sim = Simulator()
    network = DumbbellNetwork(sim, DumbbellParams(n_clients=3))
    factory = network.packet_factory
    agent = RecordingAgent(sim, network.server, 1, "client-1", factory)
    packet = factory.data(1, "client-1", "server", 1000, seqno=0, now=0.0)
    network.clients[1].send(packet)
    sim.run()
    assert agent.received == [packet]


def test_server_to_client_reverse_path():
    sim = Simulator()
    network = DumbbellNetwork(sim, DumbbellParams(n_clients=3))
    factory = network.packet_factory
    agent = RecordingAgent(sim, network.clients[2], 2, "server", factory)
    ack = factory.ack(2, "server", "client-2", ackno=0, now=0.0)
    network.server.send(ack)
    sim.run()
    assert agent.received == [ack]


def test_forward_path_traverses_bottleneck_queue():
    sim = Simulator()
    network = DumbbellNetwork(sim, DumbbellParams(n_clients=1))
    factory = network.packet_factory
    RecordingAgent(sim, network.server, 0, "client-0", factory)
    network.clients[0].send(
        factory.data(0, "client-0", "server", 1000, seqno=0, now=0.0)
    )
    sim.run()
    assert network.bottleneck_queue.stats.arrivals == 1
    assert network.bottleneck_queue.stats.departures == 1


def test_bottleneck_interface_is_gateway_to_server():
    network = build_dumbbell(Simulator())
    assert network.bottleneck_interface is network.gateway.interfaces["server"]


def test_ascii_diagram_mentions_parameters():
    network = build_dumbbell(Simulator(), DumbbellParams(n_clients=4))
    diagram = network.ascii_diagram()
    assert "gateway" in diagram
    assert "server" in diagram
    assert "client-3" in diagram
