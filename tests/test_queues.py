"""Unit tests for the queue interface and drop-tail FIFO."""

import pytest

from repro.net.packet import PacketFactory
from repro.net.queues import DropTailQueue


def make_packets(n, size=1000):
    factory = PacketFactory()
    return [factory.data(0, "a", "b", size, seqno=i, now=0.0) for i in range(n)]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        DropTailQueue(0)


def test_enqueue_dequeue_fifo_order():
    queue = DropTailQueue(10)
    packets = make_packets(3)
    for i, packet in enumerate(packets):
        assert queue.enqueue(packet, now=float(i))
    out = [queue.dequeue(now=5.0) for _ in range(3)]
    assert out == packets


def test_dequeue_empty_returns_none():
    assert DropTailQueue(1).dequeue(now=0.0) is None


def test_drop_when_full():
    queue = DropTailQueue(2)
    packets = make_packets(3)
    assert queue.enqueue(packets[0], 0.0)
    assert queue.enqueue(packets[1], 0.0)
    assert not queue.enqueue(packets[2], 0.0)
    assert len(queue) == 2


def test_length_never_exceeds_capacity():
    queue = DropTailQueue(5)
    for packet in make_packets(20):
        queue.enqueue(packet, 0.0)
        assert len(queue) <= 5


def test_stats_counters():
    queue = DropTailQueue(2)
    for packet in make_packets(4):
        queue.enqueue(packet, 0.0)
    queue.dequeue(1.0)
    stats = queue.stats
    assert stats.arrivals == 4
    assert stats.drops == 2
    assert stats.departures == 1
    assert stats.loss_fraction == 0.5
    assert stats.bytes_arrived == 4000
    assert stats.bytes_departed == 1000


def test_drop_hook_called_with_packet_and_time():
    queue = DropTailQueue(1)
    dropped = []
    queue.add_drop_hook(lambda p, t: dropped.append((p.seqno, t)))
    packets = make_packets(2)
    queue.enqueue(packets[0], 0.0)
    queue.enqueue(packets[1], 2.5)
    assert dropped == [(1, 2.5)]


def test_byte_length():
    queue = DropTailQueue(10)
    for packet in make_packets(3, size=500):
        queue.enqueue(packet, 0.0)
    assert queue.byte_length == 1500


def test_mean_occupancy_time_weighted():
    queue = DropTailQueue(10)
    packets = make_packets(2)
    queue.enqueue(packets[0], 0.0)  # length 0 until t=0
    queue.enqueue(packets[1], 4.0)  # length 1 during [0, 4)
    queue.dequeue(8.0)  # length 2 during [4, 8)
    queue.dequeue(10.0)  # length 1 during [8, 10)
    # integral = 0*0 + 1*4 + 2*4 + 1*2 = 14 over duration 10
    assert queue.stats.mean_occupancy(10.0) == pytest.approx(1.4)


def test_mean_occupancy_zero_duration():
    assert DropTailQueue(1).stats.mean_occupancy(0.0) == 0.0


def test_loss_fraction_empty():
    assert DropTailQueue(1).stats.loss_fraction == 0.0


def test_conservation_arrivals_equals_departures_plus_drops_plus_queued():
    queue = DropTailQueue(3)
    admitted = 0
    for packet in make_packets(10):
        if queue.enqueue(packet, 0.0):
            admitted += 1
    drained = 0
    while queue.dequeue(1.0) is not None:
        drained += 1
    stats = queue.stats
    assert stats.arrivals == stats.departures + stats.drops
    assert drained == admitted
