"""Tests for the fault-tolerant sweep runner: timeouts, retries, crash
isolation, resume-from-cache after a mid-grid kill, and telemetry."""

import multiprocessing
import os
import subprocess
import sys
import time

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.config import paper_config
from repro.experiments.replication import replicate
from repro.experiments.runlog import Progress, RunLog, read_runlog
from repro.experiments.runner import SweepRunner, pick_start_method, run_one
from repro.experiments.sweep import run_many

pytestmark = pytest.mark.skipif(
    sys.platform == "win32",
    reason="the misbehaving task stubs rely on POSIX process semantics",
)


def tiny(**overrides):
    defaults = dict(n_clients=2, duration=3.0, seed=1)
    defaults.update(overrides)
    return paper_config(**defaults)


# ----------------------------------------------------------------------
# Deliberately misbehaving task stubs (module level: picklable by fork)
# ----------------------------------------------------------------------
def _hang_forever(config):
    time.sleep(300)


def _crash_on_seed_2(config):
    if config.seed == 2:
        os._exit(17)
    return run_one(config)


def _raise_always(config):
    raise RuntimeError("scripted failure")


def _flaky_once(config):
    """Fails the first time it is ever called, then behaves."""
    sentinel = os.environ["REPRO_TEST_FLAKY_SENTINEL"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        raise RuntimeError("first attempt fails")
    return run_one(config)


class TestTimeoutRetryPlaceholder:
    def test_hanging_worker_times_out_and_is_recorded(self):
        runner = SweepRunner(
            processes=1, timeout=0.3, retries=1, backoff=0.05, task=_hang_forever
        )
        start = time.monotonic()
        results = runner.run([tiny()])
        elapsed = time.monotonic() - start
        assert results[0].failed
        assert "timeout" in results[0].error
        assert runner.log.progress.failed == 1
        assert runner.log.progress.retried == 1
        assert elapsed < 30  # two 0.3 s attempts, not the 300 s sleep

    def test_crash_isolated_rest_of_grid_completes(self):
        configs = [tiny(seed=1), tiny(seed=2), tiny(seed=3)]
        runner = SweepRunner(
            processes=2, timeout=60, retries=0, task=_crash_on_seed_2
        )
        results = runner.run(configs)
        assert [m.seed for m in results] == [1, 2, 3]
        assert not results[0].failed and not results[2].failed
        assert results[1].failed
        assert "exit code 17" in results[1].error

    def test_retry_then_success(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_TEST_FLAKY_SENTINEL", str(tmp_path / "sentinel")
        )
        runner = SweepRunner(
            processes=1, timeout=60, retries=2, backoff=0.05, task=_flaky_once
        )
        results = runner.run([tiny()])
        assert not results[0].failed
        assert runner.log.progress.retried == 1
        assert runner.log.progress.completed == 1

    def test_in_process_exception_becomes_placeholder(self):
        runner = SweepRunner(processes=1, retries=1, backoff=0.01, task=_raise_always)
        results = runner.run([tiny()])
        assert results[0].failed
        assert "scripted failure" in results[0].error

    def test_backoff_is_capped(self):
        runner = SweepRunner(backoff=1.0, max_backoff=3.0)
        assert runner._retry_delay(1) == 1.0
        assert runner._retry_delay(2) == 2.0
        assert runner._retry_delay(5) == 3.0


class TestCachingAndResume:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        configs = [tiny(seed=1), tiny(seed=2)]
        cache = ResultCache(str(tmp_path / "cache"))
        first = run_many(configs, processes=1, cache=cache)
        log = RunLog()
        second = run_many(configs, processes=1, cache=cache, run_log=log)
        assert first == second
        assert log.progress.cached == 2
        assert log.progress.completed == 0

    def test_failed_cells_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(
            processes=1, retries=0, task=_raise_always, cache=cache
        )
        results = runner.run([tiny()])
        assert results[0].failed
        assert len(cache) == 0  # next run re-attempts instead of resuming a failure

    def test_kill_mid_grid_then_resume(self, tmp_path):
        """Kill the sweep process mid-grid; a --resume-style re-run must
        finish using cache hits for the already-completed cells."""
        cache_dir = tmp_path / "cache"
        driver = tmp_path / "driver.py"
        driver.write_text(
            "import os, sys\n"
            "from repro.experiments.config import paper_config\n"
            "from repro.experiments.runner import SweepRunner, run_one\n"
            "\n"
            "def die_mid_grid(config):\n"
            "    if config.seed == 3:\n"
            "        os._exit(9)  # hard kill: no cleanup, mid-sweep\n"
            "    return run_one(config)\n"
            "\n"
            "configs = [paper_config(n_clients=2, duration=3.0, seed=s)\n"
            "           for s in (1, 2, 3, 4)]\n"
            "SweepRunner(processes=1, cache=sys.argv[1],\n"
            "            task=die_mid_grid).run(configs)\n"
        )
        env = dict(os.environ)
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(driver), str(cache_dir)],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 9, proc.stderr
        cache = ResultCache(str(cache_dir))
        assert len(cache) == 2  # seeds 1 and 2 finished before the kill

        configs = [tiny(seed=s) for s in (1, 2, 3, 4)]
        log = RunLog()
        results = run_many(configs, processes=1, cache=cache, run_log=log)
        assert all(not m.failed for m in results)
        assert [m.seed for m in results] == [1, 2, 3, 4]
        assert log.progress.cached == 2
        assert log.progress.completed == 2

    def test_duplicate_cells_coalesce_at_launch(self, tmp_path):
        config = tiny()
        log = RunLog()
        results = run_many(
            [config, config], processes=1, cache=str(tmp_path), run_log=log
        )
        assert results[0] == results[1]
        assert log.progress.completed + log.progress.cached == 2
        assert log.progress.cached >= 1


class TestTelemetry:
    def test_runlog_event_stream(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLog(path) as log:
            run_many([tiny()], processes=1, cache=str(tmp_path / "c"), run_log=log)
        events = [e["event"] for e in read_runlog(path)]
        assert events[0] == "sweep_start"
        assert events[-1] == "sweep_end"
        assert "task_start" in events
        assert "task_done" in events

    def test_runlog_survives_torn_final_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(str(path)) as log:
            log.sweep_start(total=1)
        with open(path, "a") as handle:
            handle.write('{"event": "task_do')  # killed mid-write
        events = read_runlog(str(path))
        assert [e["event"] for e in events] == ["sweep_start"]

    def test_progress_render(self):
        progress = Progress(total=40, completed=9, cached=3, failed=0, retried=2)
        line = progress.render()
        assert "12/40" in line
        assert "ok=9" in line
        assert "cached=3" in line

    def test_echo_stream_receives_updates(self):
        import io

        stream = io.StringIO()
        log = RunLog(echo=stream)
        run_many([tiny()], processes=1, run_log=log)
        assert "[1/1]" in stream.getvalue()


class TestStartMethod:
    def test_default_is_available(self):
        assert pick_start_method() in multiprocessing.get_all_start_methods()

    def test_fork_preferred_when_available(self):
        if "fork" in multiprocessing.get_all_start_methods():
            assert pick_start_method() == "fork"

    def test_spawn_fallback_when_fork_missing(self, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        assert pick_start_method() == "spawn"

    def test_invalid_preferred_rejected(self):
        with pytest.raises(ValueError):
            pick_start_method("no-such-method")


class TestIntegration:
    def test_run_many_parallel_matches_serial_with_runner(self):
        configs = [tiny(protocol="udp"), tiny(protocol="reno")]
        assert run_many(configs, processes=1) == run_many(configs, processes=2)

    def test_replicate_passes_runner_kwargs(self, tmp_path):
        config = tiny(protocol="udp")
        first = replicate(config, n_replicas=2, processes=1, cache=str(tmp_path))
        log = RunLog()
        second = replicate(
            config, n_replicas=2, processes=1, cache=str(tmp_path), run_log=log
        )
        assert log.progress.cached == 2
        assert first.summaries["cov"].mean == second.summaries["cov"].mean

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SweepRunner(retries=-1)
        with pytest.raises(ValueError):
            SweepRunner(timeout=0)
