"""Seed robustness: the headline orderings hold across seeds.

Every benchmark asserts the paper's shape at seed 1; these tests check
the core orderings are not one-seed flukes (short runs keep this
cheap; the full-length evidence is in benchmarks/FULLSCALE.md and
examples/error_bars.py).
"""

import pytest

from repro.experiments.config import paper_config
from repro.experiments.scenario import run_scenario

SEEDS = (11, 22, 33)
N_CLIENTS = 50
DURATION = 25.0


@pytest.fixture(scope="module")
def results():
    out = {}
    for seed in SEEDS:
        for protocol in ("udp", "reno"):
            out[(protocol, seed)] = run_scenario(
                paper_config(
                    protocol=protocol,
                    n_clients=N_CLIENTS,
                    duration=DURATION,
                    seed=seed,
                )
            )
    return out


@pytest.mark.parametrize("seed", SEEDS)
def test_reno_burstier_than_udp_for_every_seed(results, seed):
    assert results[("reno", seed)].cov > results[("udp", seed)].cov


@pytest.mark.parametrize("seed", SEEDS)
def test_udp_tracks_poisson_for_every_seed(results, seed):
    # A 25 s run has only ~62 bins, so the sample c.o.v. is itself noisy
    # (its sampling std is ~10%); allow a generous band here -- the tight
    # comparison lives in the 200 s benchmark run.
    result = results[("udp", seed)]
    assert result.cov == pytest.approx(result.analytic_cov, rel=0.35)


@pytest.mark.parametrize("seed", SEEDS)
def test_reno_congestion_machinery_active_for_every_seed(results, seed):
    result = results[("reno", seed)]
    assert result.timeouts > 0
    assert result.gateway_drops > 0
    assert result.utilization > 0.8
