"""Tests for the flight-recorder observability layer (repro.obs)."""

import json
import math

import pytest

from repro.experiments.config import paper_config
from repro.experiments.results import ScenarioMetrics
from repro.experiments.scenario import Scenario, run_scenario
from repro.net.packet import PacketFactory
from repro.net.queues import DropTailQueue
from repro.net.red import REDParams, REDQueue
from repro.obs.bundle import ObsBundle
from repro.obs.engineprof import (
    EngineProfiler,
    callback_category,
    peak_rss_kb,
)
from repro.obs.probes import (
    TRACE_CATEGORIES,
    FlowProbe,
    QueueProbe,
    parse_trace_spec,
)
from repro.obs.registry import (
    NULL_METRIC,
    NULL_REGISTRY,
    MetricRegistry,
    TimeSeries,
)
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# Registry and metric kinds
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_series_histogram(self):
        reg = MetricRegistry()
        counter = reg.counter("a.count")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

        gauge = reg.gauge("a.depth")
        gauge.set(2.0)
        gauge.max(5.0)
        gauge.max(1.0)
        assert gauge.value == 5.0

        series = reg.series("a.s", columns=("x", "y"))
        series.append(0.0, 1, 2)
        series.append(1.0, 3, 4)
        assert series.times() == [0.0, 1.0]
        assert series.column("y") == [2, 4]
        assert len(series) == 2

        hist = reg.histogram("a.h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]
        assert hist.total == 3

    def test_same_name_returns_same_object(self):
        reg = MetricRegistry()
        assert reg.counter("x.n") is reg.counter("x.n")

    def test_category_gating(self):
        reg = MetricRegistry(categories=("cwnd",))
        assert reg.enabled("cwnd")
        assert not reg.enabled("rtt")
        live = reg.series("cwnd.flow.0")
        dead = reg.series("rtt.flow.0")
        assert live is not NULL_METRIC
        assert dead is NULL_METRIC

    def test_null_metric_is_inert_and_falsy(self):
        NULL_METRIC.inc()
        NULL_METRIC.set(3.0)
        NULL_METRIC.max(3.0)
        NULL_METRIC.append(0.0, 1)
        NULL_METRIC.observe(2.0)
        assert len(NULL_METRIC) == 0
        assert not NULL_METRIC

    def test_null_registry_disables_everything(self):
        for category in TRACE_CATEGORIES:
            assert not NULL_REGISTRY.enabled(category)

    def test_none_categories_enables_everything(self):
        reg = MetricRegistry()
        assert reg.enabled("anything")

    def test_snapshot_scalars_and_summaries(self):
        reg = MetricRegistry()
        reg.counter("c.n").inc(2)
        reg.series("s.t").append(1.0, 9)
        snap = reg.snapshot()
        assert snap["c.n"] == 2
        assert snap["s.t"]["n_rows"] == 1

    def test_series_min_interval_thins(self):
        series = TimeSeries("s", min_interval=1.0)
        series.append(0.0, 1)
        series.append(0.5, 2)  # inside the interval: dropped
        series.append(1.0, 3)
        assert series.times() == [0.0, 1.0]


class TestParseTraceSpec:
    def test_comma_list(self):
        assert parse_trace_spec("cwnd,queue") == ("cwnd", "queue")

    def test_all_expands(self):
        assert parse_trace_spec("all") == TRACE_CATEGORIES

    def test_empty(self):
        assert parse_trace_spec("") == ()
        assert parse_trace_spec(None) == ()

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            parse_trace_spec("cwnd,bogus")

    def test_deduplicates_preserving_order(self):
        assert parse_trace_spec("rtt,cwnd,rtt") == ("rtt", "cwnd")


# ----------------------------------------------------------------------
# Engine profiler
# ----------------------------------------------------------------------
class TestEngineProfiler:
    def test_profile_counts_and_categories(self):
        sim = Simulator()
        profiler = sim.attach_profiler(EngineProfiler())

        def tick(remaining):
            if remaining:
                sim.schedule(0.1, tick, remaining - 1)

        sim.schedule(0.0, tick, 9)
        sim.schedule(100.0, tick, 0)  # parked event keeps the heap non-empty
        sim.run()
        profile = profiler.profile()
        assert profile.events_executed == 11
        assert profile.sim_time == pytest.approx(100.0)
        assert profile.wall_time > 0
        assert profile.events_per_sec > 0
        assert profile.max_heap_depth >= 1
        assert [s.category for s in profile.categories] == [
            "TestEngineProfiler.test_profile_counts_and_categories.<locals>.tick"
        ]
        assert profile.categories[0].events == 11

    def test_bound_methods_grouped_by_class_and_name(self):
        class Thing:
            def poke(self):
                pass

        assert callback_category(Thing().poke) == "Thing.poke"
        assert callback_category(Thing().poke) == callback_category(Thing().poke)

    def test_detach_restores_fast_loop(self):
        sim = Simulator()
        profiler = sim.attach_profiler(EngineProfiler())
        sim.schedule(0.0, lambda: None)
        sim.run()
        sim.detach_profiler()
        assert sim.profiler is None
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert profiler.events == 1  # second event not profiled

    def test_render_table_mentions_throughput(self):
        sim = Simulator()
        profiler = sim.attach_profiler(EngineProfiler())
        sim.schedule(0.0, lambda: None)
        sim.run()
        table = profiler.profile().render_table()
        assert "ev/s" in table
        assert "category" in table

    def test_as_dict_round_trips_through_json(self):
        sim = Simulator()
        profiler = sim.attach_profiler(EngineProfiler())
        sim.schedule(0.0, lambda: None)
        sim.run()
        payload = json.loads(json.dumps(profiler.profile().as_dict()))
        assert payload["events_executed"] == 1

    def test_step_is_profiled_too(self):
        sim = Simulator()
        profiler = sim.attach_profiler(EngineProfiler())
        sim.schedule(0.0, lambda: None)
        assert sim.step()
        assert profiler.events == 1


def test_peak_rss_is_positive_here():
    assert peak_rss_kb() > 0


# ----------------------------------------------------------------------
# Flow probes (via a real TCP sender)
# ----------------------------------------------------------------------
class TestFlowProbe:
    def _run(self, **config_overrides):
        overrides = {"n_clients": 2, "duration": 10.0, "seed": 3}
        overrides.update(config_overrides)
        return run_scenario(paper_config(**overrides))

    def test_cwnd_series_recorded(self):
        result = self._run(obs_trace=("cwnd",))
        assert result.obs is not None
        assert result.obs.n_cwnd_samples > 0
        probe = result.obs.flows[0]
        assert probe.cwnd.columns == ("cwnd", "ssthresh")
        # The first sample is the initial window published at attach.
        assert probe.cwnd.rows[0][1] == 1.0

    def test_rtt_series_recorded(self):
        result = self._run(obs_trace=("rtt",))
        probe = result.obs.flows[0]
        assert len(probe.rtt) > 0
        # srtt must be positive once samples arrive.
        assert all(row[2] > 0 for row in probe.rtt.rows)
        # cwnd category is off: that series stored nothing.
        assert len(probe.cwnd) == 0

    def test_state_transitions_on_lossy_run(self):
        result = self._run(
            obs_trace=("state",), n_clients=40, duration=30.0
        )
        assert result.obs.n_state_transitions > 0
        states = {
            row[1]
            for probe in result.obs.flows.values()
            for row in probe.states.rows
        }
        assert states <= {
            "timeout",
            "fast_retransmit",
            "recovery_exit",
            "partial_ack",
            "slowstart_exit",
            "ecn_cut",
        }
        assert states  # at 40 clients something must have happened

    def test_no_obs_config_attaches_nothing(self):
        result = self._run()
        assert result.obs is None
        # perf telemetry is still measured.
        assert result.wall_time > 0
        assert result.peak_rss_kb > 0


# ----------------------------------------------------------------------
# Queue probes
# ----------------------------------------------------------------------
class TestQueueProbe:
    def _packets(self, n):
        factory = PacketFactory()
        return [
            factory.data(0, "a", "b", 1000, seqno=i, now=0.0) for i in range(n)
        ]

    def test_occupancy_follows_queue_length(self):
        reg = MetricRegistry(categories=("queue", "drops"))
        queue = DropTailQueue(4, name="q")
        probe = QueueProbe(reg, queue)
        for i, packet in enumerate(self._packets(3)):
            queue.enqueue(packet, float(i))
        queue.dequeue(3.0)
        lengths = probe.occupancy.column("length")
        assert lengths == [1, 2, 3, 2]
        assert probe.depth.value == 3

    def test_droptail_drop_cause(self):
        reg = MetricRegistry(categories=("drops",))
        queue = DropTailQueue(2, name="q")
        probe = QueueProbe(reg, queue)
        for packet in self._packets(4):
            queue.enqueue(packet, 0.0)
        assert probe.drop_causes == {"tail_overflow": 2}
        assert reg.counter("drops.cause.tail_overflow").value == 2

    def test_droptail_drop_rows_identify_overflowed_packets(self):
        # Per-row attribution: the drops series names the exact packets
        # the full buffer refused, each labelled tail_overflow.
        reg = MetricRegistry(categories=("drops",))
        queue = DropTailQueue(2, name="q")
        probe = QueueProbe(reg, queue)
        for packet in self._packets(4):
            queue.enqueue(packet, 1.0)
        assert probe.drops.column("cause") == ["tail_overflow"] * 2
        assert probe.drops.column("seqno") == [2, 3]  # first 2 admitted

    def test_red_early_drop_rows(self):
        # rng always below the drop probability: with avg in the
        # (min_th, max_th) band every arrival takes the probabilistic
        # early-drop path, never the forced or overflow ones.
        class AlwaysBelow:
            def random(self):
                return 0.0

        reg = MetricRegistry(categories=("drops",))
        # weight=1 makes the average track the instantaneous length.
        queue = REDQueue(
            100,
            REDParams(min_th=1.0, max_th=50.0, weight=1.0),
            rng=AlwaysBelow(),
            name="red",
        )
        probe = QueueProbe(reg, queue)
        for packet in self._packets(8):
            queue.enqueue(packet, 1.0)
        assert set(probe.drops.column("cause")) == {"red_early"}
        assert probe.drop_causes == {"red_early": queue.stats.drops}

    def test_red_forced_drop_rows(self):
        # rng never below the probability: early drops cannot fire, so
        # once the average reaches max_th (buffer far from full) every
        # refusal is a forced drop.
        class NeverBelow:
            def random(self):
                return 1.0

        reg = MetricRegistry(categories=("drops",))
        queue = REDQueue(
            100,
            REDParams(min_th=1.0, max_th=3.0, weight=1.0),
            rng=NeverBelow(),
            name="red",
        )
        probe = QueueProbe(reg, queue)
        for packet in self._packets(6):
            queue.enqueue(packet, 1.0)
        assert queue.stats.drops > 0
        assert set(probe.drops.column("cause")) == {"red_forced"}
        assert "red_early" not in probe.drop_causes
        assert "buffer_overflow" not in probe.drop_causes

    def test_red_buffer_overflow_drop_rows(self):
        # min_th far above the physical capacity: RED never engages, so
        # the only refusals are physical buffer overflows -- RED's
        # droptail-of-last-resort path, labelled distinctly.
        reg = MetricRegistry(categories=("drops",))
        queue = REDQueue(
            3,
            REDParams(min_th=50.0, max_th=60.0, weight=1.0),
            name="red",
        )
        probe = QueueProbe(reg, queue)
        for packet in self._packets(5):
            queue.enqueue(packet, 1.0)
        assert probe.drops.column("cause") == ["buffer_overflow"] * 2
        assert probe.drops.column("seqno") == [3, 4]

    def test_red_drop_causes_labelled(self):
        reg = MetricRegistry(categories=("queue", "drops"))
        queue = REDQueue(
            8, REDParams(min_th=1.0, max_th=3.0, weight=0.5), name="red"
        )
        probe = QueueProbe(reg, queue)
        now = 0.0
        for packet in self._packets(60):
            now += 0.001
            queue.enqueue(packet, now)
        assert queue.stats.drops > 0
        causes = set(probe.drop_causes)
        assert causes <= {"red_early", "red_forced", "buffer_overflow"}
        assert causes
        # occupancy rows carry the RED average alongside raw length.
        avgs = probe.occupancy.column("red_avg")
        assert any(avg > 0 for avg in avgs)

    def test_sample_interval_thins_occupancy(self):
        reg = MetricRegistry(categories=("queue",))
        queue = DropTailQueue(64, name="q")
        probe = QueueProbe(reg, queue, sample_interval=10.0)
        for i, packet in enumerate(self._packets(5)):
            queue.enqueue(packet, float(i))
        assert len(probe.occupancy) == 1  # all arrivals inside 10 s


# ----------------------------------------------------------------------
# Bundle export
# ----------------------------------------------------------------------
class TestObsBundle:
    def _result(self):
        config = paper_config(
            n_clients=3,
            duration=10.0,
            seed=2,
            obs_trace=("cwnd", "queue", "drops"),
            obs_profile=True,
        )
        return Scenario(config).run()

    def test_summary_counts(self):
        result = self._result()
        obs = result.obs
        assert obs.n_cwnd_samples > 0
        assert obs.n_queue_samples > 0
        assert obs.engine is not None
        assert obs.engine.events_executed == result.events_executed

    def test_export_jsonl(self, tmp_path):
        result = self._result()
        written = result.obs.export(str(tmp_path))
        names = {p.split("/")[-1] for p in written}
        assert "engine_profile.json" in names
        assert "flow_cwnd.jsonl" in names
        assert "queue_occupancy.jsonl" in names
        # Disabled categories produce no files at all.
        assert "flow_rtt.jsonl" not in names
        with open(tmp_path / "flow_cwnd.jsonl") as handle:
            rows = [json.loads(line) for line in handle]
        assert {"time", "cwnd", "ssthresh", "flow_id"} <= set(rows[0])
        flow_ids = {row["flow_id"] for row in rows}
        assert flow_ids == {0, 1, 2}

    def test_export_csv(self, tmp_path):
        result = self._result()
        result.obs.export(str(tmp_path), fmt="csv")
        lines = (tmp_path / "flow_cwnd.csv").read_text().splitlines()
        assert lines[0] == "flow_id,time,cwnd,ssthresh"
        assert len(lines) > 1

    def test_export_twice_replaces(self, tmp_path):
        result = self._result()
        result.obs.export(str(tmp_path))
        first = (tmp_path / "flow_cwnd.jsonl").read_text()
        result.obs.export(str(tmp_path))
        assert (tmp_path / "flow_cwnd.jsonl").read_text() == first

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ObsBundle().export(str(tmp_path), fmt="xml")

    def test_empty_bundle_writes_nothing(self, tmp_path):
        assert ObsBundle().export(str(tmp_path)) == []


# ----------------------------------------------------------------------
# Experiment-layer integration
# ----------------------------------------------------------------------
class TestMetricsIntegration:
    def test_perf_fields_populated(self):
        config = paper_config(n_clients=2, duration=5.0)
        metrics = ScenarioMetrics.from_result(run_scenario(config))
        assert metrics.perf_wall_time > 0
        assert metrics.perf_events_executed > 0
        assert metrics.perf_events_per_sec > 0
        assert metrics.perf_sim_wall_ratio > 0
        assert metrics.perf_peak_rss_kb > 0

    def test_obs_counts_flow_into_metrics(self):
        config = paper_config(
            n_clients=2, duration=5.0, obs_trace=("cwnd", "queue")
        )
        metrics = ScenarioMetrics.from_result(run_scenario(config))
        assert metrics.obs_cwnd_samples > 0
        assert metrics.obs_queue_samples > 0
        assert metrics.obs_rtt_samples == 0  # category off

    def test_equality_ignores_wall_clock_telemetry(self):
        config = paper_config(n_clients=2, duration=5.0)
        first = ScenarioMetrics.from_result(run_scenario(config))
        second = ScenarioMetrics.from_result(run_scenario(config))
        assert first.perf_wall_time != second.perf_wall_time or True
        assert first == second
        assert hash(first) == hash(second)

    def test_from_dict_round_trip_keeps_perf_fields(self):
        config = paper_config(n_clients=2, duration=5.0)
        metrics = ScenarioMetrics.from_result(run_scenario(config))
        rebuilt = ScenarioMetrics.from_dict(metrics.as_dict())
        assert rebuilt == metrics
        assert rebuilt.perf_events_executed == metrics.perf_events_executed

    def test_old_records_default_perf_fields(self):
        config = paper_config(n_clients=2, duration=5.0)
        metrics = ScenarioMetrics.from_result(run_scenario(config))
        record = metrics.as_dict()
        for name in list(record):
            if name.startswith("perf_") or name.startswith("obs_"):
                del record[name]
        rebuilt = ScenarioMetrics.from_dict(record)
        assert math.isnan(rebuilt.perf_wall_time)
        assert rebuilt.obs_cwnd_samples == 0

    def test_obs_trace_does_not_change_digest(self):
        base = paper_config()
        traced = base.with_(obs_trace=("cwnd",), obs_profile=True)
        assert base.config_digest() == traced.config_digest()

    def test_invalid_obs_trace_rejected(self):
        with pytest.raises(ValueError, match="obs_trace"):
            paper_config(obs_trace=("bogus",)).validate()


class TestFlowProbeAttachment:
    def test_attach_probe_publishes_initial_window(self):
        config = paper_config(n_clients=1, duration=1.0, obs_trace=("cwnd",))
        scenario = Scenario(config)
        probe = scenario.flow_probes[0]
        assert isinstance(probe, FlowProbe)
        assert len(probe.cwnd) == 1  # the initial cwnd/ssthresh sample
        assert scenario.senders[0].obs is probe

    def test_udp_flows_get_no_probe(self):
        config = paper_config(
            protocol="udp", n_clients=1, duration=1.0, obs_trace=("cwnd",)
        )
        scenario = Scenario(config)
        assert scenario.flow_probes == {}
