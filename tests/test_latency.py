"""Tests for the application-to-ACK latency instrumentation."""

import pytest

from repro.experiments.config import paper_config
from repro.experiments.scenario import run_scenario
from repro.transport.reno import RenoSender
from repro.transport.tcp_base import TcpParams

from tests.helpers import TcpHarness


def make_harness(**overrides):
    params = TcpParams(
        initial_cwnd=overrides.pop("cwnd", 4.0),
        initial_ssthresh=64.0,
        **overrides,
    )
    return TcpHarness(RenoSender, {"params": params})


class TestSenderLatency:
    def test_latency_counted_on_cumulative_ack(self):
        h = make_harness()
        h.give_app_packets(3)
        h.advance(0.5)
        h.deliver_ack(2)
        assert h.sender.stats.latency_count == 3
        assert h.sender.stats.mean_latency == pytest.approx(0.5)
        assert h.sender.stats.latency_max == pytest.approx(0.5)

    def test_latency_includes_send_buffer_wait(self):
        h = make_harness(cwnd=1.0)
        h.give_app_packets(2)  # packet 1 waits for the window
        h.advance(1.0)
        h.deliver_ack(0)  # packet 1 goes out now
        h.advance(1.0)
        h.deliver_ack(1)
        # Packet 1: generated at t=0, ACKed at t=2.
        assert h.sender.stats.latency_max == pytest.approx(2.0)

    def test_latency_spans_retransmissions(self):
        h = make_harness(cwnd=1.0, initial_rto=1.0, min_rto=1.0)
        h.give_app_packets(1)
        h.advance(1.5)  # timeout + retransmit
        h.advance(0.5)
        h.deliver_ack(0)
        assert h.sender.stats.latency_max == pytest.approx(2.0)

    def test_mean_latency_zero_before_completion(self):
        h = make_harness()
        h.give_app_packets(2)
        assert h.sender.stats.mean_latency == 0.0

    def test_per_packet_accounting(self):
        h = make_harness(cwnd=10.0)
        h.give_app_packets(5)
        h.advance(0.25)
        h.deliver_ack(1)
        h.advance(0.25)
        h.deliver_ack(4)
        stats = h.sender.stats
        assert stats.latency_count == 5
        # 2 packets at 0.25 s + 3 packets at 0.5 s.
        assert stats.latency_sum == pytest.approx(2 * 0.25 + 3 * 0.5)


class TestScenarioLatency:
    def test_latency_reported_and_bounded(self):
        result = run_scenario(paper_config(protocol="reno", n_clients=4, duration=8.0))
        # Uncongested: latency is roughly one RTT per packet.
        assert 0.3 < result.mean_latency < 2.0
        assert result.max_latency >= result.mean_latency
        for flow in result.per_flow:
            assert flow.mean_latency > 0

    def test_congestion_raises_latency(self):
        light = run_scenario(
            paper_config(protocol="reno", n_clients=10, duration=20.0)
        )
        heavy = run_scenario(
            paper_config(protocol="reno", n_clients=50, duration=20.0)
        )
        assert heavy.mean_latency > light.mean_latency

    def test_udp_has_no_latency_accounting(self):
        result = run_scenario(paper_config(protocol="udp", n_clients=4, duration=5.0))
        assert result.mean_latency == 0.0
