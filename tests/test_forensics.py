"""Tests for the burst-forensics subsystem (repro.forensics).

Unit coverage of the three detectors (window accountants + sketch,
burst hysteresis, loss-sync clustering) and the linkage rules, then
integration through the full scenario pipeline: the seeded 40-client
droptail dumbbell must attribute with sketch precision@k >= 0.9 and
link every burst to a loss-synchronization event, while the same load
through RED (with physical headroom above max_th, so early drops
rather than overflows do the work) must show measurably fewer bursts
and sync-linked bursts -- the paper's smoothing claim, per episode.

``tests/goldens/forensics/`` pins the full report payload of the
seeded droptail run; regenerate intentionally-changed goldens with::

    PYTHONPATH=src python -m pytest tests/test_forensics.py --update-goldens
"""

import json
import math
from pathlib import Path

import pytest

from repro.experiments.cli import main
from repro.experiments.config import CONFIG_SCHEMA_VERSION, paper_config
from repro.experiments.results import ScenarioMetrics
from repro.experiments.scenario import run_scenario
from repro.forensics import (
    BurstDetector,
    ForensicsParams,
    LOSS_STATES,
    LossSyncDetector,
    SketchWindowAccountant,
    SpaceSavingSketch,
    WindowAccountant,
    link_bursts,
    precision_at_k,
)
from repro.forensics.bursts import BurstEpisode
from repro.forensics.sync import SyncEvent

GOLDEN_DIR = Path(__file__).parent / "goldens" / "forensics"

# The goldens' Figure 2 point: just above the congestion knee, every
# burst mechanism exercised.
BASE = dict(n_clients=40, duration=16.0, seed=7)


@pytest.fixture(scope="module")
def droptail_report():
    """One seeded droptail run shared by the integration tests."""
    config = paper_config(**BASE, forensics=True)
    result = run_scenario(config)
    assert result.forensics is not None
    return result


# ----------------------------------------------------------------------
# Window accountants and the sketch
# ----------------------------------------------------------------------
class TestWindowAccountant:
    def test_charges_packets_to_window_and_flow(self):
        acct = WindowAccountant(window=1.0)
        acct.record(3, 0.2, 1000)
        acct.record(3, 0.7, 1000)
        acct.record(5, 0.9, 500)
        acct.record(3, 1.1, 1000)  # next window
        assert acct.windows() == [0, 1]
        assert acct.window_counts(0) == {3: [2, 2000], 5: [1, 500]}
        assert acct.window_total_bytes(0) == 2500
        top = acct.top_k(0, 1)
        assert top[0].flow_id == 3
        assert top[0].bytes == 2000
        assert top[0].share == pytest.approx(0.8)

    def test_top_k_ties_break_on_flow_id(self):
        acct = WindowAccountant(window=1.0)
        for flow in (9, 4, 7):
            acct.record(flow, 0.1, 1000)
        assert [s.flow_id for s in acct.top_k(0, 3)] == [4, 7, 9]

    def test_span_counts_merge_windows(self):
        acct = WindowAccountant(window=1.0)
        acct.record(1, 0.5, 100)
        acct.record(1, 1.5, 100)
        acct.record(2, 1.6, 300)
        assert acct.span_counts(0, 1) == {1: [2, 200], 2: [1, 300]}

    def test_window_geometry(self):
        acct = WindowAccountant(window=0.5, start=1.0)
        assert acct.window_index(1.0) == 0
        assert acct.window_index(1.49) == 0
        assert acct.window_index(2.0) == 2
        assert acct.window_start(2) == 2.0


class TestSpaceSavingSketch:
    def _skewed_stream(self):
        """200 updates over 30 flows; flows 0-2 are the heavy hitters."""
        stream = []
        for i in range(200):
            if i % 2 == 0:
                stream.append((i % 3, 1000))  # heavy: 0, 1, 2
            else:
                stream.append((3 + (i * 7) % 27, 100))  # light tail
        return stream

    def test_error_bound_invariant(self):
        # true <= estimate <= true + error, error <= total/capacity,
        # for every tracked key -- the Metwally et al. guarantee.
        sketch = SpaceSavingSketch(capacity=8)
        true = {}
        for key, weight in self._skewed_stream():
            sketch.update(key, weight)
            true[key] = true.get(key, 0) + weight
        assert len(sketch) == 8  # evictions actually happened
        for key, weight, _count, error in sketch.entries():
            assert true[key] <= weight <= true[key] + error
            assert error <= sketch.max_error

    def test_guaranteed_ranking_finds_heavy_hitters(self):
        sketch = SpaceSavingSketch(capacity=8)
        for key, weight in self._skewed_stream():
            sketch.update(key, weight)
        top3 = {key for key, *_ in sketch.top_k(3)}
        assert top3 == {0, 1, 2}

    def test_guaranteed_is_estimate_minus_error(self):
        sketch = SpaceSavingSketch(capacity=2)
        sketch.update(1, 10)
        sketch.update(2, 20)
        sketch.update(3, 5)  # evicts 1 (min weight), inherits floor 10
        assert sketch.estimate(3) == 15
        assert sketch.error(3) == 10
        assert sketch.guaranteed(3) == 5
        assert sketch.estimate(1) == 0  # evicted keys read as untracked

    def test_eviction_is_deterministic_on_ties(self):
        sketch = SpaceSavingSketch(capacity=2)
        sketch.update(7, 10)
        sketch.update(4, 10)
        sketch.update(9, 1)  # tie on weight: evicts the smaller key, 4
        assert sketch.estimate(4) == 0
        assert sketch.estimate(7) == 10

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpaceSavingSketch(0)


class TestSketchWindowAccountant:
    def test_per_window_sketches_are_independent(self):
        acct = SketchWindowAccountant(window=1.0, capacity=4)
        acct.record(1, 0.5, 100)
        acct.record(2, 1.5, 200)
        assert acct.windows() == [0, 1]
        assert acct.sketch(0).total_weight == 100
        assert acct.sketch(1).total_weight == 200
        assert acct.top_k(2, 3) == []  # empty window

    def test_top_k_reports_guaranteed_bytes(self):
        acct = SketchWindowAccountant(window=1.0, capacity=2)
        acct.record(1, 0.1, 10)
        acct.record(2, 0.2, 20)
        acct.record(3, 0.3, 5)  # evicts 1, inherits floor 10
        shares = acct.top_k(0, 3)
        assert shares[0].flow_id == 2
        assert shares[0].bytes == 20
        # flow 3's reported bytes are its guarantee, not its estimate.
        assert shares[1].flow_id == 3
        assert shares[1].bytes == 5


class TestPrecisionAtK:
    def _shares(self, pairs):
        from repro.forensics.windows import ranked_shares

        return ranked_shares(
            {flow: [1, nbytes] for flow, nbytes in pairs}
        )

    def test_perfect_match(self):
        exact = self._shares([(1, 300), (2, 200), (3, 100)])
        assert precision_at_k(exact, exact, 2) == 1.0

    def test_miss_scores_fractionally(self):
        exact = self._shares([(1, 300), (2, 200), (3, 100)])
        approx = self._shares([(1, 300), (9, 250)])
        assert precision_at_k(exact, approx, 2) == 0.5

    def test_tie_tolerance(self):
        # flows 2 and 3 are tied at the k-th weight: either is a hit.
        exact = self._shares([(1, 300), (2, 100), (3, 100)])
        approx = self._shares([(1, 300), (3, 100)])
        assert precision_at_k(exact, approx, 2) == 1.0

    def test_empty_exact_is_vacuously_perfect(self):
        assert precision_at_k([], self._shares([(1, 10)]), 3) == 1.0


# ----------------------------------------------------------------------
# Burst hysteresis
# ----------------------------------------------------------------------
class TestBurstDetector:
    def test_hysteresis_opens_at_enter_closes_at_exit(self):
        det = BurstDetector(enter=10, exit=4)
        det.on_sample(0.0, 5)  # below enter: nothing
        det.on_sample(1.0, 10)  # opens
        assert det.in_burst
        det.on_sample(2.0, 7)  # between exit and enter: stays open
        det.on_sample(3.0, 12)  # new peak
        det.on_sample(4.0, 4)  # closes
        assert not det.in_burst
        episodes = det.finalize(10.0)
        assert len(episodes) == 1
        ep = episodes[0]
        assert (ep.start, ep.end) == (1.0, 4.0)
        assert (ep.peak, ep.peak_time) == (12, 3.0)
        assert ep.duration == 3.0

    def test_chatter_between_thresholds_is_one_episode(self):
        det = BurstDetector(enter=10, exit=2)
        for now, length in enumerate([10, 5, 11, 6, 12, 5, 2]):
            det.on_sample(float(now), length)
        assert len(det.finalize(10.0)) == 1

    def test_drops_charge_only_open_episodes(self):
        det = BurstDetector(enter=10, exit=4)
        det.on_drop(0.5, "tail_overflow")  # no episode yet: ignored
        det.on_sample(1.0, 10)
        det.on_drop(1.5, "tail_overflow")
        det.on_drop(1.6, "red_early")
        det.on_sample(2.0, 0)
        episodes = det.finalize(10.0)
        assert episodes[0].drops == 2
        assert episodes[0].drop_causes == {
            "red_early": 1,
            "tail_overflow": 1,
        }

    def test_open_episode_closes_at_finalize(self):
        det = BurstDetector(enter=10, exit=4)
        det.on_sample(1.0, 15)
        episodes = det.finalize(16.0)
        assert episodes[0].end == 16.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            BurstDetector(enter=0, exit=0)
        with pytest.raises(ValueError):
            BurstDetector(enter=5, exit=5)
        with pytest.raises(ValueError):
            BurstDetector(enter=5, exit=-1)


# ----------------------------------------------------------------------
# Loss-synchronization clustering and linkage
# ----------------------------------------------------------------------
class TestLossSyncDetector:
    def test_quorum_within_window_is_one_event(self):
        det = LossSyncDetector(n_flows=10, window=1.0, fraction=0.3)
        assert det.min_flows == 3
        for flow, t in [(1, 0.0), (2, 0.4), (3, 0.8)]:
            det.on_loss(flow, t)
        events = det.finalize()
        assert len(events) == 1
        assert events[0].flows == (1, 2, 3)
        assert (events[0].time, events[0].end) == (0.0, 0.8)
        assert events[0].fraction == pytest.approx(0.3)

    def test_sub_quorum_is_no_event(self):
        det = LossSyncDetector(n_flows=10, window=1.0, fraction=0.3)
        det.on_loss(1, 0.0)
        det.on_loss(2, 0.5)
        assert det.finalize() == []

    def test_repeat_cuts_by_one_flow_are_not_distinct(self):
        det = LossSyncDetector(n_flows=10, window=1.0, fraction=0.3)
        for t in (0.0, 0.2, 0.4, 0.6):
            det.on_loss(1, t)
        det.on_loss(2, 0.3)
        assert det.finalize() == []

    def test_separated_waves_are_separate_events(self):
        det = LossSyncDetector(n_flows=10, window=1.0, fraction=0.3)
        for flow, t in [(1, 0.0), (2, 0.1), (3, 0.2)]:
            det.on_loss(flow, t)
        for flow, t in [(4, 5.0), (5, 5.1), (6, 5.2)]:
            det.on_loss(flow, t)
        events = det.finalize()
        assert [e.flows for e in events] == [(1, 2, 3), (4, 5, 6)]

    def test_quorum_floor_is_two_flows(self):
        det = LossSyncDetector(n_flows=3, window=1.0, fraction=0.1)
        assert det.min_flows == 2

    def test_loss_states_are_the_multiplicative_cuts(self):
        assert LOSS_STATES == {"timeout", "fast_retransmit", "ecn_cut"}


class TestLinkBursts:
    def _sync(self, time, end, flows=(1, 2)):
        return SyncEvent(
            time=time, end=end, flows=flows, fraction=len(flows) / 10
        )

    def _episode(self, start, end):
        return BurstEpisode(start=start, end=end)

    def test_preceding_sync_links(self):
        sync = self._sync(1.0, 1.5)
        links = link_bursts(
            [self._episode(2.0, 3.0)], [sync], lookback=5.0, horizon=2.0
        )
        assert links == [("preceding", sync)]

    def test_latest_preceding_sync_wins(self):
        early, late = self._sync(0.5, 0.8), self._sync(1.0, 1.5)
        links = link_bursts(
            [self._episode(2.0, 3.0)], [early, late], lookback=5.0, horizon=2.0
        )
        assert links[0][1] is late

    def test_stale_sync_does_not_link(self):
        links = link_bursts(
            [self._episode(10.0, 11.0)],
            [self._sync(1.0, 1.5)],
            lookback=5.0,
            horizon=2.0,
        )
        assert links == [("", None)]

    def test_triggered_inside_and_within_horizon(self):
        inside = self._sync(2.5, 2.8)
        links = link_bursts(
            [self._episode(2.0, 3.0)], [inside], lookback=5.0, horizon=2.0
        )
        assert links == [("triggered", inside)]
        lagged = self._sync(4.5, 4.9)  # within end + horizon
        links = link_bursts(
            [self._episode(2.0, 3.0)], [lagged], lookback=5.0, horizon=2.0
        )
        assert links == [("triggered", lagged)]


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
class TestForensicsConfig:
    def test_params_resolve_defaults(self):
        config = paper_config(forensics=True)
        params = ForensicsParams.from_config(config)
        assert params.window == config.rtt_prop
        assert params.sync_window == config.rtt_prop
        assert params.sketch_capacity == 4 * config.forensics_top_k
        assert params.burst_enter == round(0.6 * config.buffer_capacity)
        assert params.burst_exit == round(0.3 * config.buffer_capacity)
        assert params.sync_fraction == 0.25

    def test_explicit_overrides_win(self):
        config = paper_config(
            forensics=True,
            forensics_window=0.25,
            forensics_sketch_capacity=64,
        )
        params = ForensicsParams.from_config(config)
        assert params.window == 0.25
        assert params.sketch_capacity == 64

    def test_exit_clamped_below_enter(self):
        config = paper_config(
            forensics=True,
            buffer_capacity=2,
            forensics_burst_enter=0.5,
            forensics_burst_exit=0.49,
        )
        params = ForensicsParams.from_config(config)
        assert params.burst_exit < params.burst_enter
        assert params.burst_exit >= 0

    def test_fluid_backend_rejected(self):
        # The capability table names the backend and the feature; the
        # hybrid backend's foreground flows are real packets, so
        # forensics is allowed there (tests/test_hybrid_properties.py).
        config = paper_config(backend="fluid", forensics=True)
        with pytest.raises(ValueError, match="burst forensics"):
            config.validate()

    def test_knob_range_validation(self):
        for overrides in [
            dict(forensics_window=-1.0),
            dict(forensics_top_k=0),
            dict(forensics_sketch_capacity=-1),
            dict(forensics_burst_enter=0.0),
            dict(forensics_burst_enter=1.5),
            dict(forensics_burst_exit=0.9),  # >= enter
            dict(forensics_sync_fraction=0.0),
            dict(forensics_sync_fraction=1.5),
        ]:
            config = paper_config(forensics=True, **overrides)
            with pytest.raises(ValueError):
                config.validate()

    def test_knobs_are_digest_excluded(self):
        base = paper_config(**BASE)
        tweaked = base.with_(
            forensics=True,
            forensics_top_k=9,
            forensics_window=0.1,
            forensics_sketch_capacity=128,
            forensics_burst_enter=0.8,
            forensics_burst_exit=0.1,
            forensics_sync_fraction=0.5,
        )
        assert tweaked.config_digest() == base.config_digest()
        # Observation-only knobs never bump the schema themselves; the
        # pin is >= so unrelated physics bumps (e.g. v5's hybrid
        # backend) don't trip it.
        assert CONFIG_SCHEMA_VERSION >= 4


# ----------------------------------------------------------------------
# Integration: the seeded droptail dumbbell
# ----------------------------------------------------------------------
class TestDroptailForensics:
    def test_bursts_detected_and_attributed(self, droptail_report):
        report = droptail_report.forensics
        assert report.n_bursts >= 3
        for burst in report.bursts:
            assert burst.episode.end > burst.episode.start
            assert burst.exact_top, "burst with no attributed traffic"
            shares = [s.share for s in burst.exact_top]
            assert shares == sorted(shares, reverse=True)

    def test_sketch_precision_gate(self, droptail_report):
        # The acceptance gate: the 20-counter sketch recovers the exact
        # top-5 with precision >= 0.9 across every burst's windows.
        report = droptail_report.forensics
        assert report.precision >= 0.9
        for burst in report.bursts:
            assert burst.precision >= 0.75  # no single catastrophic burst

    def test_sketch_is_genuinely_lossy(self, droptail_report):
        # The precision gate means nothing if the sketch never evicted:
        # capacity (20) < flows (40), so busy windows must saturate.
        report = droptail_report.forensics
        assert report.params.sketch_capacity < report.n_flows
        evictions = 0
        saturated = 0
        for index in report.sketch.windows():
            sketch = report.sketch.sketch(index)
            if len(sketch) == sketch.capacity:
                saturated += 1
            evictions += sum(1 for *_, e in sketch.entries() if e > 0)
        assert saturated > 0
        assert evictions > 0

    def test_every_droptail_burst_links_to_a_sync_event(
        self, droptail_report
    ):
        report = droptail_report.forensics
        assert report.n_sync_events > 0
        assert report.n_sync_linked == report.n_bursts
        for burst in report.bursts:
            assert burst.sync_relation in ("preceding", "triggered")
            assert not math.isnan(burst.sync_time)
            assert burst.sync_flows >= 2

    def test_metrics_flatten_the_report(self, droptail_report):
        report = droptail_report.forensics
        metrics = ScenarioMetrics.from_result(droptail_report)
        assert metrics.forensic_bursts == report.n_bursts
        assert metrics.forensic_sync_events == report.n_sync_events
        assert metrics.forensic_sync_linked == report.n_sync_linked
        assert metrics.forensic_precision_at_k == pytest.approx(
            report.precision
        )
        assert metrics.forensic_top_flow == report.top_flow
        assert 0 < metrics.forensic_burst_time_fraction <= 1
        assert 0 < metrics.forensic_top_flow_share < 1

    def test_render_mentions_every_burst(self, droptail_report):
        report = droptail_report.forensics
        text = report.render(top=3)
        assert "Burst episodes" in text
        assert "Loss-synchronization events" in text
        for i in range(report.n_bursts):
            assert f"Burst {i} culprits" in text

    def test_matches_golden_report(self, droptail_report, request):
        payload = droptail_report.forensics.as_dict()
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        path = GOLDEN_DIR / "forensics_reno_fifo_n40.json"
        if request.config.getoption("--update-goldens"):
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            return
        assert path.exists(), (
            f"golden {path.name} missing; generate it with "
            "pytest tests/test_forensics.py --update-goldens"
        )
        golden = json.dumps(
            json.loads(path.read_text()), indent=2, sort_keys=True
        ) + "\n"
        assert text == golden, (
            "forensics report diverged from the golden (if intentional, "
            "rerun with --update-goldens)"
        )


# ----------------------------------------------------------------------
# Integration: the paper's smoothing claim, per episode
# ----------------------------------------------------------------------
class TestRedSmoothing:
    def test_red_shows_fewer_sync_linked_bursts(self):
        # Same load, physical headroom above max_th (at the paper's
        # buffer of 50, N=40 minimum windows alone overflow the buffer
        # and no AQM can desynchronize anything).
        base = paper_config(**BASE, forensics=True, buffer_capacity=100)
        fifo = run_scenario(base).forensics
        red = run_scenario(base.with_(queue="red")).forensics
        assert fifo.n_bursts > 0
        assert fifo.n_sync_linked == fifo.n_bursts  # droptail signature
        assert red.n_bursts < fifo.n_bursts
        assert red.n_sync_linked < fifo.n_sync_linked
        assert red.burst_time_fraction < fifo.burst_time_fraction


# ----------------------------------------------------------------------
# Integration: breadth (schedulers, protocols, AQMs, export)
# ----------------------------------------------------------------------
class TestForensicsBreadth:
    def test_schedulers_agree(self, droptail_report):
        config = paper_config(**BASE, forensics=True, scheduler="wheel")
        wheel = run_scenario(config)
        heap_payload = droptail_report.forensics.as_dict()
        wheel_payload = wheel.forensics.as_dict()
        assert json.dumps(heap_payload, sort_keys=True) == json.dumps(
            wheel_payload, sort_keys=True
        )

    @pytest.mark.parametrize(
        "protocol", ["tahoe", "reno", "newreno", "sack"]
    )
    @pytest.mark.parametrize("queue", ["red", "ared"])
    def test_protocol_aqm_matrix_runs(self, protocol, queue):
        config = paper_config(
            n_clients=8,
            duration=3.0,
            seed=2,
            protocol=protocol,
            queue=queue,
            forensics=True,
        )
        report = run_scenario(config).forensics
        assert report is not None
        assert report.n_bursts >= 0  # may legitimately be burst-free

    def test_obs_bundle_exports_forensics(self, tmp_path):
        config = paper_config(
            n_clients=12, duration=4.0, seed=3, forensics=True
        )
        result = run_scenario(config)
        assert result.obs is not None
        written = result.obs.export(str(tmp_path))
        names = {Path(p).name for p in written}
        assert "forensics.json" in names
        assert "forensic_attribution.jsonl" in names
        payload = json.loads((tmp_path / "forensics.json").read_text())
        assert payload["n_flows"] == 12
        rows = [
            json.loads(line)
            for line in (tmp_path / "forensic_attribution.jsonl")
            .read_text()
            .splitlines()
        ]
        assert {row["source"] for row in rows} == {"exact", "sketch"}

    def test_csv_export_format(self, tmp_path):
        config = paper_config(
            n_clients=12, duration=4.0, seed=3, forensics=True
        )
        result = run_scenario(config)
        result.obs.export(str(tmp_path), fmt="csv")
        header = (
            (tmp_path / "forensic_attribution.csv")
            .read_text()
            .splitlines()[0]
        )
        assert header.split(",")[:3] == ["time", "window", "source"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestForensicsCli:
    def test_forensics_subcommand(self, capsys, tmp_path):
        json_path = tmp_path / "report.json"
        code = main(
            [
                "forensics",
                "--clients",
                "12",
                "--duration",
                "4",
                "--seed",
                "3",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Burst forensics" in out
        payload = json.loads(json_path.read_text())
        assert payload["n_flows"] == 12

    def test_run_forensics_flag(self, capsys):
        code = main(
            [
                "run",
                "--clients",
                "12",
                "--duration",
                "4",
                "--seed",
                "3",
                "--forensics",
            ]
        )
        assert code == 0
        assert "Burst forensics" in capsys.readouterr().out
