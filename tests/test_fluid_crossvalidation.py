"""Cross-validation: simulator steady state vs the fluid models.

Single backlogged flows on a dedicated bottleneck have closed-form
steady states; the packet simulator must land on them.  These tests tie
the transport implementations to first-principles numbers rather than
to their own behaviour.

The topology uses a 20 ms bottleneck delay (BDP ~ 16.5 packets) so the
fixed points are reached well inside the run; at the paper's 200 ms the
convergence alone takes minutes of simulated time (and Vegas's
well-known conservatism on long fat pipes dominates -- see the module
test at the bottom, which documents that behaviour rather than hiding
it).
"""

import pytest

from repro.analysis.timeseries import sample_step_series, uniform_grid
from repro.core.fluid import reno_fluid_throughput, vegas_equilibrium_window
from repro.experiments.config import paper_config
from repro.experiments.scenario import run_scenario

BOTTLENECK_DELAY = 0.02
RTT_PROP = 2 * (0.002 + BOTTLENECK_DELAY)  # 0.044 s
CAPACITY_PPS = 375.0
BDP = CAPACITY_PPS * RTT_PROP  # ~16.5 packets


def backlogged_config(protocol, **overrides):
    """One flow, effectively infinite offered load, big windows."""
    defaults = dict(
        protocol=protocol,
        n_clients=1,
        traffic="cbr",
        mean_gap=0.002,  # 500 pkt/s offered >> 375 pkt/s capacity
        advertised_window=400,
        duration=120.0,
        seed=1,
        trace_cwnd_flows=(0,),
        bottleneck_delay=BOTTLENECK_DELAY,
    )
    defaults.update(overrides)
    return paper_config(**defaults)


def steady_cwnd(result, t_start=60.0, t_end=120.0, step=0.25):
    grid = uniform_grid(t_start, t_end, step)
    return sample_step_series(result.cwnd_traces[0], grid, initial=1.0)


class TestVegasEquilibrium:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(backlogged_config("vegas"))

    def test_window_converges_near_bdp_plus_backlog(self, result):
        window = steady_cwnd(result)
        low, high = vegas_equilibrium_window(
            CAPACITY_PPS, RTT_PROP, alpha=1.0, beta=3.0
        )
        mean_window = float(window.mean())
        # Within a couple of packets of the fluid fixed point (packet
        # quantization and ACK clocking shift it slightly upward).
        assert low - 1.0 <= mean_window <= high + 2.0

    def test_window_is_flat_at_equilibrium(self, result):
        window = steady_cwnd(result)
        assert float(window.std()) < 1.0

    def test_queue_parked_between_alpha_and_beta(self, result):
        assert 0.5 <= result.mean_queue_length <= 4.0

    def test_lossless_and_timeout_free(self, result):
        assert result.gateway_drops == 0
        assert result.timeouts == 0

    def test_full_utilization(self, result):
        assert result.utilization > 0.97


class TestRenoSawtooth:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(backlogged_config("reno"))

    def test_steady_mean_window_inside_sawtooth_band(self, result):
        # The AIMD sawtooth oscillates between (BDP+B)/2 and BDP+B.
        window = steady_cwnd(result)
        peak = BDP + 50.0
        assert peak / 2.0 * 0.8 <= float(window.mean()) <= peak * 1.0

    def test_multiplicative_decrease_halves_the_window(self, result):
        values = [v for _t, v in result.cwnd_traces[0]]
        drops = [
            (prev, curr)
            for prev, curr in zip(values, values[1:])
            if curr < prev * 0.9 and prev > 30
        ]
        assert drops, "expected multiplicative decreases"
        halvings = 0
        for prev, curr in drops:
            if curr == 1.0:
                continue  # a timeout collapse, not a halving
            # ``prev`` may be the dupack-inflated window (up to ~1.5x the
            # window at loss detection), so the deflation to ssthresh
            # lands between prev/3.6 and prev/1.4.
            assert prev / 3.6 <= curr <= prev / 1.4
            halvings += 1
        assert halvings >= 1

    def test_losses_occur_and_recovery_is_mostly_fast(self, result):
        assert result.gateway_drops > 0
        assert result.fast_retransmits > result.timeouts

    def test_high_utilization_despite_sawtooth(self, result):
        # B ~ 3x BDP: the buffer rides out the halvings.
        assert result.utilization > 0.95

    def test_mathis_law_within_factor_three(self, result):
        p = result.gateway_drops / max(result.gateway_arrivals, 1)
        assert p > 0
        # Effective RTT includes the standing queue.
        rtt = RTT_PROP + result.mean_queue_length / CAPACITY_PPS
        predicted = reno_fluid_throughput(rtt, p)
        ratio = result.throughput_pps / predicted
        assert 1 / 3 < ratio < 3


class TestUdpSaturation:
    def test_backlogged_udp_fills_pipe_exactly(self):
        result = run_scenario(
            backlogged_config("udp", advertised_window=20, duration=60.0)
        )
        # Deterministic 500 pkt/s offered into a 375 pkt/s bottleneck:
        # full utilization, and the excess is dropped.
        assert result.utilization == pytest.approx(1.0, abs=0.02)
        loss_fraction = result.loss_percent / 100.0
        assert loss_fraction == pytest.approx(1.0 - 375.0 / 500.0, abs=0.02)


class TestVegasLongFatPipeConservatism:
    def test_documented_underutilization_at_paper_scale(self):
        """At the paper's 200 ms bottleneck (BDP ~ 151 packets) a single
        Vegas flow underutilizes the link within the paper's 200 s test
        time: the micro-queueing of its own ACK-clocked bursts inflates
        the RTT enough for the backlog estimate to reach alpha long
        before the window reaches the BDP -- Vegas's well-documented
        conservatism on long fat pipes.  This is a characterization, not
        a bug: the assertion pins the behaviour so a change to the Vegas
        estimator shows up here."""
        result = run_scenario(
            backlogged_config(
                "vegas", bottleneck_delay=0.2, duration=60.0
            )
        )
        assert result.utilization < 0.8
        assert result.gateway_drops <= 20  # conservative, nearly lossless
