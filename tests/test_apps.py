"""Tests for the closed-loop application-workload subsystem.

Covers the work-unit machinery (completion detection, timeouts), each
workload's behaviour inside a full scenario, seed determinism (same
seed => bit-identical job metrics), and the threading of AppMetrics
through ScenarioResult / ScenarioMetrics / the CLI.
"""

import math

import pytest

from repro.apps.metrics import AppMetrics
from repro.experiments.cli import main as cli_main
from repro.experiments.config import paper_config
from repro.experiments.results import ScenarioMetrics
from repro.experiments.scenario import Scenario, run_scenario


def small_config(**overrides):
    defaults = dict(n_clients=6, duration=15.0, seed=3)
    defaults.update(overrides)
    return paper_config(**defaults)


class TestRpcWorkload:
    def test_requests_complete_with_positive_latency(self):
        result = run_scenario(small_config(workload="rpc"))
        app = result.app
        assert app is not None and app.workload == "rpc"
        assert app.units_completed > 0
        assert app.units_issued >= app.units_completed
        assert 0 < app.latency_p50 <= app.latency_p99 <= app.latency_max
        # The response-path model puts a hard floor under the latency:
        # one forward RTT's worth of propagation at the very least.
        config = result.config
        assert app.latency_p50 > config.client_delay + config.bottleneck_delay

    def test_outstanding_window_scales_offered_load(self):
        narrow = run_scenario(small_config(workload="rpc", rpc_outstanding=1))
        wide = run_scenario(small_config(workload="rpc", rpc_outstanding=4))
        assert wide.app.units_issued > narrow.app.units_issued

    def test_closed_loop_throttles_under_congestion(self):
        # The same client population completes fewer requests per second
        # when the bottleneck is congested: backpressure reaches the app.
        fast = run_scenario(small_config(workload="rpc"))
        slow = run_scenario(
            small_config(workload="rpc", bottleneck_rate_bps=0.1e6)
        )
        assert slow.app.achieved_unit_rate < fast.app.achieved_unit_rate
        assert slow.app.latency_p50 > fast.app.latency_p50

    def test_per_flow_series_live_on_the_workloads(self):
        scenario = Scenario(small_config(workload="rpc"))
        scenario.run()
        assert len(scenario.apps) == 6
        assert all(app.request_latencies for app in scenario.apps)


class TestBspWorkload:
    def test_supersteps_and_stalls(self):
        result = run_scenario(small_config(workload="bsp", bsp_shuffle_packets=10))
        app = result.app
        assert app.workload == "bsp"
        assert app.supersteps > 0
        assert app.barrier_stall_mean >= 0.0
        assert app.barrier_stall_max >= app.barrier_stall_mean

    def test_barrier_accounting_is_consistent(self):
        scenario = Scenario(small_config(workload="bsp", bsp_shuffle_packets=10))
        scenario.run()
        coordinator = scenario.bsp_coordinator
        assert coordinator is not None
        # Every completed superstep records exactly one stall per worker,
        # and every superstep at least one worker stalls zero seconds
        # (the last arriver defines the barrier).
        for app in scenario.apps:
            assert len(app.barrier_stalls) == coordinator.supersteps_completed
        for step in range(coordinator.supersteps_completed):
            stalls = [app.barrier_stalls[step] for app in scenario.apps]
            assert min(stalls) == pytest.approx(0.0)

    def test_workers_advance_in_lockstep(self):
        scenario = Scenario(small_config(workload="bsp", bsp_shuffle_packets=10))
        scenario.run()
        issued = {app.units_issued for app in scenario.apps}
        # No worker can be more than one superstep ahead of the barrier.
        assert max(issued) - min(issued) <= 1


class TestBulkWorkload:
    def test_jobs_complete_and_time_is_physical(self):
        config = small_config(workload="bulk", bulk_job_packets=50)
        result = run_scenario(config)
        app = result.app
        assert app.workload == "bulk"
        assert app.units_completed > 0
        # A 50-packet job cannot finish faster than its serialization
        # plus one-way propagation through the dumbbell.
        floor = (
            50 * config.packet_size * 8.0 / config.bottleneck_rate_bps
            + config.client_delay
            + config.bottleneck_delay
        )
        assert app.job_time_p50 >= floor

    def test_udp_cannot_finish_oversized_jobs(self):
        # 200-packet UDP blasts through a 50-packet buffer always lose
        # packets, and UDP never repairs them: zero jobs complete, and
        # with a short unit timeout the losses surface as failures.
        result = run_scenario(
            small_config(workload="bulk", protocol="udp", workload_timeout=2.0)
        )
        app = result.app
        assert app.units_completed == 0
        assert app.units_failed > 0


class TestDeterminism:
    @pytest.mark.parametrize("workload", ["rpc", "bsp", "bulk"])
    def test_same_seed_bit_identical_series(self, workload):
        config = small_config(workload=workload)
        first = Scenario(config)
        first.run()
        second = Scenario(config)
        second.run()
        for app_a, app_b in zip(first.apps, second.apps):
            for series in ("request_latencies", "job_times", "barrier_stalls"):
                assert getattr(app_a, series, []) == getattr(app_b, series, [])
            assert app_a.units_issued == app_b.units_issued
            assert app_a.units_completed == app_b.units_completed
            assert app_a.units_failed == app_b.units_failed

    @pytest.mark.parametrize("workload", ["rpc", "bulk"])
    def test_different_seed_different_series(self, workload):
        first = Scenario(small_config(workload=workload, seed=3))
        first.run()
        second = Scenario(small_config(workload=workload, seed=4))
        second.run()
        def series(scenario):
            return [
                tuple(getattr(a, "request_latencies", ()))
                + tuple(getattr(a, "job_times", ()))
                for a in scenario.apps
            ]

        assert series(first) != series(second)


class TestMetricsThreading:
    def test_scenario_metrics_carry_app_fields(self):
        result = run_scenario(small_config(workload="rpc"))
        metrics = ScenarioMetrics.from_result(result)
        assert metrics.app_workload == "rpc"
        assert metrics.app_units_completed == result.app.units_completed
        assert metrics.app_latency_p99 == result.app.latency_p99
        assert "+RPC" in metrics.label

    def test_open_loop_runs_have_empty_app_fields(self):
        result = run_scenario(small_config())
        assert result.app is None
        metrics = ScenarioMetrics.from_result(result)
        assert metrics.app_workload == ""
        assert metrics.app_units_issued == 0
        assert math.isnan(metrics.app_latency_mean)

    def test_app_metrics_round_trips_via_dict(self):
        result = run_scenario(small_config(workload="bulk", bulk_job_packets=50))
        app = result.app
        rebuilt = AppMetrics.from_dict(app.as_dict())
        assert rebuilt.units_completed == app.units_completed
        assert rebuilt.job_time_mean == app.job_time_mean

    def test_scenario_metrics_from_dict_accepts_old_records(self):
        # A record written before the apps subsystem existed (no app_*
        # keys) must still load, with the workload fields defaulted.
        result = run_scenario(small_config())
        record = ScenarioMetrics.from_result(result).as_dict()
        for key in list(record):
            if key.startswith("app_"):
                del record[key]
        metrics = ScenarioMetrics.from_dict(record)
        assert metrics.app_workload == ""
        assert math.isnan(metrics.app_latency_p99)

    def test_describe_mentions_the_unit_noun(self):
        result = run_scenario(small_config(workload="rpc"))
        text = result.app.describe()
        assert "request" in text
        assert "latency" in text


class TestCliWorkloads:
    @pytest.mark.parametrize("workload", ["rpc", "bsp", "bulk"])
    def test_run_subcommand(self, workload, capsys):
        code = cli_main(
            [
                "run",
                "--workload",
                workload,
                "--clients",
                "4",
                "--duration",
                "6",
                "--bulk-job-packets",
                "40",
                "--bsp-shuffle-packets",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"application workload: {workload}" in out

    def test_workload_flags_reach_the_config(self, capsys):
        code = cli_main(
            [
                "run",
                "--workload",
                "rpc",
                "--clients",
                "4",
                "--duration",
                "6",
                "--rpc-outstanding",
                "3",
                "--rpc-think",
                "0.05",
            ]
        )
        assert code == 0
        assert "+RPC" in capsys.readouterr().out
