"""Unit tests for TCP Vegas."""


import pytest

from repro.transport.tcp_base import TcpParams
from repro.transport.vegas import VegasParams, VegasSender

from tests.helpers import TcpHarness


def make_harness(cwnd=2.0, alpha=1.0, beta=3.0, gamma=1.0, **overrides):
    params = TcpParams(
        initial_cwnd=cwnd,
        initial_ssthresh=overrides.pop("ssthresh", 64.0),
        **overrides,
    )
    return TcpHarness(
        VegasSender,
        {
            "params": params,
            "vegas_params": VegasParams(alpha=alpha, beta=beta, gamma=gamma),
        },
    )


def ack_after(h, rtt):
    """Advance the clock by ``rtt`` and cumulatively ACK everything."""
    h.advance(rtt)
    h.ack_all_outstanding()


class TestVegasParams:
    def test_defaults_match_paper(self):
        params = VegasParams()
        assert (params.alpha, params.beta, params.gamma) == (1.0, 3.0, 1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(alpha=-1.0), dict(alpha=3.0, beta=1.0), dict(gamma=-0.5)],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            VegasParams(**kwargs).validate()


class TestBaseRtt:
    def test_base_rtt_tracks_minimum(self):
        h = make_harness()
        h.give_app_packets(100)
        ack_after(h, 0.5)
        assert h.sender.base_rtt == pytest.approx(0.5)
        ack_after(h, 0.3)
        assert h.sender.base_rtt == pytest.approx(0.3)
        ack_after(h, 0.9)
        assert h.sender.base_rtt == pytest.approx(0.3)

    def test_queue_estimate_zero_at_base_rtt(self):
        h = make_harness()
        h.give_app_packets(100)
        ack_after(h, 0.5)
        assert h.sender.queue_estimate(0.5) == pytest.approx(0.0)

    def test_queue_estimate_counts_backlog(self):
        h = make_harness(cwnd=10.0)
        h.give_app_packets(100)
        ack_after(h, 0.5)  # base RTT 0.5
        # backlog = W * (1 - base/rtt); at rtt = 2*base it is W/2.
        window = h.sender.window()
        assert h.sender.queue_estimate(1.0) == pytest.approx(window / 2.0)


class TestSlowStart:
    def test_doubles_every_other_rtt(self):
        h = make_harness(cwnd=2.0)
        h.give_app_packets(1000)
        ack_after(h, 0.5)  # epoch 1: grow allowed -> cwnd 4
        assert h.sender.cwnd == 4.0
        ack_after(h, 0.5)  # epoch 2: hold
        assert h.sender.cwnd == 4.0
        ack_after(h, 0.5)  # epoch 3: grow -> 8
        assert h.sender.cwnd == 8.0

    def test_exits_on_gamma_with_shrink(self):
        h = make_harness(cwnd=8.0, gamma=1.0)
        h.give_app_packets(1000)
        ack_after(h, 0.5)  # base rtt 0.5; cwnd doubles to 16
        assert h.sender.in_slow_start
        # Now inflate the RTT so the backlog estimate exceeds gamma.
        ack_after(h, 1.0)
        assert not h.sender.in_slow_start
        assert h.sender.cwnd == pytest.approx(16.0 * 0.875)

    def test_cap_at_advertised_window(self):
        h = make_harness(cwnd=16.0, advertised_window=20)
        h.give_app_packets(1000)
        ack_after(h, 0.5)
        assert h.sender.cwnd == 20.0


class TestCongestionAvoidance:
    # A huge RTO keeps the coarse retransmission timer out of these
    # hand-clocked tests.
    NO_TIMEOUT = dict(min_rto=50.0, initial_rto=50.0, max_rto=64.0)

    def setup_ca(self, h, base=0.5):
        """Push the sender out of slow start with one inflated RTT."""
        h.give_app_packets(10_000)
        ack_after(h, base)
        ack_after(h, base * 3)  # exit slow start
        assert not h.sender.in_slow_start
        assert h.sender.stats.timeouts == 0

    def test_increase_when_below_alpha(self):
        h = make_harness(cwnd=4.0, **self.NO_TIMEOUT)
        self.setup_ca(h)
        cwnd = h.sender.cwnd
        ack_after(h, 0.5)  # rtt == base: diff 0 < alpha
        assert h.sender.cwnd == cwnd + 1.0

    def test_decrease_when_above_beta(self):
        h = make_harness(cwnd=10.0, **self.NO_TIMEOUT)
        self.setup_ca(h)
        cwnd = h.sender.cwnd
        # RTT big enough that backlog estimate > beta=3.
        ack_after(h, 2.0)
        assert h.sender.cwnd == cwnd - 1.0

    def test_hold_between_alpha_and_beta(self):
        h = make_harness(cwnd=4.0, alpha=1.0, beta=3.0, **self.NO_TIMEOUT)
        self.setup_ca(h)
        cwnd = h.sender.cwnd
        # Pick an RTT giving backlog estimate of exactly 2 (between 1 and 3):
        # diff = W * (1 - base/rtt); want diff = 2 -> rtt = base*W/(W-2).
        base = h.sender.base_rtt
        rtt = base * cwnd / (cwnd - 2.0)
        ack_after(h, rtt)
        assert h.sender.cwnd == cwnd

    def test_floor_of_two(self):
        h = make_harness(cwnd=2.0, **self.NO_TIMEOUT)
        self.setup_ca(h)
        for _ in range(5):
            ack_after(h, 3.0)
        assert h.sender.cwnd >= 2.0


class TestVegasLossRecovery:
    def test_three_dupacks_retransmit_and_shrink_quarter(self):
        h = make_harness(cwnd=8.0)
        h.give_app_packets(100)
        h.advance(0.5)
        h.deliver_ack(0)
        cwnd = h.sender.cwnd
        for _ in range(3):
            h.deliver_ack(0)
        assert h.sender.stats.fast_retransmits == 1
        assert h.sent_seqnos().count(1) == 2
        assert h.sender.cwnd == pytest.approx(max(2.0, cwnd * 0.75))

    def test_fine_grained_retransmit_on_first_dupack(self):
        h = make_harness(cwnd=8.0, initial_rto=0.3)
        h.give_app_packets(100)
        h.advance(0.5)
        h.deliver_ack(0)
        # Make the fine timeout for packet 1 expire (it was sent at t=0).
        h.advance(5.0)
        h.deliver_ack(0)  # first dupack
        assert h.sender.stats.fast_retransmits == 1

    def test_no_duplicate_retransmit_within_rtt(self):
        h = make_harness(cwnd=8.0)
        h.give_app_packets(100)
        h.advance(0.5)
        h.deliver_ack(0)
        for _ in range(3):
            h.deliver_ack(0)
        assert h.sent_seqnos().count(1) == 2
        # Immediate extra dupacks must not resend packet 1 again.
        h.deliver_ack(0)
        h.deliver_ack(0)
        h.deliver_ack(0)
        assert h.sent_seqnos().count(1) == 2

    def test_at_most_one_reduction_per_rtt(self):
        h = make_harness(cwnd=16.0)
        h.give_app_packets(100)
        h.advance(0.5)
        h.deliver_ack(0)
        for _ in range(3):
            h.deliver_ack(0)
        after_first = h.sender.cwnd
        # A second loss signal within the same RTT: no further shrink.
        h.advance(0.01)
        for _ in range(3):
            h.deliver_ack(0)
        assert h.sender.cwnd == after_first

    def test_timeout_restarts_slow_start_from_two(self):
        h = make_harness(cwnd=10.0, initial_rto=1.0, min_rto=1.0)
        h.give_app_packets(100)
        h.advance(1.5)
        assert h.sender.stats.timeouts == 1
        assert h.sender.cwnd == 2.0
        assert h.sender.in_slow_start


class TestVegasEpochs:
    def test_no_adjustment_mid_epoch(self):
        h = make_harness(cwnd=4.0)
        h.give_app_packets(1000)
        ack_after(h, 0.5)
        cwnd = h.sender.cwnd
        marker = h.sender._epoch_marker
        # An ACK below the epoch marker must not re-adjust the window.
        h.advance(0.1)
        h.deliver_ack(marker - 2)
        assert h.sender.cwnd == cwnd

    def test_diff_history_recorded(self):
        h = make_harness()
        h.give_app_packets(100)
        ack_after(h, 0.5)
        ack_after(h, 0.6)
        assert len(h.sender.diff_history) >= 1

    def test_protocol_name(self):
        assert VegasSender.protocol_name == "vegas"
