"""Hybrid-vs-packet cross-validation gate.

Runs {reno, vegas} x {droptail, RED} at N=50 through the pure packet
engine and through the hybrid backend with K=10 foreground flows, and
checks the hybrid foreground against the *same ten flows* of the packet
run within documented tolerance bands.  The comparison is meaningful
flow by flow because both backends derive client ``i``'s offered
traffic from the same seeded RNG stream (``client-i/poisson``): the two
runs differ only in how the other 40 flows are modeled.

This is the differential suite the CI ``fluid-xval`` job runs for its
hybrid cells; set ``REPRO_HYBRID_XVAL_REPORT=/path/report.json`` to
also write a machine-readable tolerance report (uploaded as a CI
artifact).

Both backends are deterministic at a fixed seed, so the bands measure
real model error, not run-to-run noise.  The bands (derivation and
validity envelope in DESIGN.md section 16; empirically calibrated over
8 cells = 4 protocol/queue combos x 2 seeds):

* foreground aggregate throughput: hybrid/packet ratio in
  ``[0.75, 1.35]`` (observed 0.94-1.25; the fluid background is
  slightly smoother than 40 real flows, so the foreground usually
  clears a little more);
* per-foreground-flow throughput: each flow's ratio in ``[0.3, 3.0]``
  -- individual TCP flow outcomes are dominated by which packets the
  loss realization happens to hit (observed 0.36-2.43, widest under
  Vegas/droptail), so the per-flow band is wide while the aggregate
  band above stays tight;
* foreground rate c.o.v.: hybrid in
  ``[0.3 * packet - 0.02, packet + 0.12]`` (the same asymmetric band
  as the pure-fluid gate, for the same reason: the deterministic
  background legitimately lacks finite-N stochastic synchronization);
* foreground loss percentage: absolute error <= 3.5 points (observed
  <= 2.8);
* mean gateway queue: absolute error <= 20 packets -- wider than the
  pure-fluid band because the hybrid reports the fluid trajectory's
  mean while the packet reference at N=50 fluctuates around a lower
  operating point (fluid droptail holds the buffer near full; observed
  error <= 16.2).
"""

import json
import os

import numpy as np
import pytest

from repro.core.cov import coefficient_of_variation
from repro.core.dependence import bin_flow_times
from repro.experiments.config import paper_config
from repro.experiments.scenario import run_scenario

DURATION = 60.0
WARMUP = 10.0
N_CLIENTS = 50
FOREGROUND = 10
CELLS = (
    ("reno", "fifo"),
    ("reno", "red"),
    ("vegas", "fifo"),
    ("vegas", "red"),
)

# Tolerance bands -- keep in sync with DESIGN.md section 16.
AGG_THROUGHPUT_RATIO = (0.75, 1.35)
PER_FLOW_RATIO = (0.3, 3.0)
COV_LOW_FACTOR = 0.3
COV_LOW_SLACK = 0.02
COV_HIGH_SLACK = 0.12
LOSS_ABS_TOL = 3.5
QUEUE_ABS_TOL = 20.0


def _cell_config(protocol, queue, backend):
    config = paper_config(
        protocol=protocol,
        queue=queue,
        n_clients=N_CLIENTS,
        backend=backend,
        duration=DURATION,
        warmup=WARMUP,
    )
    if backend == "hybrid":
        return config.with_(hybrid_foreground_flows=FOREGROUND)
    # The packet reference records per-flow arrival times so the same
    # ten foreground flows can be binned into their own c.o.v.; the
    # wheel scheduler keeps the 50-client cells cheap (digest-excluded,
    # identical event sequence).
    return config.with_(record_flow_arrivals=True, scheduler="wheel")


def _foreground_cov(result):
    """C.o.v. of the packet run's flows 0..K-1 at the gateway."""
    times = {
        flow: result.per_flow_arrival_times[flow] for flow in range(FOREGROUND)
    }
    counts = bin_flow_times(
        times, result.config.effective_bin_width, WARMUP, DURATION
    ).sum(axis=0)
    return coefficient_of_variation(counts)


@pytest.fixture(scope="module")
def comparisons():
    """Run every cell through both backends once per session."""
    rows = []
    for protocol, queue in CELLS:
        packet = run_scenario(_cell_config(protocol, queue, "packet"))
        hybrid = run_scenario(_cell_config(protocol, queue, "hybrid"))
        rows.append(
            {
                "protocol": protocol,
                "queue": queue,
                "n_clients": N_CLIENTS,
                "foreground": FOREGROUND,
                "packet": {
                    "foreground_cov": float(_foreground_cov(packet)),
                    "per_flow_delivered": [
                        int(f.delivered_unique)
                        for f in packet.per_flow[:FOREGROUND]
                    ],
                    "loss_percent": float(packet.loss_percent),
                    "mean_queue_length": float(packet.mean_queue_length),
                },
                "hybrid": {
                    "foreground_cov": float(hybrid.cov),
                    "per_flow_delivered": [
                        int(f.delivered_unique) for f in hybrid.per_flow
                    ],
                    "loss_percent": float(hybrid.loss_percent),
                    "mean_queue_length": float(hybrid.mean_queue_length),
                },
            }
        )
    _maybe_write_report(rows)
    return {(r["protocol"], r["queue"]): r for r in rows}


def _band_checks(row):
    """The gate checks for one cell, as (name, ok, detail)."""
    packet, hybrid = row["packet"], row["hybrid"]
    pk_flows = np.asarray(packet["per_flow_delivered"], dtype=float)
    hy_flows = np.asarray(hybrid["per_flow_delivered"], dtype=float)
    agg_ratio = hy_flows.sum() / max(pk_flows.sum(), 1.0)
    flow_ratios = hy_flows / np.maximum(pk_flows, 1.0)
    cov_lo = COV_LOW_FACTOR * packet["foreground_cov"] - COV_LOW_SLACK
    cov_hi = packet["foreground_cov"] + COV_HIGH_SLACK
    loss_abs = abs(hybrid["loss_percent"] - packet["loss_percent"])
    q_abs = abs(hybrid["mean_queue_length"] - packet["mean_queue_length"])
    return [
        (
            "agg_throughput",
            bool(
                AGG_THROUGHPUT_RATIO[0] <= agg_ratio <= AGG_THROUGHPUT_RATIO[1]
            ),
            f"foreground aggregate ratio {agg_ratio:.3f} outside "
            f"{AGG_THROUGHPUT_RATIO}; hybrid {hy_flows.sum():.0f} vs "
            f"packet {pk_flows.sum():.0f} packets",
        ),
        (
            "per_flow_throughput",
            bool(
                (flow_ratios >= PER_FLOW_RATIO[0]).all()
                and (flow_ratios <= PER_FLOW_RATIO[1]).all()
            ),
            f"per-flow ratios {np.round(flow_ratios, 2).tolist()} not all "
            f"within {PER_FLOW_RATIO}",
        ),
        (
            "foreground_cov",
            bool(cov_lo <= hybrid["foreground_cov"] <= cov_hi),
            f"hybrid {hybrid['foreground_cov']:.3f} outside "
            f"[{cov_lo:.3f}, {cov_hi:.3f}] "
            f"(packet foreground {packet['foreground_cov']:.3f})",
        ),
        (
            "loss_percent",
            bool(loss_abs <= LOSS_ABS_TOL),
            f"absolute error {loss_abs:.2f} points (tol {LOSS_ABS_TOL}); "
            f"hybrid {hybrid['loss_percent']:.2f} vs "
            f"packet {packet['loss_percent']:.2f}",
        ),
        (
            "mean_queue",
            bool(q_abs <= QUEUE_ABS_TOL),
            f"absolute error {q_abs:.2f} pkts (tol {QUEUE_ABS_TOL}); "
            f"hybrid {hybrid['mean_queue_length']:.1f} vs "
            f"packet {packet['mean_queue_length']:.1f}",
        ),
    ]


def _maybe_write_report(rows):
    path = os.environ.get("REPRO_HYBRID_XVAL_REPORT", "")
    if not path:
        return
    report = {
        "bands": {
            "agg_throughput_ratio": list(AGG_THROUGHPUT_RATIO),
            "per_flow_ratio": list(PER_FLOW_RATIO),
            "cov_low_factor": COV_LOW_FACTOR,
            "cov_low_slack": COV_LOW_SLACK,
            "cov_high_slack": COV_HIGH_SLACK,
            "loss_abs_tol": LOSS_ABS_TOL,
            "queue_abs_tol": QUEUE_ABS_TOL,
        },
        "duration": DURATION,
        "warmup": WARMUP,
        "n_clients": N_CLIENTS,
        "foreground": FOREGROUND,
        "cells": [],
    }
    for row in rows:
        checks = _band_checks(row)
        report["cells"].append(
            {
                **row,
                "checks": {
                    name: {"ok": ok, "detail": detail}
                    for name, ok, detail in checks
                },
                "ok": all(ok for _, ok, _ in checks),
            }
        )
    report["ok"] = all(cell["ok"] for cell in report["cells"])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)


CHECK_INDEX = {
    "agg_throughput": 0,
    "per_flow_throughput": 1,
    "foreground_cov": 2,
    "loss_percent": 3,
    "mean_queue": 4,
}


@pytest.mark.parametrize("protocol,queue", CELLS)
@pytest.mark.parametrize("check", sorted(CHECK_INDEX))
def test_hybrid_within_band(comparisons, protocol, queue, check):
    name, ok, detail = _band_checks(comparisons[(protocol, queue)])[
        CHECK_INDEX[check]
    ]
    assert ok, f"{protocol}/{queue}@{N_CLIENTS} [{name}]: {detail}"


def test_hybrid_measures_every_foreground_flow(comparisons):
    """Each hybrid cell reports exactly K per-flow summaries, and every
    foreground flow actually moved traffic (the coupling cannot starve
    a flow outright)."""
    for row in comparisons.values():
        delivered = row["hybrid"]["per_flow_delivered"]
        assert len(delivered) == FOREGROUND
        assert min(delivered) > 0
