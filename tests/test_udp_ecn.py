"""Unit tests for the UDP sender and the ECN-capable Reno sender."""

import pytest

from repro.transport.ecn import EcnRenoSender, ecn_tcp_params
from repro.transport.tcp_base import TcpParams
from repro.transport.udp import UdpSender

from tests.helpers import CaptureNode, TcpHarness
from repro.net.packet import PacketFactory
from repro.sim.engine import Simulator


class TestUdpSender:
    def make(self):
        sim = Simulator()
        node = CaptureNode(sim)
        factory = PacketFactory()
        sender = UdpSender(sim, node, 0, "server", factory, packet_size=500)
        return sim, node, sender

    def test_sends_immediately_one_per_app_packet(self):
        _sim, node, sender = self.make()
        sender.app_arrival(3)
        assert node.data_seqnos() == [0, 1, 2]
        assert sender.packets_sent == 3

    def test_packet_size_respected(self):
        _sim, node, sender = self.make()
        sender.app_arrival(1)
        assert node.transmitted[0].size == 500

    def test_no_congestion_response(self):
        _sim, node, sender = self.make()
        sender.app_arrival(100)
        assert len(node.transmitted) == 100  # nothing held back


class TestEcnReno:
    def make(self, **overrides):
        params = TcpParams(
            initial_cwnd=overrides.pop("cwnd", 8.0),
            initial_ssthresh=64.0,
            **overrides,
        )
        return TcpHarness(EcnRenoSender, {"params": params})

    def test_marks_packets_ecn_capable(self):
        h = self.make()
        h.give_app_packets(5)
        assert all(p.ecn_capable for p in h.transmitted)

    def test_halves_on_echo(self):
        h = self.make(cwnd=8.0)
        h.give_app_packets(100)
        h.deliver_ack(0, ecn_echo=True)
        # window was 8 -> ssthresh 4, cwnd deflated to ssthresh (the
        # slow-start +1 from the new ACK lands afterwards).
        assert h.sender.ssthresh == pytest.approx(4.0)
        assert h.sender.cwnd <= 5.0
        assert h.sender.stats.ecn_responses == 1

    def test_at_most_one_response_per_rtt(self):
        h = self.make(cwnd=8.0)
        h.give_app_packets(100)
        h.advance(0.5)
        h.deliver_ack(0, ecn_echo=True)
        h.deliver_ack(1, ecn_echo=True)  # same instant: ignored
        assert h.sender.stats.ecn_responses == 1

    def test_responds_again_after_an_rtt(self):
        h = self.make(cwnd=8.0)
        h.give_app_packets(1000)
        h.advance(0.5)
        h.deliver_ack(0, ecn_echo=True)
        h.advance(h.sender.rtt_estimate() + 0.1)
        h.deliver_ack(1, ecn_echo=True)
        assert h.sender.stats.ecn_responses == 2

    def test_no_retransmission_on_echo(self):
        h = self.make(cwnd=4.0)
        h.give_app_packets(100)
        sent_before = len(h.transmitted)
        h.deliver_ack(0, ecn_echo=True)
        # Only new data may flow; nothing is retransmitted.
        assert all(not p.is_retransmit for p in h.transmitted[sent_before:])

    def test_protocol_name(self):
        assert EcnRenoSender.protocol_name == "reno-ecn"


def test_ecn_tcp_params_helper():
    params = ecn_tcp_params(packet_size=500)
    assert params.ecn
    assert params.packet_size == 500
