"""Regression tests for event/packet free-list pooling.

The engine recycles :class:`Event` objects (and, via the arg-recycler
hook, packets) only when ``sys.getrefcount`` proves the run loop holds
the last reference.  These tests pin the safety contract from the other
side: a handle somebody still holds is NEVER pooled, a pooled object is
always fully disarmed, a stale ``cancel()`` on a fired event cannot
corrupt the live-event accounting, and recycled packets carry no stale
state.  ``Simulator.check_invariants`` (the ``debug=True`` loop's
per-event check) is itself tested against hand-corrupted state.
"""

import pytest

from repro.net.packet import Packet, PacketFactory
from repro.sim.engine import _POOL_CAP, SCHEDULERS, SimulationError, Simulator
from repro.sim.events import Event


@pytest.fixture(params=SCHEDULERS)
def sim(request):
    return Simulator(scheduler=request.param)


# ----------------------------------------------------------------------
# Event pooling
# ----------------------------------------------------------------------
def test_fired_unreferenced_event_is_pooled_and_reused(sim):
    sim.schedule(0.0, lambda: None)
    sim.run()
    assert len(sim._event_pool) == 1
    pooled = sim._event_pool[0]
    assert pooled.callback is None and pooled.args is None
    reused = sim.schedule(1.0, lambda: None)
    assert reused is pooled
    assert not reused.cancelled and reused.owner is sim
    assert sim._event_pool == []


def test_held_handle_is_never_pooled(sim):
    held = sim.schedule(0.0, lambda: None)
    sim.run()
    assert sim._event_pool == []  # we still hold it
    fresh = [sim.schedule(float(i), lambda: None) for i in range(1, 20)]
    assert all(event is not held for event in fresh)
    # The held object keeps its identity and its fired state.
    assert held.owner is None and not held.cancelled


def test_cancelled_held_event_is_discarded_but_not_resurrected(sim):
    fired = []
    held = sim.schedule(5.0, fired.append, "boom")
    sim.schedule(6.0, fired.append, "ok")
    held.cancel()
    assert sim.live_events == 1
    sim.run()
    assert fired == ["ok"]
    assert held.cancelled  # stays dead in our hands
    assert sim._event_pool != []  # the fired event was poolable
    assert all(event is not held for event in sim._event_pool)
    fresh = [sim.schedule(float(i), fired.append, i) for i in range(1, 20)]
    assert all(event is not held for event in fresh)


def test_stale_cancel_after_firing_is_a_counter_noop(sim):
    held = sim.schedule(0.0, lambda: None)
    sim.run()
    assert sim.live_events == 0
    held.cancel()  # a Timer-style stale cancel of a dead handle
    assert sim.live_events == 0
    assert sim._cancelled_pending == 0
    sim.check_invariants()


def test_cancelled_unreferenced_event_pooled_on_discard(sim):
    sim.schedule(1.0, lambda: None).cancel()
    sim.schedule(2.0, lambda: None)
    sim.run()
    # Both the cancelled discard and the fired event were poolable.
    assert len(sim._event_pool) == 2
    sim.check_invariants()


def test_step_discards_cancelled_head_and_pools_it(sim):
    sim.schedule(0.5, lambda: None).cancel()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    assert sim.peek_time() == 1.0  # cancelled head silently dropped
    assert sim.step()
    assert fired == [1]
    assert not sim.step()
    assert len(sim._event_pool) == 2


def test_pool_respects_cap(sim):
    n = _POOL_CAP + 64
    for i in range(n):
        sim.schedule(i * 1e-4, lambda: None)
    sim.run()
    assert len(sim._event_pool) == _POOL_CAP


def test_pool_reuse_resets_all_scheduling_fields(sim):
    first = sim.schedule(1.0, lambda: None, priority=1)
    seq = first.seq
    del first
    sim.run()
    log = []
    reused = sim.schedule(2.0, log.append, "x")
    assert reused.time == pytest.approx(3.0)
    assert reused.priority == 0
    assert reused.seq > seq
    assert not reused.cancelled
    sim.run()
    assert log == ["x"]


def test_pooling_disabled_without_getrefcount(monkeypatch):
    import repro.sim.engine as engine_mod

    monkeypatch.setattr(engine_mod, "_POOL_BASELINE", None)
    sim = Simulator()
    sim.schedule(0.0, lambda: None)
    sim.run()
    assert sim._event_pool == []


# ----------------------------------------------------------------------
# Invariant checking
# ----------------------------------------------------------------------
def test_check_invariants_catches_armed_pooled_event(sim):
    sim._event_pool.append(Event(0.0, 0, lambda: None, (), 0, None))
    with pytest.raises(SimulationError, match="armed"):
        sim.check_invariants()


def test_check_invariants_catches_queued_pooled_event(sim):
    event = sim.schedule(1.0, lambda: None)
    sim._event_pool.append(event)
    with pytest.raises(SimulationError):
        sim.check_invariants()


def test_check_invariants_catches_counter_divergence(sim):
    sim.schedule(1.0, lambda: None)
    sim._cancelled_pending += 1
    with pytest.raises(SimulationError, match="live_events"):
        sim.check_invariants()


def test_debug_loop_runs_invariants_clean():
    for scheduler in SCHEDULERS:
        sim = Simulator(scheduler=scheduler, debug=True)
        keep = sim.schedule(3.0, lambda: None)
        for i in range(40):
            event = sim.schedule(i * 0.1, lambda: None)
            if i % 3 == 0:
                event.cancel()
        sim.run()
        assert sim.live_events == 0
        assert keep.owner is None


# ----------------------------------------------------------------------
# Packet recycling through the arg-recycler hook
# ----------------------------------------------------------------------
def test_unreferenced_packet_arg_is_recycled(sim):
    factory = PacketFactory()
    sim.set_arg_recycler(Packet, factory.recycle)
    sim.schedule(0.0, lambda pkt: None, factory.data(1, "a", "b", 1000, 0, 0.0))
    sim.run()
    assert len(factory._free) == 1


def test_held_packet_arg_is_not_recycled(sim):
    factory = PacketFactory()
    sim.set_arg_recycler(Packet, factory.recycle)
    packet = factory.data(1, "a", "b", 1000, 0, 0.0)
    captured = []
    sim.schedule(0.0, captured.append, packet)
    sim.run()
    assert factory._free == []  # the capture list still holds it
    assert captured == [packet]


def test_recycled_packet_carries_no_stale_state():
    factory = PacketFactory()
    dirty = factory.ack(
        7, "x", "y", ackno=9, now=3.0, ecn_echo=True, sack_blocks=((2, 4),)
    )
    dirty.ecn_ce = True
    uid = dirty.uid
    factory.recycle(dirty)
    fresh = factory.data(1, "a", "b", 1000, 5, 4.0)
    assert fresh is dirty  # reused object...
    assert fresh.uid == uid + 1  # ...but a brand-new packet
    assert fresh.is_data and fresh.seqno == 5 and fresh.ackno == -1
    assert not fresh.ecn_ce and not fresh.ecn_echo and not fresh.ecn_capable
    assert fresh.sack_blocks == () and fresh.ts_echo == 0.0
