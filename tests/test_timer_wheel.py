"""Property tests: the timer wheel against a sorted-list model.

The :class:`~repro.sim.wheel.TimerWheel` promises exactly one thing:
entries come out in ascending ``(time, priority, seq)`` order, identical
to a sorted list of the same entries.  Hypothesis drives the wheel with
generated push/pop interleavings whose times deliberately straddle all
four tiers (ready, level 0, level 1, overflow) and cross block
boundaries, then diffs every pop against the model.  Engine-level
``live_events`` accounting under cancels is checked the same way, with
debug-mode invariant recounts enabled.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.wheel import TimerWheel

# Times spanning every wheel tier at the default geometry (0.5 ms
# resolution: level 0 covers 128 ms, level 1 ~33.5 s).  Rounding to a
# few decimals manufactures exact ties so the tie-break path is hit.
_times = st.one_of(
    st.floats(0.0, 0.13, allow_nan=False),
    st.floats(0.0, 40.0, allow_nan=False).map(lambda t: round(t, 2)),
    st.floats(30.0, 500.0, allow_nan=False).map(lambda t: round(t, 1)),
)
_pushes = st.lists(st.tuples(_times, st.integers(0, 2)), max_size=80)


def _fill(pushes):
    wheel = TimerWheel()
    model = []
    for seq, (time, priority) in enumerate(pushes):
        entry = (time, priority, seq, object())
        wheel.push(entry)
        model.append(entry)
    model.sort()
    return wheel, model


@given(_pushes)
def test_drains_in_model_order(pushes):
    wheel, model = _fill(pushes)
    assert wheel.size == len(model)
    drained = []
    while wheel.peek() is not None:
        head = wheel.peek()
        assert wheel.pop() is head
        drained.append(head)
    assert drained == model
    assert wheel.size == 0 and wheel.peek() is None


@given(_pushes, st.lists(st.integers(0, 3), max_size=40))
def test_interleaved_push_pop_matches_model(pushes, pop_counts):
    """Pops interleaved with batches of pushes; new pushes never predate
    the cursor (the engine's no-scheduling-into-the-past contract)."""
    wheel = TimerWheel()
    model = []
    seq = 0
    now = 0.0
    batches = iter(pop_counts + [len(pushes)] * (len(pushes) + 1))
    remaining = list(reversed(pushes))
    while remaining or model:
        for _ in range(next(batches)):
            if not remaining:
                break
            time, priority = remaining.pop()
            entry = (max(time, now), priority, seq, object())
            seq += 1
            wheel.push(entry)
            model.append(entry)
        model.sort()
        if model:
            expected = model.pop(0)
            head = wheel.peek()
            assert head is expected
            assert wheel.pop() is head
            now = head[0]
        assert wheel.size == len(model)
    assert wheel.peek() is None


@given(st.integers(2, 40), st.floats(0.0, 40.0, allow_nan=False))
def test_fifo_tie_break_is_insertion_order(n, time):
    """Equal (time, priority) entries drain strictly in push order."""
    wheel = TimerWheel()
    entries = [(time, 0, seq, object()) for seq in range(n)]
    for entry in entries:
        wheel.push(entry)
    assert [wheel.pop() for _ in range(n) if wheel.peek()] == entries


@given(
    st.lists(st.tuples(_times, st.booleans()), max_size=40),
    st.floats(100.0, 600.0, allow_nan=False),
)
@settings(deadline=None)
def test_engine_live_events_accounting_matches_heap(schedule, horizon):
    """Random schedule/cancel traffic: both schedulers agree on the
    fired set and the live/pending counters, with invariant recounts
    (``debug=True``) after every event."""
    fired = {}
    for scheduler in ("heap", "wheel"):
        sim = Simulator(scheduler=scheduler, debug=True)
        log = []
        handles = []
        for time, cancel_it in schedule:
            handles.append(sim.schedule_at(time, log.append, (time, len(handles))))
            if cancel_it and len(handles) >= 2:
                sim.cancel(handles[len(handles) // 2])
        sim.run(until=horizon)
        at_horizon = (list(log), sim.events_executed, sim.now, sim.live_events)
        sim.run()  # drain the tail beyond the horizon
        assert sim.live_events == 0
        fired[scheduler] = (at_horizon, log, sim.events_executed, sim.now)
    assert fired["heap"] == fired["wheel"]


def test_constructor_validation():
    with pytest.raises(ValueError):
        TimerWheel(start_time=-1.0)
    with pytest.raises(ValueError):
        TimerWheel(resolution=0.0)
    with pytest.raises(ValueError):
        TimerWheel(l0_slots=1)
    with pytest.raises(ValueError):
        TimerWheel(l1_slots=1)


def test_entries_iterates_every_tier():
    wheel = TimerWheel()
    times = [0.0, 0.05, 1.0, 40.0, 500.0]  # ready, L0, L1, L1-edge, overflow
    for seq, time in enumerate(times):
        wheel.push((time, 0, seq, object()))
    assert sorted(entry[0] for entry in wheel.entries()) == times
    assert wheel.size == len(times)
