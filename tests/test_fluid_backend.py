"""Property and integration tests for the mean-field fluid backend.

The solver-level tests pin the mathematical invariants of the ODE
system (probability-mass conservation, monotone throughput in loss
rate, the Vegas fixed point matching the closed forms); the
integration tests pin the backend plumbing (config digest, validation,
ScenarioResult/ScenarioMetrics shape, cost-model lanes, run-log
tagging).  Agreement with the packet engine is a separate suite:
tests/test_fluid_differential.py.
"""

import math

import numpy as np
import pytest

from repro.core.fluid import vegas_equilibrium_queue, vegas_equilibrium_window
from repro.core.fluid_backend import FluidSolver, run_fluid_scenario
from repro.experiments.config import CONFIG_SCHEMA_VERSION, paper_config
from repro.experiments.costmodel import CostModel, cell_units
from repro.experiments.results import ScenarioMetrics
from repro.experiments.runlog import RunLog, summarize_runlog
from repro.experiments.scenario import run_scenario


def fluid_config(**overrides):
    defaults = dict(
        protocol="reno",
        queue="fifo",
        backend="fluid",
        n_clients=50,
        duration=30.0,
        warmup=5.0,
    )
    defaults.update(overrides)
    return paper_config(**defaults)


class TestMassConservation:
    def test_rhs_conserves_probability_mass(self):
        """sum(dm) + dz == 0 for arbitrary (valid) states: advection,
        halving redistribution, and the timeout pipeline only move mass
        around, never create or destroy it."""
        solver = FluidSolver(protocol="reno", queue="fifo", n_flows=200)
        rng = np.random.default_rng(7)
        for trial in range(5):
            z = float(rng.uniform(0.0, 0.3))
            m = rng.random(solver.M)
            m = m / m.sum() * (1.0 - z)
            solver._to_return = float(rng.uniform(0.0, 0.02))
            q = float(rng.uniform(0.0, solver.B))
            dm, dz, *_ = solver.rhs(m, z, q, q * 0.8, 0.08, q * 0.9)
            assert abs(float(dm.sum()) + dz) < 1e-12

    @pytest.mark.parametrize("protocol,queue", [
        ("reno", "fifo"), ("reno", "red"), ("vegas", "fifo"), ("vegas", "red"),
    ])
    def test_full_run_stays_normalized(self, protocol, queue):
        solver = FluidSolver(
            protocol=protocol, queue=queue, n_flows=200, duration=20.0
        )
        traj = solver.run()
        assert solver._final_m.sum() + solver._final_z == pytest.approx(1.0, abs=1e-9)
        assert float(solver._final_m.min()) >= 0.0
        assert 0.0 <= solver._final_z <= 1.0
        # The timeout fraction is a fraction at every step, too.
        assert float(traj["z"].min()) >= 0.0
        assert float(traj["z"].max()) <= 1.0


class TestMonotoneThroughput:
    def test_throughput_decreases_in_forced_loss(self):
        """With the queue coupling bypassed (loss_override) and the link
        uncongested, higher loss probability must mean lower mean
        windows and strictly less throughput -- the fluid analogue of
        the Mathis square-root law's direction."""
        throughputs = []
        for p in (0.02, 0.05, 0.1, 0.2):
            solver = FluidSolver(
                protocol="reno", queue="fifo", n_flows=20,
                duration=60.0, warmup=10.0, loss_override=p,
            )
            summary = solver.summarize(solver.run(), 0.404)
            throughputs.append(summary["throughput_pps"])
        assert all(
            earlier > later
            for earlier, later in zip(throughputs, throughputs[1:])
        ), f"throughput not monotone in loss: {throughputs}"


class TestVegasFixedPoint:
    @pytest.fixture(scope="class")
    def trajectory(self):
        # 25 effectively backlogged Vegas flows: fair rate 15 pps each,
        # equilibrium backlog between alpha and beta packets per flow.
        solver = FluidSolver(
            protocol="vegas", queue="fifo", n_flows=25,
            per_flow_rate=100.0, duration=120.0, warmup=60.0,
        )
        return solver, solver.run()

    def test_queue_parks_in_closed_form_band(self, trajectory):
        solver, traj = trajectory
        steady = traj["q"][traj["t"] >= solver.warmup]
        q_lo, q_hi = vegas_equilibrium_queue(25, alpha=1.0, beta=3.0)
        assert q_lo - 2.0 <= float(steady.mean()) <= min(q_hi, solver.B) + 2.0

    def test_window_matches_closed_form_band(self, trajectory):
        solver, traj = trajectory
        steady = traj["w"][traj["t"] >= solver.warmup]
        fair_rate = solver.C / 25
        w_lo, w_hi = vegas_equilibrium_window(
            fair_rate, solver.rtt_prop, alpha=1.0, beta=3.0
        )
        assert w_lo - 0.5 <= float(steady.mean()) <= w_hi + 0.5

    def test_equilibrium_is_nearly_lossless(self, trajectory):
        solver, traj = trajectory
        steady = traj["p"][traj["t"] >= solver.warmup]
        assert float(steady.mean()) < 0.04


class TestBackendConfig:
    def test_backend_changes_digest(self):
        packet = paper_config()
        fluid = packet.with_(backend="fluid")
        assert packet.config_digest() != fluid.config_digest()

    def test_schema_version_bumped_for_backend(self):
        assert CONFIG_SCHEMA_VERSION >= 4
        assert paper_config().digest_payload()["backend"] == "packet"

    def test_label_marks_fluid_runs(self):
        assert "fluid" in fluid_config().label
        assert "fluid" not in paper_config().label

    @pytest.mark.parametrize("overrides", [
        dict(protocol="udp"),
        dict(protocol="sack"),
        dict(queue="drr"),
        dict(queue="ared"),
        dict(workload="rpc"),
        dict(traffic="pareto_onoff"),
        dict(pacing=True),
        dict(obs_trace=("cwnd",)),
        dict(obs_profile=True),
        dict(backend="analytic"),
    ])
    def test_unsupported_fluid_combinations_rejected(self, overrides):
        with pytest.raises(ValueError):
            fluid_config(**overrides).validate()

    def test_solver_rejects_unmodeled_protocols(self):
        with pytest.raises(ValueError):
            FluidSolver(protocol="sack")
        with pytest.raises(ValueError):
            FluidSolver(queue="drr")


class TestFluidScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(fluid_config())

    def test_dispatches_to_fluid_backend(self, result):
        # No per-flow records in the mean-field limit.
        assert result.per_flow == []
        assert result.cwnd_traces == {}

    def test_metrics_fields_populated(self, result):
        metrics = ScenarioMetrics.from_result(result)
        assert metrics.backend == "fluid"
        assert 0.0 < metrics.cov < 1.0
        assert 0.0 < metrics.utilization <= 1.0
        assert metrics.throughput_pps > 0.0
        assert 0.0 <= metrics.loss_percent < 100.0
        assert 0.0 <= metrics.mean_queue_length <= 50.0
        assert metrics.perf_events_executed > 0  # RK4 steps
        assert math.isnan(metrics.fairness)

    def test_bin_counts_cover_measurement_window(self, result):
        config = result.config
        expected = int(
            (config.duration - config.warmup) / config.effective_bin_width
        )
        assert result.bin_counts.size == expected

    def test_deterministic(self, result):
        again = ScenarioMetrics.from_result(run_scenario(fluid_config()))
        assert again == ScenarioMetrics.from_result(result)

    def test_run_fluid_scenario_direct_entry(self):
        direct = run_fluid_scenario(fluid_config())
        via_dispatch = run_scenario(fluid_config())
        assert ScenarioMetrics.from_result(direct) == ScenarioMetrics.from_result(
            via_dispatch
        )

    def test_metrics_roundtrip_keeps_backend(self, result):
        metrics = ScenarioMetrics.from_result(result)
        assert ScenarioMetrics.from_dict(metrics.as_dict()).backend == "fluid"

    def test_old_records_default_to_packet(self):
        record = ScenarioMetrics.from_dict(
            {
                "protocol": "reno", "queue": "fifo", "label": "Reno",
                "n_clients": 20, "seed": 1, "duration": 200.0,
                "cov": 0.1, "offered_cov": 0.1, "analytic_cov": 0.1,
                "throughput_packets": 1, "throughput_pps": 1.0,
                "utilization": 0.5, "loss_percent": 0.0,
                "gateway_arrivals": 1, "gateway_drops": 0, "timeouts": 0,
                "fast_retransmits": 0, "dupacks": 0,
                "timeout_dupack_ratio": 0.0, "timeout_fastrtx_ratio": 0.0,
                "mean_queue_length": 0.0, "red_marks": 0, "fairness": 1.0,
                "mean_latency": 0.0, "max_latency": 0.0,
            }
        )
        assert record.backend == "packet"


class TestSchedulingIntegration:
    def test_fluid_cell_units_independent_of_n(self):
        small = fluid_config(n_clients=50)
        huge = fluid_config(n_clients=1_000_000)
        assert cell_units(small) == cell_units(huge)
        # ... unlike packet cells, which scale linearly in N.
        assert cell_units(paper_config(n_clients=100)) == pytest.approx(
            2.0 * cell_units(paper_config(n_clients=50))
        )

    def test_lane_separates_backends(self):
        packet = paper_config()
        fluid = packet.with_(backend="fluid")
        assert CostModel.lane(packet) != CostModel.lane(fluid)

    def test_cost_model_learns_separate_alphas(self):
        model = CostModel()
        # A packet cell: 200 sim-seconds x 20 clients in 40 wall-s.
        model.observe(paper_config(), 40.0)
        # A fluid cell at huge N: 200 sim-seconds in 0.5 wall-s.
        model.observe(fluid_config(duration=200.0, n_clients=500_000), 0.5)
        packet_estimate = model.estimate(paper_config())
        fluid_estimate = model.estimate(
            fluid_config(duration=200.0, n_clients=500_000)
        )
        assert packet_estimate == pytest.approx(40.0)
        assert fluid_estimate == pytest.approx(0.5)

    def test_runlog_records_backend(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLog(path=path) as log:
            log.sweep_start(total=2, workers=1)
            log.task_start(0, "d0", "Reno", 0, backend="packet")
            log.task_done(0, "d0", elapsed=1.5, backend="packet")
            log.task_start(1, "d1", "Reno~fluid", 0, backend="fluid")
            log.task_done(1, "d1", elapsed=0.3, backend="fluid")
            log.sweep_end()
        from repro.experiments.runlog import read_runlog

        events = read_runlog(path)
        starts = [e for e in events if e["event"] == "task_start"]
        assert [e["backend"] for e in starts] == ["packet", "fluid"]
        summary = summarize_runlog(events)
        assert summary["backends"]["packet"]["cells"] == 1
        assert summary["backends"]["fluid"]["cells"] == 1
        assert summary["backends"]["fluid"]["busy"] == pytest.approx(0.3)
