"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.burstiness import aggregate_counts
from repro.core.cov import bin_counts, coefficient_of_variation
from repro.core.theory import poisson_aggregate_cov
from repro.net.packet import PacketFactory
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.rng import derive_seed
from repro.analysis.timeseries import sample_step_series


# ----------------------------------------------------------------------
# Simulator: event ordering
# ----------------------------------------------------------------------
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50
    )
)
def test_events_always_execute_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    until=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
def test_run_until_never_executes_future_events(delays, until):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(d))
    sim.run(until=until)
    assert all(d <= until for d in fired)
    assert sim.now == max([until] + [d for d in fired])


# ----------------------------------------------------------------------
# Binning: conservation and cov invariants
# ----------------------------------------------------------------------
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=99.9, allow_nan=False),
        min_size=0,
        max_size=200,
    ),
    width=st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
)
def test_bin_counts_conserve_events_in_window(times, width):
    counts = bin_counts(times, width, t_start=0.0, t_end=100.0)
    n_bins = int(100.0 / width)
    in_window = sum(1 for t in times if t < n_bins * width)
    assert counts.sum() == in_window
    assert (counts >= 0).all()


@given(
    counts=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100)
)
def test_cov_nonnegative_and_zero_iff_constant(counts):
    value = coefficient_of_variation(counts)
    assert value >= 0.0
    if len(set(counts)) == 1:
        assert value == 0.0


@given(
    counts=st.lists(st.integers(min_value=0, max_value=1000), min_size=2, max_size=100),
    scale=st.integers(min_value=1, max_value=50),
)
def test_cov_scale_invariant(counts, scale):
    base = coefficient_of_variation(counts)
    scaled = coefficient_of_variation([scale * c for c in counts])
    assert math.isclose(base, scaled, rel_tol=1e-9, abs_tol=1e-12)


@given(
    counts=st.lists(st.integers(min_value=0, max_value=100), min_size=4, max_size=256),
    factor=st.integers(min_value=1, max_value=8),
)
def test_aggregation_conserves_mass_over_whole_groups(counts, factor):
    aggregated = aggregate_counts(counts, factor)
    n_groups = len(counts) // factor
    assert aggregated.sum() == sum(counts[: n_groups * factor])


@given(
    n=st.integers(min_value=1, max_value=1000),
    rate=st.floats(min_value=0.01, max_value=1000.0, allow_nan=False),
    width=st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
)
def test_poisson_cov_positive_and_clt_monotone(n, rate, width):
    cov_n = poisson_aggregate_cov(n, rate, width)
    cov_2n = poisson_aggregate_cov(2 * n, rate, width)
    assert cov_n > 0
    assert cov_2n < cov_n
    assert math.isclose(cov_2n, cov_n / math.sqrt(2), rel_tol=1e-9)


# ----------------------------------------------------------------------
# Queues: capacity and conservation
# ----------------------------------------------------------------------
@given(
    capacity=st.integers(min_value=1, max_value=20),
    operations=st.lists(st.booleans(), min_size=1, max_size=200),
)
def test_droptail_capacity_and_conservation(capacity, operations):
    queue = DropTailQueue(capacity)
    factory = PacketFactory()
    seq = 0
    dequeued = 0
    for is_enqueue in operations:
        if is_enqueue:
            queue.enqueue(factory.data(0, "a", "b", 100, seqno=seq, now=0.0), 0.0)
            seq += 1
        else:
            if queue.dequeue(0.0) is not None:
                dequeued += 1
        assert len(queue) <= capacity
    stats = queue.stats
    assert stats.arrivals == stats.departures + stats.drops + len(queue)
    assert stats.departures == dequeued


@given(
    packets=st.lists(st.integers(min_value=1, max_value=9999), min_size=1, max_size=50)
)
def test_droptail_preserves_fifo_order(packets):
    queue = DropTailQueue(len(packets))
    factory = PacketFactory()
    for seq in packets:
        queue.enqueue(factory.data(0, "a", "b", 100, seqno=seq, now=0.0), 0.0)
    out = []
    while True:
        packet = queue.dequeue(0.0)
        if packet is None:
            break
        out.append(packet.seqno)
    assert out == packets


# ----------------------------------------------------------------------
# RNG: determinism
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=2**31), name=st.text(max_size=30))
def test_derive_seed_deterministic_and_64bit(seed, name):
    a = derive_seed(seed, name)
    assert a == derive_seed(seed, name)
    assert 0 <= a < 2**64


# ----------------------------------------------------------------------
# Step series sampling
# ----------------------------------------------------------------------
@given(
    log=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
        ),
        max_size=30,
    ).map(lambda pairs: sorted(pairs, key=lambda p: p[0])),
    queries=st.lists(
        st.floats(min_value=-10.0, max_value=110.0, allow_nan=False), max_size=30
    ),
)
def test_sampled_values_come_from_log_or_initial(log, queries):
    initial = 42.0
    values = sample_step_series(log, queries, initial=initial)
    allowed = {initial} | {v for _, v in log}
    assert all(v in allowed for v in values)
