"""Unit tests for packets and the packet factory."""

from repro.net.packet import ACK_SIZE_BYTES, PacketFactory, PacketType


def test_factory_assigns_unique_increasing_uids():
    factory = PacketFactory()
    packets = [
        factory.data(0, "a", "b", 1000, seqno=i, now=0.0) for i in range(5)
    ]
    uids = [p.uid for p in packets]
    assert uids == sorted(set(uids))


def test_data_packet_fields():
    factory = PacketFactory()
    packet = factory.data(3, "client-0", "server", 1000, seqno=7, now=1.5)
    assert packet.is_data and not packet.is_ack
    assert packet.ptype is PacketType.DATA
    assert packet.flow_id == 3
    assert packet.src == "client-0"
    assert packet.dst == "server"
    assert packet.size == 1000
    assert packet.seqno == 7
    assert packet.ackno == -1
    assert packet.created_at == 1.5
    assert packet.ts == 1.5
    assert not packet.is_retransmit


def test_data_packet_retransmit_flag_and_custom_ts():
    factory = PacketFactory()
    packet = factory.data(
        0, "a", "b", 1000, seqno=1, now=2.0, is_retransmit=True, ts=1.0
    )
    assert packet.is_retransmit
    assert packet.ts == 1.0


def test_ack_packet_fields():
    factory = PacketFactory()
    ack = factory.ack(2, "server", "client-0", ackno=9, now=3.0)
    assert ack.is_ack and not ack.is_data
    assert ack.size == ACK_SIZE_BYTES
    assert ack.ackno == 9
    assert ack.seqno == -1


def test_ack_ecn_echo_and_ts_echo():
    factory = PacketFactory()
    ack = factory.ack(0, "s", "c", ackno=1, now=1.0, ecn_echo=True, ts_echo=0.5)
    assert ack.ecn_echo
    assert ack.ts_echo == 0.5


def test_ecn_capable_data():
    factory = PacketFactory()
    packet = factory.data(0, "a", "b", 1000, seqno=0, now=0.0, ecn_capable=True)
    assert packet.ecn_capable
    assert not packet.ecn_ce


def test_independent_factories_reuse_uids():
    # uids are per-simulation, not global: two factories may collide.
    a = PacketFactory().data(0, "a", "b", 1, seqno=0, now=0.0)
    b = PacketFactory().data(0, "a", "b", 1, seqno=0, now=0.0)
    assert a.uid == b.uid == 0


def test_repr_mentions_kind_and_flow():
    factory = PacketFactory()
    text = repr(factory.data(4, "a", "b", 1000, seqno=2, now=0.0))
    assert "DATA" in text and "flow=4" in text
