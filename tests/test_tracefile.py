"""Tests for the ns-format trace writer/parser."""

import io

import pytest

from repro.core.cov import cov_from_times
from repro.net.packet import PacketFactory
from repro.net.queues import DropTailQueue
from repro.net.tracefile import (
    NsTraceWriter,
    arrival_times,
    parse_trace_lines,
    read_trace,
)


def traced_queue(capacity=2):
    stream = io.StringIO()
    queue = DropTailQueue(capacity)
    writer = NsTraceWriter(stream).attach_queue(queue)
    return stream, queue, writer


def test_enqueue_dequeue_drop_ops():
    stream, queue, writer = traced_queue(capacity=1)
    factory = PacketFactory()
    queue.enqueue(factory.data(0, "a", "b", 1000, seqno=0, now=0.0), 0.5)
    queue.enqueue(factory.data(0, "a", "b", 1000, seqno=1, now=0.0), 0.6)  # drop
    queue.dequeue(0.7)
    ops = [line.split()[0] for line in stream.getvalue().splitlines()]
    assert ops == ["+", "d", "-"]
    assert writer.lines_written == 3


def test_line_format_round_trips():
    stream, queue, _writer = traced_queue()
    factory = PacketFactory()
    queue.enqueue(factory.data(7, "a", "b", 1000, seqno=42, now=0.0), 1.25)
    record = next(parse_trace_lines(stream.getvalue().splitlines()))
    assert record.op == "+"
    assert record.time == pytest.approx(1.25)
    assert record.flow_id == 7
    assert record.seqno == 42
    assert record.ptype == "tcp"
    assert record.size == 1000


def test_ack_packets_typed_ack():
    stream, queue, _writer = traced_queue()
    factory = PacketFactory()
    queue.enqueue(factory.ack(3, "b", "a", ackno=5, now=0.0), 0.1)
    record = next(parse_trace_lines(stream.getvalue().splitlines()))
    assert record.ptype == "ack"


def test_parser_skips_comments_and_blanks():
    lines = ["# comment", "", "+ 1.0 g s tcp 1000 ------- 0 0.0 0.1 3 9"]
    records = list(parse_trace_lines(lines))
    assert len(records) == 1


def test_parser_rejects_malformed():
    with pytest.raises(ValueError):
        list(parse_trace_lines(["+ 1.0 too short"]))


def test_read_trace_file(tmp_path):
    path = tmp_path / "out.tr"
    with open(path, "w") as handle:
        queue = DropTailQueue(5)
        NsTraceWriter(handle).attach_queue(queue)
        factory = PacketFactory()
        for i in range(3):
            queue.enqueue(factory.data(0, "a", "b", 1000, seqno=i, now=0.0), float(i))
    records = read_trace(str(path))
    assert [r.seqno for r in records] == [0, 1, 2]


def test_arrival_times_filtering():
    stream, queue, _writer = traced_queue(capacity=10)
    factory = PacketFactory()
    queue.enqueue(factory.data(0, "a", "b", 1000, seqno=0, now=0.0), 0.5)
    queue.enqueue(factory.data(1, "a", "b", 1000, seqno=0, now=0.0), 1.5)
    queue.enqueue(factory.ack(0, "b", "a", ackno=0, now=0.0), 2.5)
    queue.dequeue(3.0)
    records = list(parse_trace_lines(stream.getvalue().splitlines()))
    assert arrival_times(records) == [0.5, 1.5]
    assert arrival_times(records, flow_id=1) == [1.5]
    assert arrival_times(records, data_only=False) == [0.5, 1.5, 2.5]


def test_trace_drives_cov_pipeline_end_to_end(tmp_path):
    """The ns-2 workflow: run, write a trace, compute c.o.v. offline."""
    from repro.experiments.config import paper_config
    from repro.experiments.scenario import Scenario

    config = paper_config(protocol="reno", n_clients=4, duration=8.0)
    scenario = Scenario(config)
    path = tmp_path / "gateway.tr"
    with open(path, "w") as handle:
        NsTraceWriter(handle).attach(scenario.network.bottleneck_interface)
        result = scenario.run()

    records = read_trace(str(path))
    times = arrival_times(records)
    offline_cov = cov_from_times(
        times, config.effective_bin_width, 0.0, config.duration
    )
    assert offline_cov == pytest.approx(result.cov, rel=1e-9)
