"""Unit tests for reproducible named random streams."""

from repro.sim.rng import RandomStreams, derive_seed


def test_same_seed_same_stream_values():
    a = RandomStreams(seed=42).stream("x")
    b = RandomStreams(seed=42).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_give_different_streams():
    streams = RandomStreams(seed=42)
    a = streams.stream("a")
    b = streams.stream("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_give_different_values():
    a = RandomStreams(seed=1).stream("x")
    b = RandomStreams(seed=2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("x") is streams.stream("x")


def test_adding_streams_does_not_perturb_existing():
    solo = RandomStreams(seed=7)
    first = [solo.stream("flow-0").random() for _ in range(5)]

    combined = RandomStreams(seed=7)
    combined.stream("flow-1").random()  # interleave another consumer
    second = [combined.stream("flow-0").random() for _ in range(5)]
    assert first == second


def test_derive_seed_is_stable():
    # Pinned value: guards against accidental derivation changes, which
    # would silently re-randomize every documented experiment.
    assert derive_seed(0, "x") == derive_seed(0, "x")
    assert derive_seed(0, "x") != derive_seed(0, "y")
    assert derive_seed(0, "x") != derive_seed(1, "x")


def test_spawn_creates_distinct_universe():
    root = RandomStreams(seed=3)
    child_a = root.spawn("replica-1")
    child_b = root.spawn("replica-2")
    assert child_a.stream("x").random() != child_b.stream("x").random()


def test_spawn_is_deterministic():
    a = RandomStreams(seed=3).spawn("r").stream("x").random()
    b = RandomStreams(seed=3).spawn("r").stream("x").random()
    assert a == b


def test_seed_property():
    assert RandomStreams(seed=9).seed == 9
