"""Unit tests for the Hurst-parameter estimators."""

import math

import numpy as np
import pytest

from repro.core.selfsimilar import (
    hurst_aggregate_variance,
    hurst_rescaled_range,
    variance_time_plot,
)


def fgn_like_series(hurst, n=8192, seed=0):
    """A cheap long-memory surrogate: fractional Gaussian noise via
    spectral synthesis (power-law spectrum ~ f^-(2H-1))."""
    rng = np.random.default_rng(seed)
    freqs = np.fft.rfftfreq(n)[1:]
    amplitude = freqs ** (-(2 * hurst - 1) / 2.0)
    phases = rng.uniform(0, 2 * np.pi, size=freqs.size)
    spectrum = np.concatenate([[0.0], amplitude * np.exp(1j * phases)])
    series = np.fft.irfft(spectrum, n=n)
    return (series - series.mean()) / series.std() + 10.0


class TestVarianceTime:
    def test_iid_slope_minus_one(self):
        counts = np.random.default_rng(1).poisson(20.0, size=8192)
        ms, variances = variance_time_plot(counts)
        slope = np.polyfit(np.log(ms), np.log(variances), 1)[0]
        assert slope == pytest.approx(-1.0, abs=0.15)

    def test_skips_unusable_scales(self):
        ms, _variances = variance_time_plot([1.0, 2.0] * 8, factors=(1, 2, 64))
        assert 64 not in ms

    def test_empty_for_constant_series(self):
        ms, variances = variance_time_plot([5.0] * 128)
        assert ms.size == 0


class TestAggregateVarianceHurst:
    def test_iid_counts_near_half(self):
        counts = np.random.default_rng(2).poisson(20.0, size=8192)
        hurst = hurst_aggregate_variance(counts)
        assert 0.4 <= hurst <= 0.6

    def test_long_memory_series_higher(self):
        smooth = hurst_aggregate_variance(
            np.random.default_rng(3).normal(10, 1, size=8192)
        )
        rough = hurst_aggregate_variance(fgn_like_series(0.9, seed=3))
        assert rough > smooth + 0.15

    def test_short_series_nan(self):
        assert math.isnan(hurst_aggregate_variance([1.0, 2.0, 3.0]))

    def test_clamped_to_unit_interval(self):
        hurst = hurst_aggregate_variance(fgn_like_series(0.95, seed=4))
        assert 0.0 <= hurst <= 1.0


class TestRescaledRange:
    def test_iid_near_half(self):
        counts = np.random.default_rng(5).normal(10, 2, size=8192)
        hurst = hurst_rescaled_range(counts)
        # R/S has a known small-sample upward bias; accept a wide band.
        assert 0.4 <= hurst <= 0.7

    def test_long_memory_higher_than_iid(self):
        iid = hurst_rescaled_range(np.random.default_rng(6).normal(0, 1, 8192))
        lrd = hurst_rescaled_range(fgn_like_series(0.9, seed=6))
        assert lrd > iid

    def test_short_series_nan(self):
        assert math.isnan(hurst_rescaled_range([1.0] * 10))

    def test_ordering_between_estimators_consistent(self):
        series = fgn_like_series(0.85, seed=7)
        h_av = hurst_aggregate_variance(series)
        h_rs = hurst_rescaled_range(series)
        assert h_av > 0.6
        assert h_rs > 0.6
