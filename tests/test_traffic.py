"""Unit tests for the traffic generators and the offered-traffic recorder."""

import random

import numpy as np
import pytest

from repro.net.packet import PacketFactory
from repro.sim.engine import Simulator
from repro.traffic.base import TrafficSource
from repro.traffic.cbr import CbrSource
from repro.traffic.onoff import ParetoOnOffSource, pareto_scale_for_mean, pareto_variate
from repro.traffic.poisson import PoissonSource
from repro.traffic.recorder import OfferedTrafficRecorder
from repro.transport.udp import UdpSender

from tests.helpers import CaptureNode


def make_sender():
    sim = Simulator()
    node = CaptureNode(sim)
    sender = UdpSender(sim, node, 0, "server", PacketFactory())
    return sim, node, sender


class TestCbr:
    def test_exact_packet_count(self):
        sim, node, sender = make_sender()
        source = CbrSource(sim, sender, gap=0.1)
        source.start()
        sim.run(until=1.05)
        assert source.generated == 10
        assert len(node.transmitted) == 10

    def test_rate_property(self):
        sim, _node, sender = make_sender()
        assert CbrSource(sim, sender, gap=0.25).rate == 4.0

    def test_invalid_gap(self):
        sim, _node, sender = make_sender()
        with pytest.raises(ValueError):
            CbrSource(sim, sender, gap=0.0)

    def test_start_at_offsets_generation(self):
        sim, node, sender = make_sender()
        CbrSource(sim, sender, gap=0.1).start(at=5.0)
        sim.run(until=4.9)
        assert len(node.transmitted) == 0
        sim.run(until=6.05)
        assert len(node.transmitted) == 10

    def test_stop_at_halts_generation(self):
        sim, node, sender = make_sender()
        CbrSource(sim, sender, gap=0.1).start(stop_at=0.55)
        sim.run(until=10.0)
        assert len(node.transmitted) == 5

    def test_stop_method(self):
        sim, node, sender = make_sender()
        source = CbrSource(sim, sender, gap=0.1)
        source.start()
        sim.schedule(0.35, source.stop)
        sim.run(until=10.0)
        assert len(node.transmitted) == 3

    def test_double_start_raises(self):
        sim, _node, sender = make_sender()
        source = CbrSource(sim, sender, gap=0.1)
        source.start()
        with pytest.raises(RuntimeError):
            source.start()

    def test_restart_does_not_revive_stale_tick(self):
        # Regression: a tick scheduled by the first generation loop must
        # not come back to life after stop()+start() and run a second
        # loop alongside the new one (which doubled the rate).
        sim, node, sender = make_sender()
        source = CbrSource(sim, sender, gap=0.1)
        source.start()
        sim.run(until=0.25)  # ticks fired at 0.1, 0.2; one pending at 0.3
        source.stop()
        source.start(at=0.25)  # new loop: ticks at 0.35, 0.45, ...
        sim.run(until=1.04)
        # 2 from the first loop + 7 from the restart (0.35 .. 0.95 would
        # be 7; a revived stale tick would add ~8 more).
        assert source.generated == 2 + 7
        assert len(node.transmitted) == 2 + 7

    def test_restart_after_stop_at_expiry(self):
        # stop_at ends the loop; a later start() must run exactly one
        # fresh loop.
        sim, node, sender = make_sender()
        source = CbrSource(sim, sender, gap=0.1)
        source.start(stop_at=0.25)
        sim.run(until=0.5)
        assert len(node.transmitted) == 2
        source.start(at=0.5, stop_at=0.95)
        sim.run(until=2.0)
        assert len(node.transmitted) == 2 + 4


class TestPoisson:
    def test_mean_rate_statistically(self):
        sim, _node, sender = make_sender()
        source = PoissonSource(sim, sender, random.Random(1), mean_gap=0.01)
        source.start()
        sim.run(until=100.0)
        rate = source.generated / 100.0
        assert rate == pytest.approx(100.0, rel=0.05)

    def test_deterministic_given_rng(self):
        counts = []
        for _ in range(2):
            sim, _node, sender = make_sender()
            source = PoissonSource(sim, sender, random.Random(7), mean_gap=0.1)
            source.start()
            sim.run(until=10.0)
            counts.append(source.generated)
        assert counts[0] == counts[1]

    def test_exponential_gaps_memoryless_cov(self):
        # The c.o.v. of exponential inter-arrival times is 1.
        sim, _node, sender = make_sender()
        source = PoissonSource(sim, sender, random.Random(3), mean_gap=0.01)
        recorder = OfferedTrafficRecorder().attach(source)
        source.start()
        sim.run(until=50.0)
        gaps = np.diff(recorder.times)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.1)

    def test_invalid_gap(self):
        sim, _node, sender = make_sender()
        with pytest.raises(ValueError):
            PoissonSource(sim, sender, random.Random(0), mean_gap=-1.0)

    def test_rate_property(self):
        sim, _node, sender = make_sender()
        assert PoissonSource(sim, sender, random.Random(0), mean_gap=0.1).rate == 10.0


class TestPareto:
    def test_scale_for_mean_formula(self):
        # Pareto(scale, shape) mean = shape*scale/(shape-1).
        scale = pareto_scale_for_mean(mean=3.0, shape=1.5)
        assert 1.5 * scale / 0.5 == pytest.approx(3.0)

    def test_scale_requires_shape_above_one(self):
        with pytest.raises(ValueError):
            pareto_scale_for_mean(1.0, 1.0)
        with pytest.raises(ValueError):
            pareto_scale_for_mean(-1.0, 1.5)

    def test_variate_at_least_scale(self):
        rng = random.Random(0)
        assert all(pareto_variate(rng, 2.0, 1.5) >= 2.0 for _ in range(100))

    def test_variate_sample_mean(self):
        rng = random.Random(4)
        scale = pareto_scale_for_mean(1.0, 2.5)  # finite variance
        samples = [pareto_variate(rng, scale, 2.5) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(1.0, rel=0.1)

    def test_onoff_alternates_and_emits_at_peak_rate(self):
        sim, node, sender = make_sender()
        source = ParetoOnOffSource(
            sim,
            sender,
            random.Random(2),
            peak_gap=0.01,
            mean_on=0.5,
            mean_off=0.5,
            shape_on=1.5,
            shape_off=1.5,
        )
        source.start()
        sim.run(until=60.0)
        assert source.on_periods > 5
        # Long-run rate must sit between 0 and the peak rate.
        rate = source.generated / 60.0
        assert 0 < rate < 100.0

    def test_onoff_mean_rate_property(self):
        sim, _node, sender = make_sender()
        source = ParetoOnOffSource(
            sim,
            sender,
            random.Random(0),
            peak_gap=0.01,
            mean_on=1.0,
            mean_off=3.0,
        )
        assert source.mean_rate == pytest.approx(25.0)

    def test_invalid_peak_gap(self):
        sim, _node, sender = make_sender()
        with pytest.raises(ValueError):
            ParetoOnOffSource(sim, sender, random.Random(0), peak_gap=0.0)


class TestHooksAndRecorder:
    def test_hooks_called_per_generation(self):
        sim, _node, sender = make_sender()
        source = CbrSource(sim, sender, gap=0.5)
        calls = []
        source.add_hook(lambda t, n: calls.append((t, n)))
        source.start()
        sim.run(until=1.6)
        assert calls == [(0.5, 1), (1.0, 1), (1.5, 1)]

    def test_recorder_counts_and_bins(self):
        sim, _node, sender = make_sender()
        source = CbrSource(sim, sender, gap=0.25)
        recorder = OfferedTrafficRecorder().attach(source)
        source.start()
        sim.run(until=2.1)
        assert recorder.total == 8
        counts = recorder.bin_counts(1.0, until=2.0)
        assert list(counts) == [3, 4]  # t=0.25..1.0 and 1.25..2.0

    def test_recorder_respects_start_time(self):
        sim, _node, sender = make_sender()
        source = CbrSource(sim, sender, gap=0.25)
        recorder = OfferedTrafficRecorder(start_time=1.0).attach(source)
        source.start()
        sim.run(until=2.1)
        # Generations at 1.0, 1.25, 1.5, 1.75, 2.0 (t >= start_time).
        assert recorder.total == 5

    def test_recorder_multiple_sources_aggregate(self):
        sim, node, sender = make_sender()
        recorder = OfferedTrafficRecorder()
        for gap in (0.5, 0.25):
            source = CbrSource(sim, sender, gap=gap)
            recorder.attach(source)
            source.start()
        sim.run(until=1.0)
        assert recorder.total == 6  # 2 + 4

    def test_recorder_invalid_bin_width(self):
        with pytest.raises(ValueError):
            OfferedTrafficRecorder().bin_counts(0.0)

    def test_base_next_gap_abstract(self):
        sim, _node, sender = make_sender()
        source = TrafficSource(sim, sender)
        with pytest.raises(NotImplementedError):
            source._next_gap()
