"""Unit tests for the analytic Poisson/CLT baselines."""

import math

import numpy as np
import pytest

from repro.core.theory import (
    aggregate_cov_of_independent,
    clt_smoothing_factor,
    expected_bin_mean,
    poisson_aggregate_cov,
    poisson_cov_curve,
)


def test_expected_bin_mean():
    assert expected_bin_mean(40, 10.0, 0.404) == pytest.approx(161.6)


def test_poisson_cov_closed_form():
    # 1/sqrt(N lambda T)
    assert poisson_aggregate_cov(25, 10.0, 0.4) == pytest.approx(1.0 / math.sqrt(100))


def test_cov_decreases_with_sources():
    covs = [poisson_aggregate_cov(n, 10.0, 0.4) for n in (1, 4, 16, 64)]
    assert covs == sorted(covs, reverse=True)
    # Exactly like 1/sqrt(n): quadrupling n halves the cov.
    assert covs[1] == pytest.approx(covs[0] / 2)


def test_poisson_cov_curve_matches_scalar():
    curve = poisson_cov_curve([10, 20], 10.0, 0.4)
    assert curve[0] == pytest.approx(poisson_aggregate_cov(10, 10.0, 0.4))
    assert curve[1] == pytest.approx(poisson_aggregate_cov(20, 10.0, 0.4))


def test_cov_against_simulated_poisson():
    rng = np.random.default_rng(0)
    n, rate, width = 30, 10.0, 0.4
    lam = n * rate * width
    counts = rng.poisson(lam, size=50000)
    empirical = counts.std() / counts.mean()
    assert empirical == pytest.approx(poisson_aggregate_cov(n, rate, width), rel=0.03)


@pytest.mark.parametrize(
    "args",
    [(0, 10.0, 0.4), (10, 0.0, 0.4), (10, 10.0, -1.0)],
)
def test_invalid_inputs(args):
    with pytest.raises(ValueError):
        poisson_aggregate_cov(*args)


def test_clt_smoothing_factor():
    assert clt_smoothing_factor(1) == 1.0
    assert clt_smoothing_factor(100) == pytest.approx(0.1)
    with pytest.raises(ValueError):
        clt_smoothing_factor(0)


class TestAggregateCovOfIndependent:
    def test_identical_sources_follow_clt(self):
        # n identical independent sources: cov / sqrt(n).
        covs = [0.5] * 4
        means = [10.0] * 4
        assert aggregate_cov_of_independent(covs, means) == pytest.approx(0.25)

    def test_heterogeneous_sources(self):
        covs = [1.0, 0.0]
        means = [1.0, 9.0]
        # std = 1, mean = 10.
        assert aggregate_cov_of_independent(covs, means) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            aggregate_cov_of_independent([], [])
        with pytest.raises(ValueError):
            aggregate_cov_of_independent([0.1], [1.0, 2.0])
        with pytest.raises(ValueError):
            aggregate_cov_of_independent([0.1], [0.0])
