"""Shared pytest configuration for the test suite."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        "--regen-goldens",  # alias; see tests/goldens/README.md
        action="store_true",
        default=False,
        help=(
            "rewrite tests/goldens/*.json from the current code instead of "
            "comparing against them (review the diff before committing; "
            "see tests/goldens/README.md for when regeneration is legitimate)"
        ),
    )
