"""Property and contract tests for the hybrid co-simulation backend.

Three layers:

* hypothesis properties for :class:`FluidTrajectory`, the piecewise-
  linear interpolant the foreground packet path samples between fluid
  RK4 endpoints -- interpolated values must stay inside the straddling
  knots' bounds, clamp at the filled end, and respect the physical
  ranges (queue >= 0, drop probability in [0, 1]);
* determinism and invariance: a hybrid run is bit-identical across
  repeated runs at the same seed, across ``scheduler="heap"|"wheel"``,
  and across ``engine="object"|"batch"`` (the batch request is an
  accepted no-op: the foreground always runs the object engine);
* the per-backend capability table: every rejected feature combo
  raises a ValueError naming the backend and the feature, the hybrid
  backend accepts the observability features the pure fluid limit
  cannot support, and the batch-engine envelope still excludes the
  fluid backend.
"""

import dataclasses
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hybrid_backend import FluidTrajectory, run_hybrid_scenario
from repro.experiments.config import paper_config
from repro.experiments.costmodel import CostModel, cell_units
from repro.experiments.results import ScenarioMetrics
from repro.experiments.scenario import run_scenario

# ----------------------------------------------------------------------
# FluidTrajectory interpolation properties
# ----------------------------------------------------------------------

_knots = st.lists(
    st.tuples(
        st.floats(0.0, 200.0, allow_nan=False, allow_infinity=False),
        st.floats(-0.2, 1.2, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=40,
)


def _build(dt, knots):
    trajectory = FluidTrajectory(dt, len(knots))
    for q, p in knots:
        trajectory.append(q, p)
    return trajectory


@given(
    dt=st.floats(1e-3, 1.0, allow_nan=False, allow_infinity=False),
    knots=_knots,
    pos=st.floats(-2.0, 50.0, allow_nan=False, allow_infinity=False),
)
@settings(max_examples=200, deadline=None)
def test_interpolant_stays_within_straddling_knots(dt, knots, pos):
    trajectory = _build(dt, knots)
    t = pos * dt
    q = trajectory.queue_at(t)
    p = trajectory.drop_prob_at(t)
    # Physical ranges hold for any query time, even when the raw knot
    # values wander outside them (RED's averaged p can touch 1.0 and
    # float noise can dip below 0).
    assert q >= 0.0
    assert 0.0 <= p <= 1.0
    # Identify the straddling knot pair the query falls between; knot 0
    # is the implicit (0, 0) pre-simulation state.
    qs = [0.0] + [knot_q for knot_q, _ in knots]
    idx = min(max(pos, 0.0), float(len(knots)))
    lo = min(int(idx), len(knots) - 1)
    seg_lo, seg_hi = qs[lo], qs[lo + 1]
    assert min(seg_lo, seg_hi) - 1e-9 <= q <= max(seg_lo, seg_hi) + 1e-9


@given(dt=st.floats(1e-3, 1.0, allow_nan=False, allow_infinity=False), knots=_knots)
@settings(max_examples=100, deadline=None)
def test_interpolant_exact_at_knots_and_clamped_past_end(dt, knots):
    trajectory = _build(dt, knots)
    assert trajectory.queue_at(0.0) == 0.0
    assert trajectory.drop_prob_at(-5.0 * dt) == 0.0
    for i, (q, p) in enumerate(knots, start=1):
        assert math.isclose(
            trajectory.queue_at(i * dt), max(q, 0.0), rel_tol=1e-9, abs_tol=1e-9
        )
    # Past the filled end the interpolant holds the last knot (the
    # coupler only queries inside the integrated window, but a clamp
    # beats an index error if a packet lands exactly on the boundary).
    last_q, last_p = knots[-1]
    assert trajectory.queue_at(1e6) == max(last_q, 0.0)
    assert trajectory.drop_prob_at(1e6) == min(max(last_p, 0.0), 1.0)


@given(
    dt=st.floats(1e-3, 1.0, allow_nan=False, allow_infinity=False),
    knots=_knots,
    pos=st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
)
@settings(max_examples=100, deadline=None)
def test_partially_filled_trajectory_clamps_at_frontier(dt, knots, pos):
    """Queries beyond the last *appended* knot (not the allocated end)
    must clamp to the frontier value: the simulator can only race ahead
    of the fluid by less than one coupling interval, and during that
    window the freshest fluid state is the right answer."""
    trajectory = FluidTrajectory(dt, len(knots) + 10)
    for q, p in knots:
        trajectory.append(q, p)
    frontier_q = max(knots[-1][0], 0.0)
    # Offset by half a step so float rounding in t/dt cannot land the
    # query a ULP *before* the frontier knot (where interpolation --
    # correctly -- still applies).
    t_beyond = (len(knots) + 0.5 + pos) * dt
    assert trajectory.queue_at(t_beyond) == frontier_q


# ----------------------------------------------------------------------
# Determinism and scheduler/engine invariance
# ----------------------------------------------------------------------


def _hybrid_config(**overrides):
    defaults = dict(
        backend="hybrid",
        n_clients=20,
        hybrid_foreground_flows=5,
        duration=8.0,
        warmup=2.0,
        seed=3,
    )
    defaults.update(overrides)
    return paper_config(**defaults)


def test_hybrid_rerun_is_bit_identical():
    first = ScenarioMetrics.from_result(run_scenario(_hybrid_config()))
    second = ScenarioMetrics.from_result(run_scenario(_hybrid_config()))
    assert first == second
    assert first.backend == "hybrid"
    assert first.measured_flows == 5


@pytest.mark.parametrize("queue", ["fifo", "red"])
def test_hybrid_identical_across_scheduler_and_engine(queue):
    baseline = None
    for scheduler in ("heap", "wheel"):
        for engine in ("object", "batch"):
            config = _hybrid_config(queue=queue, scheduler=scheduler, engine=engine)
            metrics = ScenarioMetrics.from_result(run_scenario(config))
            if baseline is None:
                baseline = metrics
            else:
                assert metrics == baseline, (
                    f"hybrid diverged under scheduler={scheduler} "
                    f"engine={engine}"
                )
    assert baseline.gateway_arrivals > 0


def test_hybrid_seed_changes_outcome():
    base = run_scenario(_hybrid_config())
    other = run_scenario(_hybrid_config(seed=4))
    assert base.gateway_arrivals != other.gateway_arrivals


def test_direct_runner_rejects_other_backends():
    with pytest.raises(ValueError, match="hybrid"):
        run_hybrid_scenario(paper_config(backend="packet", duration=1.0))


# ----------------------------------------------------------------------
# Capability table (per-backend validate() envelope)
# ----------------------------------------------------------------------

REJECTED = [
    # (backend, overrides, message fragment naming the feature)
    ("fluid", {"protocol": "tahoe"}, "does not support protocol"),
    ("fluid", {"queue": "drr"}, "does not support queue"),
    ("fluid", {"workload": "rpc"}, "does not support workload"),
    ("fluid", {"traffic": "pareto_onoff"}, "does not support traffic model"),
    ("fluid", {"pacing": True}, "does not support pacing"),
    ("fluid", {"obs_trace": ("cwnd",)}, "flight recorder"),
    ("fluid", {"obs_profile": True}, "flight recorder"),
    ("fluid", {"forensics": True}, "burst forensics"),
    ("hybrid", {"protocol": "sack"}, "does not support protocol"),
    ("hybrid", {"queue": "ared"}, "does not support queue"),
    ("hybrid", {"workload": "bsp"}, "does not support workload"),
    ("hybrid", {"traffic": "pareto_onoff"}, "does not support traffic model"),
    ("hybrid", {"pacing": True}, "does not support pacing"),
    ("hybrid", {"hybrid_foreground_flows": 0}, "at least 1"),
    ("hybrid", {"hybrid_foreground_flows": 21}, "cannot exceed n_clients"),
    ("hybrid", {"hybrid_background_flows": -1}, "non-negative"),
    ("hybrid", {"hybrid_coupling_dt": -0.1}, "non-negative"),
]


@pytest.mark.parametrize(
    "backend,overrides,fragment",
    REJECTED,
    ids=[f"{b}-{next(iter(o))}" for b, o, _ in REJECTED],
)
def test_capability_table_rejections_name_the_feature(backend, overrides, fragment):
    config = paper_config(backend=backend, n_clients=20, **overrides)
    with pytest.raises(ValueError, match=fragment) as excinfo:
        config.validate()
    if fragment.startswith("does not support"):
        assert backend in str(excinfo.value)


@pytest.mark.parametrize(
    "overrides",
    [
        {"obs_trace": ("cwnd",)},
        {"obs_profile": True},
        {"forensics": True},
        {"engine": "batch"},
    ],
    ids=["obs_trace", "obs_profile", "forensics", "batch_engine"],
)
def test_hybrid_accepts_observability_and_batch(overrides):
    """The hybrid foreground flows are real packet flows, so the
    flight recorder and burst forensics attach to them; engine="batch"
    is accepted as a no-op (the foreground runs the object engine)."""
    paper_config(backend="hybrid", n_clients=20, **overrides).validate()


def test_fluid_batch_still_rejected():
    with pytest.raises(ValueError, match="packet backend"):
        paper_config(backend="fluid", engine="batch").validate()


def test_packet_backend_accepts_everything_fluid_rejects():
    for _, overrides, _ in REJECTED:
        if any(key.startswith("hybrid_") for key in overrides):
            continue
        paper_config(backend="packet", n_clients=20, **overrides).validate()


# ----------------------------------------------------------------------
# Hybrid config plumbing: digest, label, background count, cost lanes
# ----------------------------------------------------------------------


def test_hybrid_knobs_are_digest_included():
    base = _hybrid_config()
    assert (
        base.config_digest()
        != base.with_(hybrid_foreground_flows=6).config_digest()
    )
    assert (
        base.config_digest()
        != base.with_(hybrid_background_flows=500).config_digest()
    )
    assert (
        base.config_digest()
        != base.with_(hybrid_coupling_dt=0.05).config_digest()
    )
    # Execution strategy stays digest-excluded for hybrid too.
    assert (
        base.config_digest() == base.with_(scheduler="wheel").config_digest()
    )
    assert base.config_digest() != base.with_(backend="packet").config_digest()


def test_hybrid_label_and_background_count():
    config = _hybrid_config()
    assert "~hybrid" in config.label
    assert config.hybrid_background_count == 15  # ambient remainder
    assert config.with_(hybrid_background_flows=999).hybrid_background_count == 999


def test_cost_model_hybrid_lane_scales_with_foreground_not_ambient():
    small = _hybrid_config(n_clients=100)
    huge = _hybrid_config(n_clients=100_000)
    assert cell_units(small) == cell_units(huge)
    assert cell_units(small) == small.duration * small.hybrid_foreground_flows
    model = CostModel()
    model.observe(small, 2.0)
    # Hybrid observations land in their own lane, separate from packet.
    packet = dataclasses.replace(small, backend="packet")
    assert CostModel.lane(small)[0] == "hybrid"
    assert CostModel.lane(packet)[0] == "packet"
    assert model.estimate(huge) == pytest.approx(2.0)
