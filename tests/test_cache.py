"""Tests for config content digests and the on-disk result cache."""

import json
import math
import os
import subprocess
import sys

from repro.experiments.cache import ResultCache
from repro.experiments.config import CONFIG_SCHEMA_VERSION, paper_config
from repro.experiments.results import ScenarioMetrics
from repro.experiments.scenario import run_scenario


def tiny(**overrides):
    defaults = dict(n_clients=2, duration=3.0, seed=1)
    defaults.update(overrides)
    return paper_config(**defaults)


def tiny_metrics(**overrides):
    return ScenarioMetrics.from_result(run_scenario(tiny(**overrides)))


class TestConfigDigest:
    def test_deterministic(self):
        assert tiny().config_digest() == tiny().config_digest()

    def test_hex_sha256_shape(self):
        digest = tiny().config_digest()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_physics_fields_change_digest(self):
        base = tiny()
        for overrides in [
            dict(protocol="vegas"),
            dict(queue="red"),
            dict(n_clients=3),
            dict(seed=2),
            dict(duration=4.0),
            dict(bottleneck_rate_bps=1.5e6),
            dict(buffer_capacity=25),
            dict(pacing=True),
            dict(record_offered=False),
        ]:
            assert base.with_(**overrides).config_digest() != base.config_digest()

    def test_observation_only_fields_do_not_change_digest(self):
        base = tiny()
        traced = base.with_(trace_cwnd_flows=(0, 1))
        assert traced.config_digest() == base.config_digest()

    def test_payload_carries_schema_version(self):
        assert tiny().digest_payload()["schema_version"] == CONFIG_SCHEMA_VERSION

    def test_stable_across_processes(self):
        config = tiny(protocol="vegas", queue="red", mean_gap=0.07)
        code = (
            "from repro.experiments.config import paper_config;"
            "print(paper_config(n_clients=2, duration=3.0, seed=1,"
            " protocol='vegas', queue='red', mean_gap=0.07).config_digest())"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == config.config_digest()


class TestMetricsRoundTrip:
    def test_from_dict_inverts_as_dict(self):
        metrics = tiny_metrics(protocol="udp")
        assert ScenarioMetrics.from_dict(metrics.as_dict()) == metrics

    def test_from_dict_ignores_unknown_keys(self):
        record = tiny_metrics(protocol="udp").as_dict()
        record["future_field"] = 123
        assert ScenarioMetrics.from_dict(record).protocol == "udp"

    def test_from_dict_defaults_missing_error(self):
        record = tiny_metrics(protocol="udp").as_dict()
        del record["error"]  # record written before the field existed
        assert ScenarioMetrics.from_dict(record).error == ""

    def test_json_round_trip_preserves_nan(self):
        placeholder = ScenarioMetrics.failure(tiny(), "boom")
        restored = ScenarioMetrics.from_dict(
            json.loads(json.dumps(placeholder.as_dict()))
        )
        assert math.isnan(restored.cov)
        assert restored.error == "boom"
        assert restored.failed

    def test_failure_placeholder_keeps_identity(self):
        config = tiny(protocol="vegas", queue="red", n_clients=7)
        placeholder = ScenarioMetrics.failure(config, "timeout after 1s")
        assert placeholder.protocol == "vegas"
        assert placeholder.queue == "red"
        assert placeholder.n_clients == 7
        assert placeholder.label == config.label
        assert placeholder.failed


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        config = tiny(protocol="udp")
        assert cache.get(config) is None
        metrics = tiny_metrics(protocol="udp")
        cache.put(config, metrics)
        assert cache.get(config) == metrics
        assert config in cache
        assert len(cache) == 1

    def test_different_config_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(tiny(), tiny_metrics())
        assert cache.get(tiny(seed=99)) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = tiny()
        cache.put(config, tiny_metrics())
        with open(cache.path_for(config), "w") as handle:
            handle.write("{not json")
        assert cache.get(config) is None

    def test_schema_version_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = tiny()
        cache.put(config, tiny_metrics())
        path = cache.path_for(config)
        with open(path) as handle:
            payload = json.load(handle)
        payload["schema_version"] = CONFIG_SCHEMA_VERSION + 1
        with open(path, "w") as handle:
            json.dump(payload, handle)
        assert cache.get(config) is None

    def test_failure_placeholder_never_served(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = tiny()
        cache.put(config, ScenarioMetrics.failure(config, "boom"))
        assert cache.get(config) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(tiny(), tiny_metrics())
        cache.put(tiny(seed=2), tiny_metrics(seed=2))
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_shared_across_instances(self, tmp_path):
        first = ResultCache(str(tmp_path))
        metrics = tiny_metrics()
        first.put(tiny(), metrics)
        second = ResultCache(str(tmp_path))
        assert second.get(tiny()) == metrics
