"""Unit tests for the TCP and UDP sinks."""


from repro.net.packet import PacketFactory
from repro.sim.engine import Simulator
from repro.transport.sink import TcpSink, UdpSink

from tests.helpers import CaptureNode


def make_sink(delayed_ack=False, ack_delay=0.1):
    sim = Simulator()
    node = CaptureNode(sim, "server")
    factory = PacketFactory()
    sink = TcpSink(
        sim,
        node,
        flow_id=0,
        peer="client",
        packet_factory=factory,
        delayed_ack=delayed_ack,
        ack_delay=ack_delay,
    )
    return sim, node, factory, sink


def send_data(sink, factory, seq, ecn_ce=False, now=0.0):
    packet = factory.data(0, "client", "server", 1000, seqno=seq, now=now)
    packet.ecn_ce = ecn_ce
    sink.receive(packet)


class TestTcpSink:
    def test_in_order_data_acked_cumulatively(self):
        sim, node, factory, sink = make_sink()
        for seq in range(3):
            send_data(sink, factory, seq)
        acks = [p.ackno for p in node.transmitted]
        assert acks == [0, 1, 2]
        assert sink.stats.unique_packets == 3

    def test_gap_generates_duplicate_acks(self):
        sim, node, factory, sink = make_sink()
        send_data(sink, factory, 0)
        send_data(sink, factory, 2)
        send_data(sink, factory, 3)
        acks = [p.ackno for p in node.transmitted]
        assert acks == [0, 0, 0]
        assert sink.stats.out_of_order == 2

    def test_hole_fill_drains_buffered_packets(self):
        sim, node, factory, sink = make_sink()
        send_data(sink, factory, 0)
        send_data(sink, factory, 2)
        send_data(sink, factory, 3)
        send_data(sink, factory, 1)  # fills the hole
        assert node.transmitted[-1].ackno == 3
        assert sink.stats.unique_packets == 4

    def test_below_cumulative_counts_duplicate(self):
        sim, node, factory, sink = make_sink()
        send_data(sink, factory, 0)
        send_data(sink, factory, 0)
        assert sink.stats.duplicates == 1
        # The duplicate still triggers an ACK (the sender may need it).
        assert len(node.transmitted) == 2

    def test_duplicate_out_of_order_counts_once(self):
        sim, node, factory, sink = make_sink()
        send_data(sink, factory, 5)
        send_data(sink, factory, 5)
        assert sink.stats.out_of_order == 1
        assert sink.stats.duplicates == 1

    def test_nothing_received_ackno_is_minus_one(self):
        _sim, _node, _factory, sink = make_sink()
        assert sink.highest_in_order == -1

    def test_acks_ignore_non_data(self):
        sim, node, factory, sink = make_sink()
        sink.receive(factory.ack(0, "x", "server", ackno=0, now=0.0))
        assert node.transmitted == []

    def test_ecn_ce_echoed_on_ack(self):
        sim, node, factory, sink = make_sink()
        send_data(sink, factory, 0, ecn_ce=True)
        assert node.transmitted[0].ecn_echo
        send_data(sink, factory, 1)
        assert not node.transmitted[1].ecn_echo

    def test_stats_bytes(self):
        sim, node, factory, sink = make_sink()
        send_data(sink, factory, 0)
        assert sink.stats.bytes_received == 1000


class TestDelayedAck:
    def test_every_second_packet_acked_immediately(self):
        sim, node, factory, sink = make_sink(delayed_ack=True)
        send_data(sink, factory, 0)
        assert node.transmitted == []  # first packet held
        send_data(sink, factory, 1)
        assert [p.ackno for p in node.transmitted] == [1]

    def test_timer_flushes_single_held_packet(self):
        sim, node, factory, sink = make_sink(delayed_ack=True, ack_delay=0.2)
        send_data(sink, factory, 0)
        sim.run(until=0.3)
        assert [p.ackno for p in node.transmitted] == [0]

    def test_out_of_order_acked_immediately(self):
        sim, node, factory, sink = make_sink(delayed_ack=True)
        send_data(sink, factory, 0)
        send_data(sink, factory, 2)  # gap: immediate duplicate ACK
        assert [p.ackno for p in node.transmitted] == [0]

    def test_timer_cancelled_after_flush(self):
        sim, node, factory, sink = make_sink(delayed_ack=True, ack_delay=0.2)
        send_data(sink, factory, 0)
        send_data(sink, factory, 1)  # flushes
        sim.run(until=1.0)
        assert len(node.transmitted) == 1  # no spurious timer ACK

    def test_fewer_acks_than_packets(self):
        sim, node, factory, sink = make_sink(delayed_ack=True)
        for seq in range(10):
            send_data(sink, factory, seq)
        assert sink.acks_sent == 5


class TestUdpSink:
    def test_counts_everything(self):
        sim = Simulator()
        node = CaptureNode(sim, "server")
        factory = PacketFactory()
        sink = UdpSink(sim, node, 0, "client", factory)
        for seq in range(4):
            sink.receive(factory.data(0, "client", "server", 1000, seqno=seq, now=0.0))
        assert sink.stats.packets_received == 4
        assert sink.stats.unique_packets == 4
        assert node.transmitted == []  # sends nothing back

    def test_records_arrivals_when_asked(self):
        sim = Simulator()
        node = CaptureNode(sim, "server")
        factory = PacketFactory()
        sink = UdpSink(sim, node, 0, "client", factory, record_arrivals=True)
        sink.receive(factory.data(0, "client", "server", 1000, seqno=0, now=0.0))
        assert sink.stats.arrival_times == [0.0]
