"""Unit tests for the cross-stream dependence diagnostics."""

import numpy as np
import pytest

from repro.core.dependence import (
    autocorrelation,
    bin_flow_times,
    dependence_report,
    mean_pairwise_correlation,
    pairwise_correlations,
)


def independent_counts(n_flows=10, n_bins=2000, seed=0):
    rng = np.random.default_rng(seed)
    return rng.poisson(5.0, size=(n_flows, n_bins)).astype(float)


def synchronized_counts(n_flows=10, n_bins=2000, seed=0):
    rng = np.random.default_rng(seed)
    shared = rng.poisson(5.0, size=n_bins)
    noise = rng.poisson(1.0, size=(n_flows, n_bins))
    return (shared[None, :] + noise).astype(float)


class TestPairwiseCorrelations:
    def test_independent_streams_near_zero(self):
        correlations = pairwise_correlations(independent_counts())
        assert abs(correlations.mean()) < 0.02

    def test_synchronized_streams_strongly_positive(self):
        correlations = pairwise_correlations(synchronized_counts())
        assert correlations.mean() > 0.5

    def test_perfectly_coupled_pair(self):
        counts = np.array([[1.0, 2.0, 3.0, 4.0], [2.0, 4.0, 6.0, 8.0]])
        assert pairwise_correlations(counts)[0] == pytest.approx(1.0)

    def test_anticorrelated_pair(self):
        counts = np.array([[1.0, 2.0, 3.0], [3.0, 2.0, 1.0]])
        assert pairwise_correlations(counts)[0] == pytest.approx(-1.0)

    def test_zero_variance_flows_skipped(self):
        counts = np.array([[5.0, 5.0, 5.0], [1.0, 2.0, 3.0], [3.0, 2.0, 1.0]])
        correlations = pairwise_correlations(counts)
        assert correlations.size == 1  # only the two active flows pair up

    def test_requires_two_flows(self):
        with pytest.raises(ValueError):
            pairwise_correlations(np.ones((1, 10)))

    def test_mean_helper_zero_when_no_active_pairs(self):
        counts = np.array([[5.0, 5.0], [7.0, 7.0]])
        assert mean_pairwise_correlation(counts) == 0.0


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        acf = autocorrelation([1.0, 5.0, 2.0, 8.0], max_lag=2)
        assert acf[0] == pytest.approx(1.0)

    def test_white_noise_near_zero(self):
        series = np.random.default_rng(1).normal(size=5000)
        acf = autocorrelation(series, max_lag=5)
        assert np.all(np.abs(acf[1:]) < 0.05)

    def test_alternating_series_negative_lag1(self):
        acf = autocorrelation([1.0, -1.0] * 100, max_lag=1)
        assert acf[1] < -0.9

    def test_constant_series(self):
        acf = autocorrelation([3.0] * 10, max_lag=3)
        assert acf[0] == 1.0
        assert np.all(acf[1:] == 0.0)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0])

    def test_max_lag_clamped_to_length(self):
        acf = autocorrelation([1.0, 2.0, 3.0], max_lag=50)
        assert acf.size == 3  # lags 0..2


class TestDependenceReport:
    def test_independent_ratio_near_one(self):
        report = dependence_report(independent_counts())
        assert report.variance_excess_ratio == pytest.approx(1.0, abs=0.15)
        assert abs(report.mean_correlation) < 0.02

    def test_synchronized_ratio_far_above_one(self):
        report = dependence_report(synchronized_counts())
        assert report.variance_excess_ratio > 3.0
        assert report.fraction_positive > 0.9

    def test_describe_mentions_key_numbers(self):
        text = dependence_report(independent_counts()).describe()
        assert "pairwise corr" in text
        assert "var(sum)/sum(var)" in text

    def test_zero_variance_flows(self):
        counts = np.ones((3, 10))
        report = dependence_report(counts)
        assert report.variance_excess_ratio == 1.0


class TestBinFlowTimes:
    def test_bins_per_flow(self):
        times = {0: [0.1, 0.2, 1.5], 2: [0.9]}
        counts = bin_flow_times(times, 1.0, 0.0, 2.0)
        assert counts.shape == (2, 2)
        assert list(counts[0]) == [2, 1]
        assert list(counts[1]) == [1, 0]

    def test_flows_sorted_by_id(self):
        times = {5: [0.1], 1: [0.1, 0.2]}
        counts = bin_flow_times(times, 1.0, 0.0, 1.0)
        assert counts[0][0] == 2  # flow 1 first
        assert counts[1][0] == 1

    def test_empty_flow_all_zero(self):
        counts = bin_flow_times({0: [], 1: [0.5]}, 1.0, 0.0, 1.0)
        assert counts[0].sum() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            bin_flow_times({0: [0.1]}, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            bin_flow_times({0: [0.1]}, 1.0, 0.0, 0.5)


class TestScenarioIntegration:
    def test_scenario_dependence_report(self):
        from repro.experiments.config import paper_config
        from repro.experiments.scenario import run_scenario

        result = run_scenario(
            paper_config(
                protocol="reno",
                n_clients=4,
                duration=8.0,
                record_flow_arrivals=True,
            )
        )
        report = result.dependence()
        assert report is not None
        assert report.n_flows == 4

    def test_dependence_none_without_recording(self):
        from repro.experiments.config import paper_config
        from repro.experiments.scenario import run_scenario

        result = run_scenario(paper_config(protocol="reno", n_clients=4, duration=5.0))
        assert result.dependence() is None
