"""Smoke tests for the example scripts.

Each example is importable (its top level only defines functions and
constants; work happens under ``if __name__ == "__main__"``), and its
``main`` is a callable.  Full executions are exercised manually / by
the benchmark harness; importability catches API drift cheaply.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_and_defines_main(path):
    module = load(path)
    assert callable(module.main)
    assert module.__doc__  # every example documents itself
