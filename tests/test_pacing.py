"""Unit tests for the TCP pacing extension."""

import pytest

from repro.transport.reno import RenoSender
from repro.transport.tcp_base import TcpParams

from tests.helpers import TcpHarness


def make_harness(**overrides):
    params = TcpParams(
        initial_cwnd=overrides.pop("cwnd", 8.0),
        initial_ssthresh=64.0,
        pacing=True,
        **overrides,
    )
    return TcpHarness(RenoSender, {"params": params})


def prime_rtt(h, rtt=0.4):
    """Give the sender one RTT sample so pacing engages."""
    h.give_app_packets(1)
    h.advance(rtt)
    h.deliver_ack(0)


class TestPacing:
    def test_sends_immediately_before_first_rtt_sample(self):
        h = make_harness(cwnd=4.0)
        h.give_app_packets(4)
        # No sample yet: all four go out right away.
        assert len(h.sent_seqnos()) == 4

    def test_spreads_window_after_rtt_sample(self):
        h = make_harness(cwnd=8.0)
        prime_rtt(h, rtt=0.4)
        h.give_app_packets(8)
        immediately = len(h.sent_seqnos())
        # The first packet may go out at once; the rest wait for pace slots.
        assert immediately < 1 + 8
        h.advance(1.0)  # > one RTT: every pace slot has fired
        assert len(h.sent_seqnos()) == 1 + 8

    def test_pace_gap_is_srtt_over_window(self):
        h = make_harness(cwnd=8.0)
        prime_rtt(h, rtt=0.4)
        h.give_app_packets(8)
        h.advance(1.0)
        data_times = [
            (p.seqno, p.created_at) for p in h.transmitted if p.is_data and p.seqno >= 1
        ]
        gaps = [
            t2 - t1 for (_s1, t1), (_s2, t2) in zip(data_times, data_times[1:])
        ]
        expected = h.sender.srtt / h.sender.window()
        assert all(gap == pytest.approx(expected, rel=0.01) for gap in gaps)

    def test_timeout_cancels_pending_paced_sends(self):
        h = make_harness(cwnd=8.0, initial_rto=1.0, min_rto=1.0)
        prime_rtt(h, rtt=0.4)
        h.give_app_packets(20)
        # Let the retransmission timer fire with sends still pending.
        h.advance(10.0)
        assert h.sender.stats.timeouts >= 1
        # No duplicate first-transmissions: each seqno's first send is
        # unique and ordered.
        firsts = []
        seen = set()
        for p in h.transmitted:
            if p.is_data and p.seqno not in seen:
                seen.add(p.seqno)
                firsts.append(p.seqno)
        assert firsts == sorted(firsts)

    def test_pacing_off_by_default(self):
        params = TcpParams()
        assert params.pacing is False

    def test_scenario_label(self):
        from repro.experiments.config import paper_config

        config = paper_config(protocol="reno", pacing=True)
        assert config.label == "Reno/Paced"

    def test_paced_scenario_runs_and_delivers(self):
        from repro.experiments.config import paper_config
        from repro.experiments.scenario import run_scenario

        result = run_scenario(
            paper_config(protocol="reno", pacing=True, n_clients=4, duration=8.0)
        )
        assert result.throughput_packets > 0

    def test_paced_equals_plain_when_uncongested(self):
        from repro.experiments.config import paper_config
        from repro.experiments.scenario import run_scenario

        plain = run_scenario(
            paper_config(protocol="reno", n_clients=6, duration=15.0)
        )
        paced = run_scenario(
            paper_config(protocol="reno", pacing=True, n_clients=6, duration=15.0)
        )
        # App-limited flows barely queue at the pacer: identical delivery.
        assert paced.throughput_packets == plain.throughput_packets
        assert paced.loss_percent == plain.loss_percent == 0.0
