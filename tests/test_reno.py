"""Unit tests for TCP Reno fast retransmit / fast recovery."""

import pytest

from repro.transport.reno import RenoSender
from repro.transport.tcp_base import TcpParams

from tests.helpers import TcpHarness


def make_harness(cwnd=8.0, **overrides):
    params = TcpParams(initial_cwnd=cwnd, initial_ssthresh=overrides.pop("ssthresh", 2.0), **overrides)
    return TcpHarness(RenoSender, {"params": params})


def trigger_fast_retransmit(h):
    """Three duplicate ACKs for packet 0 (packets 1+ arrived, 0 lost...
    actually: ack 0 then three dups means packet 1 lost)."""
    h.deliver_ack(0)
    for _ in range(3):
        h.deliver_ack(0)


class TestFastRetransmit:
    def test_third_dupack_triggers_retransmission(self):
        h = make_harness()
        h.give_app_packets(100)
        before = h.sent_seqnos().count(1)
        trigger_fast_retransmit(h)
        assert h.sent_seqnos().count(1) == before + 1
        assert h.sender.stats.fast_retransmits == 1

    def test_two_dupacks_do_not_retransmit(self):
        h = make_harness()
        h.give_app_packets(100)
        h.deliver_ack(0)
        h.deliver_ack(0)
        h.deliver_ack(0)
        assert h.sender.stats.fast_retransmits == 0

    def test_window_halved_plus_three(self):
        h = make_harness(cwnd=8.0)
        h.give_app_packets(100)
        trigger_fast_retransmit(h)
        # At the 3rd dupack the effective window was 8 (cwnd never
        # adjusted since ssthresh=2 -> CA adds 1/8 on the first new ack).
        assert h.sender.ssthresh == pytest.approx(h.sender.cwnd - 3.0)
        assert h.sender.in_recovery

    def test_inflation_per_additional_dupack(self):
        h = make_harness(cwnd=8.0)
        h.give_app_packets(100)
        trigger_fast_retransmit(h)
        inflated = h.sender.cwnd
        h.deliver_ack(0)  # 4th dupack
        assert h.sender.cwnd == pytest.approx(inflated + 1.0)

    def test_inflation_allows_new_data(self):
        h = make_harness(cwnd=4.0, advertised_window=100)
        h.give_app_packets(100)
        trigger_fast_retransmit(h)
        highest = h.sender.maxseq
        # Several more dupacks inflate the window enough for new packets.
        for _ in range(6):
            h.deliver_ack(0)
        assert h.sender.maxseq > highest

    def test_new_ack_deflates_and_exits_recovery(self):
        h = make_harness(cwnd=8.0)
        h.give_app_packets(100)
        trigger_fast_retransmit(h)
        ssthresh = h.sender.ssthresh
        h.deliver_ack(h.sender.maxseq)  # full recovery ACK
        assert not h.sender.in_recovery
        assert h.sender.cwnd == pytest.approx(ssthresh)

    def test_classic_reno_exits_recovery_on_partial_ack(self):
        h = make_harness(cwnd=8.0)
        h.give_app_packets(100)
        trigger_fast_retransmit(h)
        h.deliver_ack(2)  # partial: below maxseq at loss detection
        assert not h.sender.in_recovery

    def test_no_second_fast_retransmit_in_same_recovery(self):
        h = make_harness(cwnd=8.0)
        h.give_app_packets(100)
        trigger_fast_retransmit(h)
        assert h.sender.stats.fast_retransmits == 1
        h.deliver_ack(0)
        h.deliver_ack(0)
        h.deliver_ack(0)
        assert h.sender.stats.fast_retransmits == 1

    def test_timeout_during_recovery_resets_state(self):
        h = make_harness(cwnd=8.0, initial_rto=1.0, min_rto=1.0)
        h.give_app_packets(100)
        trigger_fast_retransmit(h)
        h.advance(2.0)  # retransmission timer expires in recovery
        assert not h.sender.in_recovery
        assert h.sender.cwnd == 1.0
        assert h.sender.stats.timeouts == 1


class TestRenoWindowDynamics:
    def test_slow_start_then_avoidance_after_loss(self):
        h = make_harness(cwnd=8.0, ssthresh=64.0)
        h.give_app_packets(1000)
        trigger_fast_retransmit(h)
        h.deliver_ack(h.sender.maxseq)  # exit recovery
        cwnd = h.sender.cwnd
        assert cwnd < 8.0  # halved
        h.give_app_packets(100)
        h.deliver_ack(h.sender.maxseq)
        # Above ssthresh now: linear growth.
        assert h.sender.cwnd == pytest.approx(cwnd + 1.0 / cwnd)

    def test_protocol_name(self):
        assert RenoSender.protocol_name == "reno"
