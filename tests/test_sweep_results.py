"""Unit/integration tests for sweeps and flat result records."""


from repro.experiments.config import paper_config
from repro.experiments.results import ScenarioMetrics, metrics_table
from repro.experiments.scenario import run_scenario
from repro.experiments.sweep import client_grid, run_many, run_one


def tiny(**overrides):
    defaults = dict(n_clients=3, duration=5.0, seed=1)
    defaults.update(overrides)
    return paper_config(**defaults)


class TestScenarioMetrics:
    def test_from_result_flattens(self):
        result = run_scenario(tiny(protocol="reno"))
        metrics = ScenarioMetrics.from_result(result)
        assert metrics.protocol == "reno"
        assert metrics.label == "Reno"
        assert metrics.n_clients == 3
        assert metrics.cov == result.cov
        assert metrics.throughput_packets == result.throughput_packets
        assert 0.0 < metrics.fairness <= 1.0

    def test_as_dict_round_trips_to_table(self):
        metrics = ScenarioMetrics.from_result(run_scenario(tiny(protocol="udp")))
        table = metrics_table([metrics], title="T")
        assert "UDP" in table
        assert "T" in table

    def test_metrics_picklable(self):
        import pickle

        metrics = ScenarioMetrics.from_result(run_scenario(tiny(protocol="udp")))
        assert pickle.loads(pickle.dumps(metrics)) == metrics


class TestRunMany:
    def test_preserves_order_serial(self):
        configs = [tiny(protocol="udp"), tiny(protocol="reno")]
        metrics = run_many(configs, processes=1)
        assert [m.protocol for m in metrics] == ["udp", "reno"]

    def test_parallel_matches_serial(self):
        configs = [tiny(protocol="udp"), tiny(protocol="reno"), tiny(protocol="vegas")]
        serial = run_many(configs, processes=1)
        parallel = run_many(configs, processes=2)
        assert serial == parallel

    def test_single_config(self):
        metrics = run_many([tiny()], processes=4)
        assert len(metrics) == 1

    def test_run_one_equivalent(self):
        config = tiny(protocol="udp")
        assert run_one(config) == run_many([config], processes=1)[0]


class TestClientGrid:
    def test_builds_configs_per_count(self):
        grid = client_grid(tiny(), [2, 4, 8])
        assert [c.n_clients for c in grid] == [2, 4, 8]

    def test_overrides_applied(self):
        grid = client_grid(tiny(), [2], protocol="vegas")
        assert grid[0].protocol == "vegas"
