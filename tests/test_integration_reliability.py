"""End-to-end reliability and conservation tests.

TCP promises reliable in-order delivery; these tests stop the traffic
sources early and let the simulation drain, asserting that *every*
application packet eventually reaches the server exactly once -- across
protocols, queue disciplines, and congestion levels.  A stuck
retransmission timer, a go-back-N bug, or a sink buffering error all
fail here.
"""

import pytest

from repro.experiments.config import paper_config
from repro.experiments.scenario import Scenario


def drain_run(protocol, queue, n_clients, generate_for, drain_until, seed=1):
    """Generate traffic for ``generate_for`` seconds, then run quiet
    until ``drain_until`` and return the scenario."""
    config = paper_config(
        protocol=protocol,
        queue=queue,
        n_clients=n_clients,
        duration=drain_until,
        seed=seed,
    )
    scenario = Scenario(config)
    for source in scenario.sources:
        source._stop_at = generate_for
    scenario.sim.run(until=drain_until)
    return scenario


@pytest.mark.parametrize(
    "protocol,queue",
    [
        ("reno", "fifo"),
        ("reno", "red"),
        ("tahoe", "fifo"),
        ("newreno", "fifo"),
        ("vegas", "fifo"),
        ("vegas", "red"),
        ("reno_delack", "fifo"),
        ("reno_ecn", "red"),
    ],
)
def test_tcp_delivers_everything_uncongested(protocol, queue):
    scenario = drain_run(protocol, queue, n_clients=6, generate_for=5.0, drain_until=90.0)
    for sender, sink, source in zip(
        scenario.senders, scenario.sinks, scenario.sources
    ):
        assert sink.stats.unique_packets == source.generated
        # In-order contiguous delivery: next_expected covers everything.
        assert sink.next_expected == source.generated


def test_tcp_delivers_everything_under_heavy_congestion():
    # 50 clients is well past the knee: heavy loss, many timeouts --
    # reliability must still hold once the sources go quiet.
    scenario = drain_run("reno", "fifo", n_clients=50, generate_for=5.0, drain_until=400.0)
    undelivered = 0
    for sink, source in zip(scenario.sinks, scenario.sources):
        undelivered += source.generated - sink.stats.unique_packets
    assert undelivered == 0


def test_vegas_delivers_everything_under_heavy_congestion():
    scenario = drain_run("vegas", "fifo", n_clients=50, generate_for=5.0, drain_until=400.0)
    for sink, source in zip(scenario.sinks, scenario.sources):
        assert sink.stats.unique_packets == source.generated


def test_gateway_conservation_across_configs():
    for protocol, queue, n in [
        ("udp", "fifo", 8),
        ("reno", "fifo", 8),
        ("reno", "red", 40),
        ("vegas", "red", 40),
    ]:
        config = paper_config(
            protocol=protocol, queue=queue, n_clients=n, duration=10.0, seed=2
        )
        scenario = Scenario(config)
        scenario.sim.run(until=config.duration)
        queue_obj = scenario.network.bottleneck_queue
        stats = queue_obj.stats
        assert stats.arrivals == stats.departures + stats.drops + len(queue_obj), (
            protocol,
            queue,
            n,
        )


def test_no_duplicate_in_order_deliveries():
    scenario = drain_run("reno", "fifo", n_clients=30, generate_for=4.0, drain_until=200.0)
    for sink, source in zip(scenario.sinks, scenario.sources):
        # unique_packets counts in-order progress; it can never exceed
        # what the application generated.
        assert sink.stats.unique_packets <= source.generated


def test_sender_accounting_consistent():
    scenario = drain_run("reno", "fifo", n_clients=30, generate_for=4.0, drain_until=200.0)
    for sender in scenario.senders:
        stats = sender.stats
        assert stats.packets_sent >= stats.app_packets  # retransmits add
        assert stats.retransmits == stats.packets_sent - stats.app_packets
        assert sender.last_ack == sender.maxseq  # everything ACKed
        assert not sender.rtx_timer.pending  # timer idle when drained
