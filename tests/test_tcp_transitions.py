"""Property tests on the pure TCP transition functions.

:mod:`repro.engine.transitions` is the single source of truth for the
window, RTT-estimator and retransmit-timer arithmetic of *both* flow
engines: the per-flow object senders and the struct-of-arrays batch
engine call these same functions (that sharing is what lets
``tests/test_batch_differential.py`` assert bit-identical metrics).
These tests pin the functions' invariants directly, with no engine
running, so a future edit that breaks an invariant fails here first --
in milliseconds, with a minimal counterexample.
"""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.engine import transitions

finite = st.floats(allow_nan=False, allow_infinity=False)
cwnds = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
positive = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)
adv_windows = st.integers(min_value=1, max_value=10_000)


# ----------------------------------------------------------------------
# Window clamps
# ----------------------------------------------------------------------
@given(value=finite, adv=adv_windows)
def test_clamp_cwnd_range_and_idempotence(value, adv):
    clamped = transitions.clamp_cwnd(value, adv)
    assert 1.0 <= clamped <= float(adv)
    assert transitions.clamp_cwnd(clamped, adv) == clamped


@given(cwnd=cwnds, adv=adv_windows)
def test_effective_window_is_the_tighter_bound(cwnd, adv):
    window = transitions.effective_window(cwnd, adv)
    assert window == min(cwnd, float(adv))


# ----------------------------------------------------------------------
# Additive increase: strictly monotone between loss events
# ----------------------------------------------------------------------
@given(cwnd=cwnds, ssthresh=st.floats(min_value=2.0, max_value=1e6))
def test_increase_is_strictly_monotone(cwnd, ssthresh):
    after = transitions.slowstart_or_linear_next(cwnd, ssthresh)
    assert after > cwnd
    # Slow start opens by a full packet; congestion avoidance by 1/cwnd.
    if cwnd < ssthresh:
        assert after == cwnd + 1.0
    else:
        assert after == cwnd + 1.0 / cwnd


@given(cwnd=st.floats(min_value=1.0, max_value=1e3), steps=st.integers(1, 50))
def test_aimd_trajectory_is_monotone_between_losses(cwnd, steps):
    """No ACK sequence without a loss event can shrink the window."""
    ssthresh = cwnd / 2.0 + 1.0
    trajectory = [cwnd]
    for _ in range(steps):
        trajectory.append(
            transitions.slowstart_or_linear_next(trajectory[-1], ssthresh)
        )
    assert all(b > a for a, b in zip(trajectory, trajectory[1:]))


@given(window=st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_halved_ssthresh_floor(window):
    half = transitions.halved_ssthresh(window)
    assert half >= 2.0
    if window >= 4.0:
        assert half == window / 2.0


@given(cwnd=cwnds)
def test_reno_recovery_arithmetic(cwnd):
    assert transitions.reno_recovery_inflation(cwnd) == cwnd + 1.0
    assert transitions.reno_fast_recovery_entry_cwnd(cwnd) == cwnd + 3.0


# ----------------------------------------------------------------------
# RTT estimator and retransmission timer
# ----------------------------------------------------------------------
@given(sample=positive)
def test_rtt_init_seeds_variance_at_half(sample):
    srtt, rttvar = transitions.rtt_init(sample)
    assert srtt == sample
    assert rttvar == sample / 2.0


@given(srtt=positive, rttvar=st.floats(min_value=0.0, max_value=1e6), sample=positive)
def test_rtt_update_moves_toward_sample(srtt, rttvar, sample):
    new_srtt, new_rttvar = transitions.rtt_update(srtt, rttvar, sample)
    lo, hi = min(srtt, sample), max(srtt, sample)
    assert lo <= new_srtt <= hi
    assert new_rttvar >= 0.0
    # A repeated identical sample decays the variance estimate.
    if sample == srtt and rttvar > 0:
        assert new_rttvar < rttvar


@given(
    srtt=st.one_of(st.none(), positive),
    rttvar=st.floats(min_value=0.0, max_value=100.0),
    backoff=st.sampled_from([1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]),
    tick=st.floats(min_value=0.01, max_value=1.0),
)
def test_rto_bounded_and_monotone_in_backoff(srtt, rttvar, backoff, tick):
    min_rto, max_rto, initial_rto = 1.0, 64.0, 3.0
    rto = transitions.rto_value(
        srtt, rttvar, backoff, tick, min_rto, max_rto, initial_rto
    )
    assert min_rto <= rto <= max_rto
    doubled = transitions.rto_value(
        srtt, rttvar, min(backoff * 2.0, 64.0), tick, min_rto, max_rto, initial_rto
    )
    assert doubled >= rto


@given(backoff=st.floats(min_value=1.0, max_value=1e3), cap=st.floats(1.0, 1e3))
def test_backoff_doubles_until_the_cap(backoff, cap):
    after = transitions.next_backoff(backoff, cap)
    assert after <= cap
    assert after == min(cap, backoff * 2.0)
    # Monotone non-decreasing sequence under iteration.
    assert transitions.next_backoff(after, cap) >= after


# ----------------------------------------------------------------------
# Vegas estimator and window policy
# ----------------------------------------------------------------------
@given(window=cwnds, base_rtt=positive, extra=st.floats(0.0, 1e3))
def test_vegas_queue_estimate_sign(window, base_rtt, extra):
    """The backlog estimate is zero at base RTT and grows with queueing."""
    rtt = base_rtt + extra
    diff = transitions.vegas_queue_estimate(window, base_rtt, rtt)
    assert diff >= 0.0
    assert math.isclose(
        diff, window * (1.0 - base_rtt / rtt), rel_tol=1e-9, abs_tol=1e-9
    )
    assert transitions.vegas_queue_estimate(window, base_rtt, base_rtt) == 0.0


@given(window=cwnds)
def test_vegas_queue_estimate_unmeasurable_is_zero(window):
    assert transitions.vegas_queue_estimate(window, math.inf, 1.0) == 0.0
    assert transitions.vegas_queue_estimate(window, 1.0, 0.0) == 0.0


@given(
    cwnd=st.floats(min_value=2.0, max_value=1e6),
    diff=st.floats(min_value=0.0, max_value=100.0),
)
def test_vegas_ca_step_is_at_most_one_packet(cwnd, diff):
    alpha, beta, min_cwnd = 1.0, 3.0, 2.0
    after = transitions.vegas_ca_next(cwnd, diff, alpha, beta, min_cwnd)
    assert abs(after - cwnd) <= 1.0
    assert after >= min_cwnd
    if alpha <= diff <= beta:
        assert after == cwnd  # inside the target band: hold


@given(cwnd=cwnds, shrink=st.floats(min_value=0.1, max_value=1.0))
def test_vegas_reductions_respect_the_floor(cwnd, shrink):
    min_cwnd = 2.0
    for fn in (transitions.vegas_ss_exit_window, transitions.vegas_loss_window):
        after = fn(cwnd, min_cwnd, shrink)
        assert after >= min_cwnd
        assert after <= max(cwnd, min_cwnd)
    assert transitions.vegas_ss_grow_window(cwnd) == cwnd * 2.0


@given(
    srtt=st.one_of(st.none(), positive),
    rttvar=st.floats(min_value=0.0, max_value=1e3),
)
def test_vegas_fine_timeout_matches_jacobson_expiry(srtt, rttvar):
    initial_rto = 3.0
    expiry = transitions.vegas_fine_timeout(srtt, rttvar, initial_rto)
    if srtt is None:
        assert expiry == initial_rto
    else:
        assert expiry == srtt + 4.0 * rttvar
