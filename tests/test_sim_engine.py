"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=5.0).now == 5.0


def test_schedule_and_run_executes_callback():
    sim = Simulator()
    fired = []
    sim.schedule(1.5, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 1.5


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, 3)
    sim.schedule(1.0, order.append, 1)
    sim.schedule(2.0, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(1.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_priority_breaks_ties_before_insertion_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "low", priority=1)
    sim.schedule(1.0, order.append, "high", priority=0)
    sim.run()
    assert order == ["high", "low"]


def test_run_until_stops_clock_at_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0


def test_run_until_includes_events_exactly_at_until():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, 2)
    sim.run(until=2.0)
    assert fired == [2]


def test_run_until_advances_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_run_can_be_resumed():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(3.0, fired.append, 3)
    sim.run(until=2.0)
    sim.run(until=4.0)
    assert fired == [1, 3]


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.cancel(event)
    sim.cancel(event)
    sim.run()


def test_events_scheduled_during_execution_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 1)
    sim.run()
    assert fired == [1, 2, 3]
    assert sim.now == 3.0


def test_callback_scheduling_at_current_time_runs_this_pass():
    sim = Simulator()
    fired = []

    def now_event():
        sim.schedule(0.0, fired.append, "inner")

    sim.schedule(1.0, now_event)
    sim.run()
    assert fired == ["inner"]


def test_max_events_bounds_execution():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_step_returns_false_when_drained():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_peek_time_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.peek_time() == 2.0


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_callbacks_see_correct_now():
    sim = Simulator()
    seen = []
    sim.schedule(1.25, lambda: seen.append(sim.now))
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.25, 2.5]


def test_live_events_excludes_cancelled_but_unpopped():
    sim = Simulator()
    events = [sim.schedule(float(i), lambda: None) for i in range(1, 5)]
    events[2].cancel()
    # The cancelled event stays in the heap (O(1) cancellation)...
    assert sim.pending_events == 4
    # ...but the live counter already excludes it.
    assert sim.live_events == 3


def test_live_events_counter_drains_with_pops():
    sim = Simulator()
    doomed = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    doomed.cancel()
    sim.run()
    assert sim.pending_events == 0
    assert sim.live_events == 0


def test_cancel_after_fire_does_not_skew_live_events():
    sim = Simulator()
    fired = sim.schedule(1.0, lambda: None)
    sim.run()
    fired.cancel()  # late cancel of an executed event: counter no-op
    sim.schedule(2.0, lambda: None)
    assert sim.live_events == 1
    assert sim.pending_events == 1


def test_cancel_is_idempotent_for_live_events():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.live_events == 1


def test_peek_time_reconciles_live_events():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    sim.peek_time()  # discards the cancelled head
    assert sim.pending_events == 1
    assert sim.live_events == 1
