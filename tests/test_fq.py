"""Unit tests for the DRR fair queue with longest-queue drop."""

import pytest

from repro.net.fq import DRRQueue
from repro.net.packet import PacketFactory


def make_packet(factory, flow, seq=0, size=1000):
    return factory.data(flow, f"c{flow}", "s", size, seqno=seq, now=0.0)


def fill(queue, factory, flow, n, size=1000):
    admitted = 0
    for i in range(n):
        if queue.enqueue(make_packet(factory, flow, i, size), 0.0):
            admitted += 1
    return admitted


def drain(queue):
    out = []
    while True:
        packet = queue.dequeue(0.0)
        if packet is None:
            break
        out.append(packet)
    return out


class TestBasics:
    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            DRRQueue(10, quantum=0)

    def test_single_flow_fifo_order(self):
        queue = DRRQueue(10)
        factory = PacketFactory()
        fill(queue, factory, flow=0, n=5)
        assert [p.seqno for p in drain(queue)] == list(range(5))

    def test_len_counts_all_flows(self):
        queue = DRRQueue(20)
        factory = PacketFactory()
        fill(queue, factory, 0, 3)
        fill(queue, factory, 1, 4)
        assert len(queue) == 7
        assert queue.flow_queue_length(0) == 3
        assert queue.flow_queue_length(9) == 0

    def test_byte_length(self):
        queue = DRRQueue(20)
        factory = PacketFactory()
        fill(queue, factory, 0, 2, size=500)
        assert queue.byte_length == 1000

    def test_dequeue_empty(self):
        assert DRRQueue(5).dequeue(0.0) is None


class TestFairService:
    def test_round_robin_interleaves_flows(self):
        queue = DRRQueue(20, quantum=1000)
        factory = PacketFactory()
        fill(queue, factory, 0, 3)
        fill(queue, factory, 1, 3)
        flows = [p.flow_id for p in drain(queue)]
        # Equal packet sizes and quantum: strict alternation.
        assert flows == [0, 1, 0, 1, 0, 1]

    def test_byte_fairness_with_unequal_packet_sizes(self):
        # Flow 0 sends 500-B packets, flow 1 sends 1000-B packets; over a
        # full rotation both should receive (nearly) equal bytes.
        queue = DRRQueue(100, quantum=1000)
        factory = PacketFactory()
        fill(queue, factory, 0, 20, size=500)
        fill(queue, factory, 1, 10, size=1000)
        served = drain(queue)[:12]
        bytes_by_flow = {0: 0, 1: 0}
        for packet in served:
            bytes_by_flow[packet.flow_id] += packet.size
        assert bytes_by_flow[0] == pytest.approx(bytes_by_flow[1], rel=0.35)

    def test_idle_flow_forfeits_deficit(self):
        queue = DRRQueue(20, quantum=1000)
        factory = PacketFactory()
        fill(queue, factory, 0, 1)
        drain(queue)
        # Flow 0 re-appears later with no accumulated credit.
        fill(queue, factory, 0, 2)
        fill(queue, factory, 1, 2)
        flows = [p.flow_id for p in drain(queue)]
        assert flows == [0, 1, 0, 1]

    def test_large_packet_waits_for_deficit(self):
        queue = DRRQueue(20, quantum=500)
        factory = PacketFactory()
        fill(queue, factory, 0, 2, size=1000)  # needs two quanta each
        fill(queue, factory, 1, 2, size=500)
        flows = [p.flow_id for p in drain(queue)]
        # Flow 1's small packets slot in while flow 0 accumulates credit.
        assert flows[0] == 1 or flows.count(1) == 2


class TestLongestQueueDrop:
    def test_hog_pays_for_overflow(self):
        queue = DRRQueue(6)
        factory = PacketFactory()
        fill(queue, factory, 0, 5)  # the hog
        fill(queue, factory, 1, 1)
        # Buffer full; a polite flow's arrival evicts the hog's tail.
        assert queue.enqueue(make_packet(factory, 2, 99), 0.0)
        assert queue.flow_queue_length(0) == 4
        assert queue.flow_queue_length(2) == 1
        assert queue.stats.drops == 1

    def test_hog_arrival_dropped_directly(self):
        queue = DRRQueue(4)
        factory = PacketFactory()
        fill(queue, factory, 0, 3)
        fill(queue, factory, 1, 1)
        assert not queue.enqueue(make_packet(factory, 0, 99), 0.0)
        assert len(queue) == 4

    def test_capacity_never_exceeded(self):
        queue = DRRQueue(5)
        factory = PacketFactory()
        for flow in range(3):
            fill(queue, factory, flow, 4)
        assert len(queue) <= 5

    def test_conservation(self):
        queue = DRRQueue(5)
        factory = PacketFactory()
        for flow in range(3):
            fill(queue, factory, flow, 4)
        drained = len(drain(queue))
        stats = queue.stats
        assert stats.arrivals == 12
        assert stats.departures == drained
        assert stats.arrivals == stats.departures + stats.drops


class TestScenarioIntegration:
    def test_drr_scenario_runs(self):
        from repro.experiments.config import paper_config
        from repro.experiments.scenario import Scenario, run_scenario

        config = paper_config(protocol="reno", queue="drr", n_clients=4, duration=8.0)
        scenario = Scenario(config)
        assert isinstance(scenario.network.bottleneck_queue, DRRQueue)
        result = scenario.run()
        assert result.throughput_packets > 0

    def test_drr_label(self):
        from repro.experiments.config import paper_config

        assert paper_config(protocol="reno", queue="drr").label == "Reno/DRR"

    def test_drr_fairer_than_fifo_under_congestion(self):
        from repro.experiments.config import paper_config
        from repro.experiments.scenario import run_scenario
        from repro.analysis.stats import jains_fairness_index

        base = dict(n_clients=45, duration=30.0, seed=4)
        fifo = run_scenario(paper_config(protocol="reno", queue="fifo", **base))
        drr = run_scenario(paper_config(protocol="reno", queue="drr", **base))
        assert jains_fairness_index(drr.delivered_per_flow) >= (
            jains_fairness_index(fifo.delivered_per_flow) - 0.02
        )
