"""Assorted coverage: package exports, monitors, small API corners."""

import math

import pytest

from repro.net.link import Link
from repro.net.monitor import FlowArrivalMonitor
from repro.net.node import Node
from repro.net.packet import PacketFactory
from repro.sim.engine import Simulator


class TestPackageExports:
    def test_top_level_api(self):
        import repro

        assert callable(repro.run_scenario)
        assert callable(repro.paper_config)
        assert callable(repro.coefficient_of_variation)
        assert repro.__version__

    def test_subpackage_all_importable(self):
        import repro.analysis
        import repro.core
        import repro.experiments
        import repro.net
        import repro.sim
        import repro.traffic
        import repro.transport

        for module in (
            repro.analysis,
            repro.core,
            repro.experiments,
            repro.net,
            repro.sim,
            repro.traffic,
            repro.transport,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestFlowArrivalMonitor:
    def test_records_per_flow(self):
        monitor = FlowArrivalMonitor()
        factory = PacketFactory()
        monitor.on_packet(factory.data(0, "a", "b", 1000, seqno=0, now=0.0), 1.0)
        monitor.on_packet(factory.data(2, "a", "b", 1000, seqno=0, now=0.0), 2.0)
        monitor.on_packet(factory.data(0, "a", "b", 1000, seqno=1, now=0.0), 3.0)
        assert monitor.times_by_flow == {0: [1.0, 3.0], 2: [2.0]}

    def test_ignores_acks_and_warmup(self):
        monitor = FlowArrivalMonitor(start_time=5.0)
        factory = PacketFactory()
        monitor.on_packet(factory.ack(0, "b", "a", ackno=0, now=0.0), 6.0)
        monitor.on_packet(factory.data(0, "a", "b", 1000, seqno=0, now=0.0), 1.0)
        assert monitor.times_by_flow == {}

    def test_attach_to_interface(self):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        Link(sim, a, b, 1e6, 0.0)
        a.set_default_route("b")
        monitor = FlowArrivalMonitor().attach(a.interfaces["b"])
        factory = PacketFactory()
        import repro.transport.base as base

        class Sink(base.Agent):
            def receive(self, packet):
                pass

        Sink(sim, b, 3, "a", factory)
        a.send(factory.data(3, "a", "b", 1000, seqno=0, now=0.0))
        assert list(monitor.times_by_flow) == [3]


class TestInterfaceState:
    def test_busy_flag_during_transmission(self):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        Link(sim, a, b, 1e4, 0.0)  # 1000 B takes 0.8 s
        a.set_default_route("b")
        factory = PacketFactory()

        class Sink:
            def receive(self, packet):
                pass

        b.bind_flow(0, Sink())
        a.send(factory.data(0, "a", "b", 1000, seqno=0, now=0.0))
        iface = a.interfaces["b"]
        assert iface.busy
        sim.run(until=0.5)
        assert iface.busy
        sim.run(until=1.0)
        assert not iface.busy


class TestVegasEdgeCases:
    def test_queue_estimate_without_base_rtt(self):
        from repro.transport.vegas import VegasSender

        from tests.helpers import TcpHarness

        h = TcpHarness(VegasSender)
        assert h.sender.queue_estimate(1.0) == 0.0
        assert math.isinf(h.sender.base_rtt)

    def test_epoch_reset_after_timeout(self):
        from repro.transport.tcp_base import TcpParams
        from repro.transport.vegas import VegasSender

        from tests.helpers import TcpHarness

        h = TcpHarness(
            VegasSender,
            {"params": TcpParams(initial_rto=1.0, min_rto=1.0)},
        )
        h.give_app_packets(10)
        h.advance(1.5)
        assert h.sender.in_slow_start
        assert h.sender._epoch_marker == h.sender.last_ack + 1


class TestMetricsTableColumns:
    def test_custom_columns(self):
        from repro.experiments.config import paper_config
        from repro.experiments.results import ScenarioMetrics, metrics_table
        from repro.experiments.scenario import run_scenario

        metrics = ScenarioMetrics.from_result(
            run_scenario(paper_config(protocol="udp", n_clients=2, duration=3.0))
        )
        table = metrics_table([metrics], columns=("label", "mean_latency"))
        assert "mean_latency" in table

    def test_unknown_column_raises(self):
        from repro.experiments.config import paper_config
        from repro.experiments.results import ScenarioMetrics, metrics_table
        from repro.experiments.scenario import run_scenario

        metrics = ScenarioMetrics.from_result(
            run_scenario(paper_config(protocol="udp", n_clients=2, duration=3.0))
        )
        with pytest.raises(KeyError):
            metrics_table([metrics], columns=("no_such_metric",))


class TestTimeoutFastrtxRatio:
    def test_ratio_edge_cases(self):
        from repro.experiments.config import paper_config
        from repro.experiments.scenario import run_scenario

        result = run_scenario(paper_config(protocol="udp", n_clients=2, duration=3.0))
        assert result.timeout_dupack_ratio == 0.0
        assert result.timeout_fastrtx_ratio == 0.0
