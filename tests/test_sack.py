"""Unit tests for TCP SACK (sender scoreboard + sink blocks)."""

import pytest

from repro.net.packet import PacketFactory
from repro.sim.engine import Simulator
from repro.transport.sack import SackSender
from repro.transport.sink import TcpSink
from repro.transport.tcp_base import TcpParams

from tests.helpers import CaptureNode, TcpHarness


def make_harness(cwnd=8.0, **overrides):
    params = TcpParams(
        initial_cwnd=cwnd,
        initial_ssthresh=overrides.pop("ssthresh", 64.0),
        **overrides,
    )
    return TcpHarness(SackSender, {"params": params})


def deliver_sack(h, ackno, blocks):
    ack = h.factory.ack(
        flow_id=0,
        src="peer",
        dst=h.node.name,
        ackno=ackno,
        now=h.sim.now,
        sack_blocks=tuple(blocks),
    )
    h.sender.receive(ack)


class TestSackSink:
    def make_sink(self):
        sim = Simulator()
        node = CaptureNode(sim, "server")
        factory = PacketFactory()
        sink = TcpSink(sim, node, 0, "client", factory, sack=True)
        return node, factory, sink

    def send(self, sink, factory, seq):
        sink.receive(factory.data(0, "client", "server", 1000, seqno=seq, now=0.0))

    def test_no_blocks_when_in_order(self):
        node, factory, sink = self.make_sink()
        self.send(sink, factory, 0)
        assert node.transmitted[0].sack_blocks == ()

    def test_single_block_for_gap(self):
        node, factory, sink = self.make_sink()
        self.send(sink, factory, 0)
        self.send(sink, factory, 2)
        assert node.transmitted[-1].sack_blocks == ((2, 2),)

    def test_contiguous_runs_merge(self):
        node, factory, sink = self.make_sink()
        self.send(sink, factory, 0)
        for seq in (2, 3, 4):
            self.send(sink, factory, seq)
        assert node.transmitted[-1].sack_blocks == ((2, 4),)

    def test_latest_block_first(self):
        node, factory, sink = self.make_sink()
        self.send(sink, factory, 0)
        self.send(sink, factory, 5)
        self.send(sink, factory, 2)  # newest arrival: block (2,2) first
        assert node.transmitted[-1].sack_blocks[0] == (2, 2)

    def test_at_most_three_blocks(self):
        node, factory, sink = self.make_sink()
        self.send(sink, factory, 0)
        for seq in (2, 4, 6, 8, 10):
            self.send(sink, factory, seq)
        assert len(node.transmitted[-1].sack_blocks) == 3

    def test_blocks_cleared_after_hole_filled(self):
        node, factory, sink = self.make_sink()
        self.send(sink, factory, 0)
        self.send(sink, factory, 2)
        self.send(sink, factory, 1)
        assert node.transmitted[-1].sack_blocks == ()


class TestSackSender:
    def test_scoreboard_tracks_blocks(self):
        h = make_harness()
        h.give_app_packets(100)
        deliver_sack(h, 0, [(2, 4)])
        assert h.sender.scoreboard == {2, 3, 4}

    def test_scoreboard_pruned_by_cumulative_ack(self):
        h = make_harness()
        h.give_app_packets(100)
        deliver_sack(h, 0, [(2, 5)])
        deliver_sack(h, 3, [])
        assert h.sender.scoreboard == {4, 5}

    def test_recovery_retransmits_only_real_holes(self):
        h = make_harness(cwnd=8.0)
        h.give_app_packets(100)
        h.deliver_ack(0)
        # Packets 1 and 3 lost; 2 and 4.. SACKed via dup ACKs.
        deliver_sack(h, 0, [(2, 2)])
        deliver_sack(h, 0, [(4, 4), (2, 2)])
        deliver_sack(h, 0, [(5, 5), (4, 4), (2, 2)])
        assert h.sender.in_recovery
        sent = h.sent_seqnos()
        # Hole 1 retransmitted first; hole 3 goes out once another
        # duplicate ACK frees a pipe slot.
        assert sent.count(1) == 2
        deliver_sack(h, 0, [(6, 6), (5, 5), (4, 4)])
        sent = h.sent_seqnos()
        assert sent.count(3) == 2
        # SACKed packets are never retransmitted.
        assert sent.count(2) == 1
        assert sent.count(4) == 1

    def test_no_spurious_retransmit_above_highest_sack(self):
        h = make_harness(cwnd=8.0)
        h.give_app_packets(100)
        h.deliver_ack(0)
        for _ in range(3):
            deliver_sack(h, 0, [(2, 2)])
        sent = h.sent_seqnos()
        # Only packet 1 (below the SACKed 2) is a provable hole.
        for seq in range(3, 9):
            assert sent.count(seq) == 1

    def test_window_halved_on_entry(self):
        h = make_harness(cwnd=8.0)
        h.give_app_packets(100)
        h.deliver_ack(0)
        window_before = h.sender.window()
        for _ in range(3):
            deliver_sack(h, 0, [(2, 2)])
        assert h.sender.ssthresh == pytest.approx(window_before / 2.0)
        assert h.sender.cwnd == pytest.approx(h.sender.ssthresh)

    def test_full_ack_exits_recovery(self):
        h = make_harness(cwnd=8.0)
        h.give_app_packets(100)
        h.deliver_ack(0)
        for _ in range(3):
            deliver_sack(h, 0, [(2, 2)])
        assert h.sender.in_recovery
        h.deliver_ack(h.sender.maxseq)
        assert not h.sender.in_recovery
        assert h.sender.scoreboard == set()

    def test_partial_ack_stays_in_recovery(self):
        h = make_harness(cwnd=8.0)
        h.give_app_packets(100)
        h.deliver_ack(0)
        deliver_sack(h, 0, [(2, 2)])
        deliver_sack(h, 0, [(4, 4), (2, 2)])
        deliver_sack(h, 0, [(5, 5), (4, 4), (2, 2)])
        h.deliver_ack(2)  # partial
        assert h.sender.in_recovery

    def test_timeout_clears_scoreboard(self):
        h = make_harness(cwnd=8.0, initial_rto=1.0, min_rto=1.0)
        h.give_app_packets(100)
        deliver_sack(h, 0, [(2, 4)])
        h.advance(3.0)
        assert h.sender.stats.timeouts >= 1
        assert h.sender.scoreboard == set()
        assert h.sender.cwnd == 1.0

    def test_dupacks_open_pipe_for_new_data(self):
        h = make_harness(cwnd=4.0, advertised_window=100)
        h.give_app_packets(100)
        h.deliver_ack(0)
        for _ in range(3):
            deliver_sack(h, 0, [(2, 2)])
        highest = h.sender.maxseq
        # Each further dupack decrements pipe: room for new packets.
        for _ in range(5):
            deliver_sack(h, 0, [(2, 2)])
        assert h.sender.maxseq > highest

    def test_protocol_name(self):
        assert SackSender.protocol_name == "sack"


class TestSackEndToEnd:
    def test_scenario_runs_and_delivers(self):
        from repro.experiments.config import paper_config
        from repro.experiments.scenario import run_scenario

        result = run_scenario(
            paper_config(protocol="sack", n_clients=4, duration=8.0)
        )
        assert result.throughput_packets > 0

    def test_sack_fewer_timeouts_than_reno_under_congestion(self):
        from repro.experiments.config import paper_config
        from repro.experiments.scenario import run_scenario

        base = dict(n_clients=45, duration=30.0, seed=3)
        sack = run_scenario(paper_config(protocol="sack", **base))
        reno = run_scenario(paper_config(protocol="reno", **base))
        assert sack.timeouts < reno.timeouts
