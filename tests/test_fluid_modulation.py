"""Unit tests for the fluid approximations and the modulation report."""

import math

import pytest

from repro.core.fluid import (
    reno_fluid_throughput,
    reno_ideal_sawtooth_cov,
    reno_sawtooth_cov,
    reno_sawtooth_period,
    vegas_equilibrium_queue,
    vegas_equilibrium_window,
)
from repro.core.fluid_backend import FluidSolver
from repro.core.modulation import modulation_report


class TestRenoFluid:
    def test_square_root_law(self):
        # Halving the loss probability scales throughput by sqrt(2).
        t1 = reno_fluid_throughput(0.4, 0.02)
        t2 = reno_fluid_throughput(0.4, 0.01)
        assert t2 / t1 == pytest.approx(math.sqrt(2.0))

    def test_inverse_in_rtt(self):
        assert reno_fluid_throughput(0.2, 0.01) == pytest.approx(
            2 * reno_fluid_throughput(0.4, 0.01)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            reno_fluid_throughput(0.0, 0.01)
        with pytest.raises(ValueError):
            reno_fluid_throughput(0.4, 0.0)
        with pytest.raises(ValueError):
            reno_fluid_throughput(0.4, 1.5)

    def test_sawtooth_cov_value(self):
        # Uniform ramp on [W/2, W]: cov = 4 / (3*sqrt(48)) ~ 0.19245.
        assert reno_ideal_sawtooth_cov() == pytest.approx(0.19245, abs=1e-4)

    def test_deprecated_alias_matches_renamed_function(self):
        assert reno_sawtooth_cov() == reno_ideal_sawtooth_cov()

    def test_ideal_sawtooth_is_not_the_backend_cov(self):
        """The renamed closed form is valid only for one backlogged flow
        under perfectly periodic loss.  Cross-check against the
        mean-field backend: its measured aggregate rate c.o.v. for the
        paper's rate-limited many-flow scenario is a different quantity
        and must not be confused with (or asserted equal to) the ideal
        sawtooth constant."""
        solver = FluidSolver(
            protocol="reno", queue="fifo", n_flows=50,
            duration=30.0, warmup=5.0,
        )
        summary = solver.summarize(solver.run(), 0.404)
        measured = summary["cov"]
        ideal = reno_ideal_sawtooth_cov()
        assert measured > 0.0
        # Same order of magnitude (both describe AIMD burstiness)...
        assert 0.1 * ideal < measured < 10.0 * ideal
        # ...but not the same number: the aggregate c.o.v. depends on N,
        # queue coupling, and the sampling floor, none of which enter
        # the single-flow closed form.
        assert measured != pytest.approx(ideal, abs=1e-6)

    def test_sawtooth_period(self):
        # W/2 RTTs of additive increase.
        assert reno_sawtooth_period(0.4, 20.0) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            reno_sawtooth_period(-0.1, 20.0)


class TestVegasFluid:
    def test_window_bounds(self):
        low, high = vegas_equilibrium_window(6.25, 0.404, alpha=1.0, beta=3.0)
        assert low == pytest.approx(6.25 * 0.404 + 1.0)
        assert high == pytest.approx(6.25 * 0.404 + 3.0)
        assert low < high

    def test_queue_bounds_paper_example(self):
        # Section 3.4: 40 streams with (1, 3) keep 40..120 packets queued.
        assert vegas_equilibrium_queue(40) == (40.0, 120.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            vegas_equilibrium_window(0.0, 0.4)
        with pytest.raises(ValueError):
            vegas_equilibrium_queue(0)
        with pytest.raises(ValueError):
            vegas_equilibrium_window(1.0, 0.4, alpha=3.0, beta=1.0)


class TestModulationReport:
    def test_transparent_transport_ratio_one(self):
        counts = [3, 4, 5, 4, 3, 5]
        report = modulation_report(counts, counts)
        assert report.modulation_ratio == pytest.approx(1.0)
        assert report.excess_percent == pytest.approx(0.0)

    def test_burstier_output_ratio_above_one(self):
        offered = [4, 4, 4, 4]
        transported = [0, 8, 0, 8]
        report = modulation_report(offered, transported)
        assert report.modulation_ratio == float("inf")

    def test_excess_over_analytic(self):
        report = modulation_report([3, 5, 4, 4], [2, 6, 4, 4], analytic_cov=0.1)
        assert report.excess_over_analytic_percent == pytest.approx(
            (report.transported_cov / 0.1 - 1.0) * 100.0
        )

    def test_describe_includes_analytic_when_present(self):
        report = modulation_report([3, 5], [2, 6], analytic_cov=0.25)
        text = report.describe()
        assert "analytic" in text
        assert "modulation ratio" in text

    def test_describe_without_analytic(self):
        report = modulation_report([3, 5], [2, 6])
        assert "analytic" not in report.describe()

    def test_profiles_attached(self):
        report = modulation_report([3, 5, 4], [2, 6, 4])
        assert report.offered_profile.mean == pytest.approx(4.0)
        assert report.transported_profile.mean == pytest.approx(4.0)
