"""Property-based tests on the queue disciplines (RED, DRR) and SACK."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fq import DRRQueue
from repro.net.packet import PacketFactory
from repro.net.red import REDParams, REDQueue
from repro.transport.sack import SackSender
from repro.transport.tcp_base import TcpParams

from tests.helpers import TcpHarness


# ----------------------------------------------------------------------
# RED invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    min_th=st.floats(min_value=1.0, max_value=20.0),
    band=st.floats(min_value=1.0, max_value=30.0),
    max_p=st.floats(min_value=0.01, max_value=1.0),
    operations=st.lists(st.booleans(), min_size=1, max_size=300),
    seed=st.integers(min_value=0, max_value=100),
)
def test_red_capacity_and_conservation(min_th, band, max_p, operations, seed):
    capacity = 30
    queue = REDQueue(
        capacity,
        REDParams(min_th=min_th, max_th=min_th + band, max_p=max_p, weight=0.2),
        random.Random(seed),
    )
    factory = PacketFactory()
    now = 0.0
    seq = 0
    for is_enqueue in operations:
        now += 0.01
        if is_enqueue:
            queue.enqueue(factory.data(0, "a", "b", 1000, seqno=seq, now=now), now)
            seq += 1
        else:
            queue.dequeue(now)
        assert len(queue) <= capacity
        assert queue.avg >= 0.0
    stats = queue.stats
    assert stats.arrivals == stats.departures + stats.drops + len(queue)


# ----------------------------------------------------------------------
# DRR invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(min_value=2, max_value=15),
    quantum=st.integers(min_value=100, max_value=2000),
    operations=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=4)),
        min_size=1,
        max_size=200,
    ),
)
def test_drr_capacity_conservation_and_order(capacity, quantum, operations):
    queue = DRRQueue(capacity, quantum=quantum)
    factory = PacketFactory()
    seq_by_flow = {}
    served_by_flow = {}
    for is_enqueue, flow in operations:
        if is_enqueue:
            seq = seq_by_flow.get(flow, 0)
            seq_by_flow[flow] = seq + 1
            queue.enqueue(
                factory.data(flow, f"c{flow}", "s", 1000, seqno=seq, now=0.0), 0.0
            )
        else:
            packet = queue.dequeue(0.0)
            if packet is not None:
                served = served_by_flow.setdefault(packet.flow_id, [])
                served.append(packet.seqno)
        assert len(queue) <= capacity
    # Drain what's left.
    while True:
        packet = queue.dequeue(0.0)
        if packet is None:
            break
        served_by_flow.setdefault(packet.flow_id, []).append(packet.seqno)
    stats = queue.stats
    assert stats.arrivals == stats.departures + stats.drops
    # Per-flow FIFO order even under longest-queue drops.
    for flow, seqs in served_by_flow.items():
        assert seqs == sorted(seqs)


@settings(max_examples=30, deadline=None)
@given(
    n_per_flow=st.integers(min_value=1, max_value=10),
    n_flows=st.integers(min_value=2, max_value=5),
)
def test_drr_equal_flows_get_equal_service(n_per_flow, n_flows):
    queue = DRRQueue(1000, quantum=1000)
    factory = PacketFactory()
    for flow in range(n_flows):
        for seq in range(n_per_flow):
            queue.enqueue(
                factory.data(flow, f"c{flow}", "s", 1000, seqno=seq, now=0.0), 0.0
            )
    # After n_flows * k dequeues, every flow has been served exactly k times.
    k = n_per_flow // 2 + 1
    served = {}
    for _ in range(min(n_flows * k, n_flows * n_per_flow)):
        packet = queue.dequeue(0.0)
        served[packet.flow_id] = served.get(packet.flow_id, 0) + 1
    counts = set(served.values())
    assert max(counts) - min(counts) <= 1


# ----------------------------------------------------------------------
# SACK invariants under random ACK/SACK streams
# ----------------------------------------------------------------------
sack_event = st.one_of(
    st.tuples(st.just("app"), st.integers(min_value=1, max_value=20)),
    st.tuples(st.just("ack"), st.integers(min_value=-1, max_value=8)),
    st.tuples(st.just("sack"), st.integers(min_value=1, max_value=10)),
    st.tuples(st.just("wait"), st.floats(min_value=0.0, max_value=2.0)),
)


@settings(max_examples=40, deadline=None)
@given(script=st.lists(sack_event, min_size=1, max_size=60))
def test_sack_sender_invariants(script):
    h = TcpHarness(
        SackSender,
        {"params": TcpParams(initial_cwnd=2.0, min_rto=0.5, initial_rto=1.0)},
    )
    rng = random.Random(1234)
    for kind, value in script:
        if kind == "app":
            h.give_app_packets(value)
        elif kind == "wait":
            h.advance(value)
        elif kind == "ack":
            target = min(h.sender.last_ack + value, h.sender.maxseq)
            if target >= 0:
                h.deliver_ack(target)
        else:  # sack: a dup ACK carrying a random plausible block
            if h.sender.maxseq <= h.sender.last_ack + 1:
                continue
            lo = rng.randint(h.sender.last_ack + 1, h.sender.maxseq)
            hi = min(h.sender.maxseq, lo + value)
            ack = h.factory.ack(
                flow_id=0,
                src="peer",
                dst=h.node.name,
                ackno=h.sender.last_ack,
                now=h.sim.now,
                sack_blocks=((lo, hi),),
            )
            h.sender.receive(ack)
        sender = h.sender
        assert 1.0 <= sender.cwnd <= sender.params.advertised_window
        assert sender.pipe >= 0
        # Scoreboard only holds unACKed, previously-sent sequences.
        assert all(
            sender.last_ack < seq for seq in sender.scoreboard
        )
        assert sender.t_seqno <= sender.app_total
