"""Unit tests for the shared TCP sender machinery (via RenoSender)."""

import pytest

from repro.transport.reno import RenoSender
from repro.transport.tcp_base import TcpParams

from tests.helpers import TcpHarness


def make_harness(**param_overrides):
    params = TcpParams(**param_overrides)
    return TcpHarness(RenoSender, {"params": params})


class TestWindowGating:
    def test_initial_cwnd_sends_one_packet(self):
        h = make_harness()
        h.give_app_packets(10)
        assert h.sent_seqnos() == [0]

    def test_no_data_no_send(self):
        h = make_harness()
        assert h.sent_seqnos() == []

    def test_app_limited_sends_everything_within_window(self):
        h = make_harness(initial_cwnd=10.0)
        h.give_app_packets(3)
        assert h.sent_seqnos() == [0, 1, 2]

    def test_window_limits_outstanding(self):
        h = make_harness(initial_cwnd=4.0)
        h.give_app_packets(100)
        assert h.sent_seqnos() == [0, 1, 2, 3]
        assert h.sender.outstanding == 4

    def test_advertised_window_caps_cwnd(self):
        h = make_harness(initial_cwnd=50.0, advertised_window=6)
        h.give_app_packets(100)
        assert len(h.sent_seqnos()) == 6

    def test_ack_slides_window(self):
        h = make_harness(initial_cwnd=2.0, initial_ssthresh=2.0)
        h.give_app_packets(100)
        h.deliver_ack(0)
        # cwnd opened by congestion avoidance; at least one more packet out.
        assert h.sender.last_ack == 0
        assert max(h.sent_seqnos()) >= 2

    def test_send_buffer_backlog(self):
        h = make_harness(initial_cwnd=2.0)
        h.give_app_packets(10)
        assert h.sender.send_buffer_backlog == 8


class TestSlowStartAndCongestionAvoidance:
    def test_slow_start_increments_cwnd_per_ack(self):
        h = make_harness()
        h.give_app_packets(100)
        assert h.sender.cwnd == 1.0
        h.deliver_ack(0)
        assert h.sender.cwnd == 2.0
        h.deliver_ack(1)
        h.deliver_ack(2)
        assert h.sender.cwnd == 4.0

    def test_congestion_avoidance_linear(self):
        h = make_harness(initial_cwnd=4.0, initial_ssthresh=2.0)
        h.give_app_packets(100)
        h.deliver_ack(0)
        assert h.sender.cwnd == pytest.approx(4.25)
        h.deliver_ack(1)
        assert h.sender.cwnd == pytest.approx(4.25 + 1 / 4.25)

    def test_cwnd_never_exceeds_advertised_window(self):
        h = make_harness(advertised_window=5)
        h.give_app_packets(1000)
        for seq in range(100):
            h.deliver_ack(seq)
        assert h.sender.cwnd <= 5.0


class TestRttEstimation:
    def test_first_sample_initializes_srtt(self):
        h = make_harness()
        h.give_app_packets(10)
        h.advance(0.5)
        h.deliver_ack(0)
        assert h.sender.srtt == pytest.approx(0.5)
        assert h.sender.rttvar == pytest.approx(0.25)

    def test_jacobson_update(self):
        h = make_harness()
        h.give_app_packets(100)
        h.advance(0.4)
        h.deliver_ack(0)  # srtt=0.4, rttvar=0.2
        # next timed packet is the first one sent after the ack
        h.advance(0.8)  # its RTT sample = 0.8
        h.deliver_ack(h.sender.maxseq)
        # err = 0.8 - 0.4 = 0.4; srtt = 0.4 + 0.4/8 = 0.45
        assert h.sender.srtt == pytest.approx(0.45)
        # rttvar = 0.2 + (0.4 - 0.2)/4 = 0.25
        assert h.sender.rttvar == pytest.approx(0.25)

    def test_rto_floor_and_ceiling(self):
        h = make_harness(min_rto=1.0, max_rto=4.0)
        h.give_app_packets(10)
        assert h.sender.rto >= 1.0
        h.sender.backoff = 1000.0
        assert h.sender.rto == 4.0

    def test_rto_uses_tick_granularity(self):
        h = make_harness(tick=0.5, min_rto=0.1)
        h.give_app_packets(10)
        h.advance(0.3)
        h.deliver_ack(0)
        # srtt + 4*rttvar = 0.3 + 0.6 = 0.9, rounded up to 1.0.
        assert h.sender.rto == pytest.approx(1.0)

    def test_karn_no_sample_from_retransmission(self):
        h = make_harness(initial_rto=1.0, min_rto=1.0)
        h.give_app_packets(1)
        h.advance(1.5)  # timeout fires, packet 0 retransmitted
        assert h.sender.stats.timeouts == 1
        samples_before = h.sender.stats.rtt_samples
        h.deliver_ack(0)  # ACK of a retransmitted packet
        assert h.sender.stats.rtt_samples == samples_before

    def test_backoff_reset_on_new_sample(self):
        h = make_harness(initial_rto=1.0, min_rto=0.5)
        h.give_app_packets(2)
        h.advance(1.5)  # timeout doubles backoff
        assert h.sender.backoff == 2.0
        h.advance(0.2)
        h.deliver_ack(h.sender.maxseq)
        h.give_app_packets(1)  # untimed? new packet gets timed
        h.advance(0.3)
        h.deliver_ack(h.sender.maxseq)
        assert h.sender.backoff == 1.0


class TestTimeout:
    def test_timeout_collapses_window_and_retransmits(self):
        h = make_harness(initial_cwnd=4.0, initial_rto=1.0)
        h.give_app_packets(10)
        assert h.sent_seqnos() == [0, 1, 2, 3]
        h.advance(1.5)
        assert h.sender.stats.timeouts == 1
        assert h.sender.cwnd == 1.0
        # Go-back-N: packet 0 retransmitted.
        assert h.sent_seqnos()[-1] == 0
        assert h.transmitted[-1].is_retransmit

    def test_timeout_halves_ssthresh(self):
        h = make_harness(initial_cwnd=8.0, initial_rto=1.0)
        h.give_app_packets(100)
        h.advance(1.5)
        assert h.sender.ssthresh == 4.0

    def test_ssthresh_floor_of_two(self):
        h = make_harness(initial_cwnd=1.0, initial_rto=1.0)
        h.give_app_packets(10)
        h.advance(1.5)
        assert h.sender.ssthresh == 2.0

    def test_repeated_timeouts_backoff_exponentially(self):
        h = make_harness(initial_rto=1.0, min_rto=1.0)
        h.give_app_packets(1)
        h.advance(1.5)
        assert h.sender.backoff == 2.0
        h.advance(2.5)
        assert h.sender.backoff == 4.0

    def test_backoff_capped(self):
        h = make_harness(initial_rto=0.1, min_rto=0.1, max_backoff=8.0)
        h.give_app_packets(1)
        h.advance(100.0)
        assert h.sender.backoff == 8.0

    def test_timer_cancelled_when_all_acked(self):
        h = make_harness()
        h.give_app_packets(1)
        h.deliver_ack(0)
        assert not h.sender.rtx_timer.pending
        h.advance(100.0)
        assert h.sender.stats.timeouts == 0

    def test_timer_restarts_while_outstanding(self):
        h = make_harness(initial_cwnd=3.0)
        h.give_app_packets(5)
        h.deliver_ack(0)
        assert h.sender.rtx_timer.pending


class TestAckProcessing:
    def test_stale_acks_ignored(self):
        h = make_harness(initial_cwnd=5.0)
        h.give_app_packets(10)
        h.deliver_ack(2)
        cwnd = h.sender.cwnd
        h.deliver_ack(1)  # stale
        assert h.sender.cwnd == cwnd
        assert h.sender.last_ack == 2

    def test_dupack_counted_only_with_outstanding_data(self):
        h = make_harness()
        h.give_app_packets(1)
        h.deliver_ack(0)  # nothing outstanding now
        h.deliver_ack(0)
        assert h.sender.dupacks == 0

    def test_dupacks_reset_on_new_ack(self):
        h = make_harness(initial_cwnd=5.0)
        h.give_app_packets(10)
        h.deliver_ack(0)
        h.deliver_ack(0)
        h.deliver_ack(0)
        assert h.sender.dupacks == 2
        h.deliver_ack(1)
        assert h.sender.dupacks == 0

    def test_cumulative_ack_advances_t_seqno(self):
        h = make_harness(initial_cwnd=1.0, initial_rto=1.0)
        h.give_app_packets(5)
        h.advance(1.5)  # timeout rewinds t_seqno to 0
        h.deliver_ack(3)  # receiver had buffered 1-3
        assert h.sender.t_seqno > 3

    def test_data_packets_ignored_by_sender(self):
        h = make_harness()
        h.give_app_packets(1)
        data = h.factory.data(0, "x", "capture", 1000, seqno=5, now=0.0)
        h.sender.receive(data)
        assert h.sender.last_ack == -1


class TestCwndTracing:
    def test_trace_records_changes(self):
        h = TcpHarness(RenoSender, {"trace_cwnd": True})
        h.give_app_packets(100)
        h.deliver_ack(0)
        h.deliver_ack(1)
        values = [v for _, v in h.sender.cwnd_log]
        assert values == [1.0, 2.0, 3.0]

    def test_no_trace_by_default(self):
        h = make_harness()
        h.give_app_packets(10)
        h.deliver_ack(0)
        assert h.sender.cwnd_log == []


class TestParamsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(packet_size=0),
            dict(advertised_window=0),
            dict(min_rto=0.0),
            dict(min_rto=2.0, max_rto=1.0),
            dict(tick=0.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TcpParams(**kwargs).validate()
