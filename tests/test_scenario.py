"""Integration tests: full scenario runs on small configurations."""

import math

import numpy as np
import pytest

from repro.experiments.config import paper_config
from repro.experiments.scenario import Scenario, run_scenario


def small_config(**overrides):
    defaults = dict(n_clients=4, duration=8.0, seed=3)
    defaults.update(overrides)
    return paper_config(**defaults)


@pytest.fixture(scope="module")
def udp_result():
    return run_scenario(small_config(protocol="udp"))


@pytest.fixture(scope="module")
def reno_result():
    return run_scenario(small_config(protocol="reno"))


class TestUdpScenario:
    def test_all_generated_packets_accounted_for(self, udp_result):
        generated = sum(f.app_packets for f in udp_result.per_flow)
        delivered = udp_result.throughput_packets
        dropped = udp_result.gateway_drops
        # UDP: generated = delivered + dropped + still in transit/queued.
        in_flight = generated - delivered - dropped
        assert 0 <= in_flight <= 10

    def test_cov_close_to_analytic(self, udp_result):
        assert udp_result.cov == pytest.approx(udp_result.analytic_cov, rel=0.3)

    def test_no_tcp_machinery(self, udp_result):
        assert udp_result.timeouts == 0
        assert udp_result.fast_retransmits == 0
        assert udp_result.dupacks == 0

    def test_offered_traffic_recorded(self, udp_result):
        offered = sum(f.app_packets for f in udp_result.per_flow)
        binned = udp_result.offered_bin_counts.sum()
        # The count series covers whole bins only, so it may miss the
        # final partial window.
        assert binned <= offered
        assert binned == pytest.approx(offered, rel=0.1)
        assert not math.isnan(udp_result.offered_cov)

    def test_modulation_report_attached(self, udp_result):
        report = udp_result.modulation
        assert report is not None
        # UDP barely modulates on an uncongested path.
        assert report.modulation_ratio == pytest.approx(1.0, abs=0.25)


class TestRenoScenario:
    def test_in_order_delivery_progress(self, reno_result):
        for flow in reno_result.per_flow:
            assert 0 < flow.delivered_unique <= flow.app_packets

    def test_conservation_at_gateway(self, reno_result):
        stats = reno_result
        assert stats.gateway_arrivals >= stats.gateway_drops
        # Everything delivered to the server crossed the gateway.
        assert stats.throughput_packets <= stats.gateway_arrivals

    def test_bin_counts_sum_matches_gateway_data_arrivals(self, reno_result):
        # The monitor counts DATA arrivals at the bottleneck port; the
        # binned series covers whole bins only (final partial window cut).
        binned = reno_result.bin_counts.sum()
        assert binned <= reno_result.gateway_arrivals
        assert binned == pytest.approx(reno_result.gateway_arrivals, rel=0.1)

    def test_result_fields_finite(self, reno_result):
        assert np.isfinite(reno_result.cov)
        assert np.isfinite(reno_result.loss_percent)
        assert 0.0 <= reno_result.utilization <= 1.05

    def test_per_flow_count(self, reno_result):
        assert len(reno_result.per_flow) == reno_result.config.n_clients


class TestDeterminism:
    def test_same_seed_identical_results(self):
        a = run_scenario(small_config(protocol="reno", seed=11))
        b = run_scenario(small_config(protocol="reno", seed=11))
        assert a.cov == b.cov
        assert a.throughput_packets == b.throughput_packets
        assert list(a.bin_counts) == list(b.bin_counts)
        assert a.events_executed == b.events_executed

    def test_different_seed_different_results(self):
        a = run_scenario(small_config(protocol="reno", seed=1))
        b = run_scenario(small_config(protocol="reno", seed=2))
        assert list(a.bin_counts) != list(b.bin_counts)

    def test_queue_discipline_does_not_change_offered_traffic(self):
        fifo = run_scenario(small_config(protocol="reno", queue="fifo"))
        red = run_scenario(small_config(protocol="reno", queue="red"))
        assert list(fifo.offered_bin_counts) == list(red.offered_bin_counts)


class TestTracing:
    def test_cwnd_traces_only_for_requested_flows(self):
        result = run_scenario(
            small_config(protocol="reno", trace_cwnd_flows=(0, 2))
        )
        assert set(result.cwnd_traces) == {0, 2}
        for trace in result.cwnd_traces.values():
            times = [t for t, _ in trace]
            assert times == sorted(times)
            assert all(1.0 <= v <= 20.0 for _, v in trace)

    def test_no_traces_by_default(self, reno_result):
        assert reno_result.cwnd_traces == {}


class TestQueueDisciplines:
    @pytest.mark.parametrize("queue", ["fifo", "red", "ared"])
    def test_all_disciplines_run(self, queue):
        result = run_scenario(small_config(protocol="reno", queue=queue))
        assert result.throughput_packets > 0

    def test_red_scenario_uses_red_queue(self):
        from repro.net.red import REDQueue

        scenario = Scenario(small_config(protocol="reno", queue="red"))
        assert isinstance(scenario.network.bottleneck_queue, REDQueue)

    def test_ecn_scenario_marks_instead_of_dropping(self):
        # Saturate: many clients, ECN Reno over marking RED.
        result = run_scenario(
            small_config(protocol="reno_ecn", queue="red", n_clients=30, duration=20.0)
        )
        assert result.red_marks > 0


class TestProtocols:
    @pytest.mark.parametrize(
        "protocol", ["udp", "tahoe", "reno", "reno_delack", "newreno", "vegas"]
    )
    def test_every_protocol_delivers(self, protocol):
        result = run_scenario(small_config(protocol=protocol))
        assert result.throughput_packets > 0

    def test_delack_sends_fewer_acks(self):
        plain = Scenario(small_config(protocol="reno"))
        plain_result = plain.run()
        delack = Scenario(small_config(protocol="reno_delack"))
        delack_result = delack.run()
        plain_acks = sum(s.acks_sent for s in plain.sinks)
        delack_acks = sum(s.acks_sent for s in delack.sinks)
        assert delack_acks < plain_acks
        assert delack_result.throughput_packets > 0


class TestTrafficModels:
    def test_cbr_smoother_than_poisson(self):
        cbr = run_scenario(small_config(protocol="udp", traffic="cbr"))
        poisson = run_scenario(small_config(protocol="udp", traffic="poisson"))
        assert cbr.cov < poisson.cov

    def test_pareto_onoff_burstier_than_poisson(self):
        onoff = run_scenario(
            small_config(protocol="udp", traffic="pareto_onoff", duration=20.0)
        )
        poisson = run_scenario(
            small_config(protocol="udp", traffic="poisson", duration=20.0)
        )
        assert onoff.cov > poisson.cov

    def test_analytic_cov_only_for_poisson(self):
        onoff = run_scenario(small_config(protocol="udp", traffic="pareto_onoff"))
        assert math.isnan(onoff.analytic_cov)
        assert onoff.modulation is not None
        assert onoff.modulation.analytic_cov is None

    def test_unknown_traffic_rejected(self):
        with pytest.raises(ValueError):
            run_scenario(small_config(traffic="fractal"))


class TestWarmup:
    def test_warmup_discards_initial_bins(self):
        full = run_scenario(small_config(protocol="udp"))
        warm = run_scenario(small_config(protocol="udp", warmup=4.0))
        assert len(warm.bin_counts) < len(full.bin_counts)
        assert warm.offered_bin_counts.sum() < full.offered_bin_counts.sum()


class TestCongestedIntegration:
    def test_heavy_congestion_produces_losses_and_recoveries(self):
        result = run_scenario(
            paper_config(protocol="reno", n_clients=45, duration=25.0, seed=5)
        )
        assert result.loss_percent > 0.5
        assert result.timeouts > 0
        assert result.gateway_drops > 0
        assert result.utilization > 0.7

    def test_reno_burstier_than_udp_under_congestion(self):
        reno = run_scenario(
            paper_config(protocol="reno", n_clients=45, duration=25.0, seed=5)
        )
        udp = run_scenario(
            paper_config(protocol="udp", n_clients=45, duration=25.0, seed=5)
        )
        assert reno.cov > udp.cov
