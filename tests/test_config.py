"""Unit tests for scenario configuration (Table 1)."""

import dataclasses

import pytest

from repro.experiments.config import (
    PROTOCOLS,
    QUEUES,
    ScenarioConfig,
    paper_config,
    table1_rows,
)


def test_defaults_are_the_reconstructed_table1():
    config = ScenarioConfig()
    assert config.client_rate_bps == 10e6
    assert config.bottleneck_rate_bps == 3e6
    assert config.buffer_capacity == 50
    assert config.packet_size == 1000
    assert config.mean_gap == 0.1
    assert config.duration == 200.0
    assert config.advertised_window == 20
    assert (config.vegas_alpha, config.vegas_beta, config.vegas_gamma) == (1, 3, 1)
    assert (config.red_min_th, config.red_max_th) == (10.0, 40.0)


def test_rtt_prop_and_bin_width():
    config = ScenarioConfig(client_delay=0.002, bottleneck_delay=0.2)
    assert config.rtt_prop == pytest.approx(0.404)
    assert config.effective_bin_width == pytest.approx(0.404)
    assert config.with_(bin_width=1.0).effective_bin_width == 1.0


def test_derived_load_quantities():
    config = ScenarioConfig()
    assert config.per_client_rate == pytest.approx(10.0)
    assert config.bottleneck_capacity_pps == pytest.approx(375.0)
    assert config.congestion_knee_clients == pytest.approx(37.5)
    assert config.offered_load_bps == pytest.approx(
        config.n_clients * 80_000.0
    )


@pytest.mark.parametrize(
    "protocol,queue,expected",
    [
        ("udp", "fifo", "UDP"),
        ("reno", "fifo", "Reno"),
        ("reno", "red", "Reno/RED"),
        ("vegas", "red", "Vegas/RED"),
        ("reno_delack", "fifo", "Reno/DelayAck"),
        ("vegas", "ared", "Vegas/ARED"),
    ],
)
def test_labels(protocol, queue, expected):
    assert ScenarioConfig(protocol=protocol, queue=queue).label == expected


@pytest.mark.parametrize(
    "overrides",
    [
        dict(protocol="quic"),
        dict(queue="codel"),
        dict(n_clients=0),
        dict(duration=0.0),
        dict(warmup=300.0),
        dict(mean_gap=0.0),
        dict(protocol="reno_ecn", queue="fifo"),
    ],
)
def test_validate_rejects(overrides):
    with pytest.raises(ValueError):
        ScenarioConfig(**overrides).validate()


def test_all_declared_protocol_queue_combinations_validate():
    for protocol in PROTOCOLS:
        for queue in QUEUES:
            if protocol == "reno_ecn" and queue == "fifo":
                continue
            ScenarioConfig(protocol=protocol, queue=queue).validate()


def test_with_creates_modified_copy():
    base = ScenarioConfig()
    other = base.with_(n_clients=40, protocol="vegas")
    assert other.n_clients == 40
    assert other.protocol == "vegas"
    assert base.n_clients == 20  # original untouched


def test_paper_config_overrides():
    config = paper_config(duration=10.0, seed=7)
    assert config.duration == 10.0
    assert config.seed == 7


def test_config_is_picklable_dataclass():
    import pickle

    config = ScenarioConfig()
    assert dataclasses.is_dataclass(config)
    assert pickle.loads(pickle.dumps(config)) == config


def test_table1_rows_cover_every_paper_parameter():
    rows = dict(table1_rows())
    assert rows["gateway buffer size (B)"] == "50 packets"
    assert rows["packet size"] == "1000 bytes"
    assert rows["RED max_th"] == "40 packets"
    assert rows["TCP Vegas beta"] == "3"
    assert len(rows) == 14


class TestDigestCompleteness:
    # The only fields allowed to be missing from the content digest:
    # pure observation knobs that can never change a physics-derived
    # ScenarioMetrics value, plus the engine scheduler (both schedulers
    # execute the identical event sequence -- enforced by
    # tests/test_engine_differential.py -- so results cached under one
    # are valid under the other).  Anything else added to ScenarioConfig
    # MUST land in the digest automatically, or cached results would
    # silently alias.  (The obs_* knobs do affect the obs_* sample
    # counters, but those are bookkeeping about the recording itself.)
    OBSERVATION_ONLY = {
        "trace_cwnd_flows",
        "obs_trace",
        "obs_profile",
        "obs_queue_sample_interval",
        "scheduler",
        "engine",
        "forensics",
        "forensics_window",
        "forensics_top_k",
        "forensics_sketch_capacity",
        "forensics_burst_enter",
        "forensics_burst_exit",
        "forensics_sync_fraction",
        "forensics_sketch",
    }

    def test_digest_covers_every_physics_field(self):
        config = ScenarioConfig()
        payload = config.digest_payload()
        field_names = {spec.name for spec in dataclasses.fields(config)}
        covered = set(payload) - {"schema_version"}
        assert covered == field_names - self.OBSERVATION_ONLY
        assert "schema_version" in payload

    def test_exclusion_list_matches_declared_observation_fields(self):
        from repro.experiments.config import _DIGEST_EXCLUDED_FIELDS

        assert set(_DIGEST_EXCLUDED_FIELDS) == self.OBSERVATION_ONLY

    def test_every_workload_knob_changes_the_digest(self):
        base = ScenarioConfig()
        for overrides in [
            {"workload": "rpc"},
            {"rpc_request_packets": 5},
            {"rpc_response_packets": 5},
            {"rpc_think_time": 0.5},
            {"rpc_outstanding": 4},
            {"bsp_shuffle_packets": 7},
            {"bsp_compute_time": 0.9},
            {"bulk_job_packets": 11},
            {"bulk_job_gap": 2.5},
            {"workload_timeout": 12.0},
        ]:
            assert base.with_(**overrides).config_digest() != base.config_digest(), (
                overrides
            )
