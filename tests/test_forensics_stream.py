"""Streaming forensics, sweep-wide burstiness columns, live dashboard.

The load-bearing guarantee under test: a streamed forensics run must
write records that are **byte-identical to a prefix** of what offline
mode would emit at any checkpoint, and the final streamed file must be
byte-identical to the whole offline emission -- while keeping bounded
state (windows and episodes are dropped once flushed).  On top of that:
the sweep-grade ``forensic_*`` columns through metrics, the run log and
the figures; the count-min sketch variant; and the ``sweeplog
--follow`` dashboard.
"""

from __future__ import annotations

import io
import json
import math
import random

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.config import paper_config
from repro.experiments.figures import (
    figure2_cov,
    figure_forensics_sweep,
    run_forensics_sweep,
)
from repro.experiments.results import ScenarioMetrics
from repro.experiments.runlog import (
    RunLog,
    RunLogTail,
    follow_runlog,
    read_runlog,
    render_runlog_summary,
    summarize_runlog,
)
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.sweep import run_many
from repro.forensics import (
    CountMinSketch,
    IncrementalSyncClusterer,
    LossSyncDetector,
    SpaceSavingSketch,
    offline_stream_lines,
    recall_at_k,
)
from repro.forensics.windows import FlowShare

BASE = dict(n_clients=40, duration=16.0, seed=7)


@pytest.fixture(scope="module")
def offline_result():
    """The seeded droptail dumbbell, offline forensics."""
    return run_scenario(paper_config(**BASE, forensics=True))


@pytest.fixture(scope="module")
def streamed():
    """The same scenario streamed: (text, stream report, scenario)."""
    scenario = Scenario(paper_config(**BASE, forensics=True))
    sink = io.StringIO()
    scenario.attach_forensics_stream(sink, interval=1.0)
    result = scenario.run()
    return sink.getvalue(), result.forensics, scenario


# ----------------------------------------------------------------------
# Prefix consistency: the tentpole differential
# ----------------------------------------------------------------------
class TestPrefixConsistency:
    def test_final_stream_is_byte_identical_to_offline(
        self, offline_result, streamed
    ):
        text, _, _ = streamed
        offline = "".join(
            line + "\n" for line in offline_stream_lines(offline_result.forensics)
        )
        assert text == offline

    def test_midrun_stream_is_a_prefix_of_offline(self, offline_result):
        scenario = Scenario(paper_config(**BASE, forensics=True))
        sink = io.StringIO()
        scenario.attach_forensics_stream(sink, interval=1.0)
        scenario.sim.run(until=8.0)
        midway = sink.getvalue()
        offline = "".join(
            line + "\n" for line in offline_stream_lines(offline_result.forensics)
        )
        # The checkpoint must have flushed real content by mid-run, all
        # of it an exact byte prefix of the offline emission.
        assert midway
        assert len(midway) < len(offline)
        assert offline.startswith(midway)
        assert any('"type": "burst"' in line for line in midway.splitlines())
        # Finishing the run completes the identical file.
        scenario.run()
        assert sink.getvalue() == offline

    def test_summary_scalars_match_offline_exactly(
        self, offline_result, streamed
    ):
        _, stream_report, _ = streamed
        offline = offline_result.forensics
        assert stream_report.n_bursts == offline.n_bursts
        assert stream_report.n_sync_events == offline.n_sync_events
        assert stream_report.n_sync_linked == offline.n_sync_linked
        assert stream_report.records_written > 0
        # Float summaries fold in emission order, so they must be
        # bit-identical, not approximately equal.
        for name in (
            "precision",
            "burst_time_fraction",
            "burst_rate",
            "burst_duration_mean",
            "sync_linked_fraction",
            "top_flow_share",
        ):
            assert getattr(stream_report, name) == getattr(offline, name), name
        assert stream_report.burst_drops == offline.burst_drops
        assert stream_report.top_flow == offline.top_flow

    def test_streaming_keeps_bounded_state(self, streamed):
        _, _, scenario = streamed
        probe = scenario.forensics_probe
        # Every window was flushed and dropped; no episode backlog.
        assert probe.exact.windows() == []
        assert probe.sketch.windows() == []
        assert probe.bursts.episodes == []

    def test_streaming_does_not_change_physics(self, offline_result, streamed):
        _, _, scenario = streamed
        streamed_metrics = ScenarioMetrics.from_result(scenario._collect())
        offline_metrics = ScenarioMetrics.from_result(offline_result)
        # NaN-tolerant dataclass equality covers every simulated
        # outcome, including perf_events_executed.
        assert streamed_metrics == offline_metrics

    def test_stream_requires_forensics_and_attaches_once(self):
        scenario = Scenario(paper_config(n_clients=4, duration=1.0))
        with pytest.raises(ValueError, match="forensics"):
            scenario.attach_forensics_stream(io.StringIO(), interval=1.0)
        scenario = Scenario(
            paper_config(n_clients=4, duration=1.0, forensics=True)
        )
        scenario.attach_forensics_stream(io.StringIO(), interval=1.0)
        with pytest.raises(RuntimeError, match="already"):
            scenario.attach_forensics_stream(io.StringIO(), interval=1.0)


# ----------------------------------------------------------------------
# Incremental sync clustering: differential vs the batch detector
# ----------------------------------------------------------------------
class TestIncrementalClusterer:
    def _random_cuts(self, rng, n_flows):
        t = 0.0
        cuts = []
        for _ in range(rng.randrange(5, 60)):
            t += rng.expovariate(2.0)
            cuts.append((round(t, 4), rng.randrange(n_flows)))
        return cuts

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_batch_finalize(self, seed):
        rng = random.Random(seed)
        n_flows, window = 12, 0.4
        cuts = self._random_cuts(rng, n_flows)

        batch = LossSyncDetector(n_flows, window, fraction=0.25)
        for t, flow in cuts:
            batch.on_loss(flow, t)
        expected = batch.finalize()

        online = LossSyncDetector(n_flows, window, fraction=0.25)
        clusterer = IncrementalSyncClusterer(online)
        committed = []
        safe = 0.0
        for t, flow in cuts:
            online.on_loss(flow, t)
            if rng.random() < 0.3:
                safe = max(safe, t - rng.uniform(0.0, 3.0 * window))
                committed.extend(clusterer.commit(safe))
        committed.extend(clusterer.commit(math.inf))
        assert committed == expected
        assert clusterer.min_buffered_time == math.inf

    def test_commit_is_conservative_before_safe_horizon(self):
        online = LossSyncDetector(8, 1.0, fraction=0.25)
        clusterer = IncrementalSyncClusterer(online)
        for flow in range(4):
            online.on_loss(flow, 5.0 + 0.1 * flow)
        # Not final until safe passes t_last + 2*window.
        assert clusterer.commit(7.0) == []
        events = clusterer.commit(7.4)
        assert len(events) == 1
        assert events[0].n_flows == 4


# ----------------------------------------------------------------------
# Count-min conservative update
# ----------------------------------------------------------------------
class TestCountMinSketch:
    def test_estimates_only_overshoot(self):
        sketch = CountMinSketch(capacity=8, depth=2, width=8)
        truth = {}
        rng = random.Random(1)
        for _ in range(400):
            key = rng.randrange(40)
            weight = rng.randrange(1, 1000)
            sketch.update(key, weight)
            truth[key] = truth.get(key, 0) + weight
        for key, true_weight in truth.items():
            assert sketch.estimate(key) >= true_weight
        assert sketch.total_weight == sum(truth.values())

    def test_exact_when_no_collisions(self):
        sketch = CountMinSketch(capacity=4, depth=2, width=64)
        sketch.update(3, 100, count=2)
        sketch.update(3, 50, count=1)
        assert sketch.estimate(3) == 150
        assert sketch._count_estimate(3) == 3
        assert sketch.error(3) == 0
        assert sketch.guaranteed(3) == 150

    def test_tracked_set_is_capped(self):
        sketch = CountMinSketch(capacity=3, depth=1, width=128)
        for key in range(10):
            sketch.update(key, (key + 1) * 10)
        assert len(sketch) == 3
        top = [key for key, _, _, _ in sketch.top_k(3)]
        assert top == [9, 8, 7]  # heaviest survive eviction churn

    def test_memory_words_model(self):
        assert CountMinSketch(capacity=40, depth=2, width=48).memory_words() \
            == 2 * 2 * 48 + 40
        assert SpaceSavingSketch(58).memory_words() == 4 * 58
        # The benchmark's equal-memory gate point really is equal.
        assert CountMinSketch(capacity=40, depth=2, width=48).memory_words() \
            == SpaceSavingSketch(58).memory_words()

    def test_width_defaults_to_capacity_over_depth(self):
        sketch = CountMinSketch(capacity=20, depth=2)
        assert sketch.width == 10
        with pytest.raises(ValueError):
            CountMinSketch(capacity=0)
        with pytest.raises(ValueError):
            CountMinSketch(capacity=8, depth=5)

    def test_recall_at_k_is_strict(self):
        exact = [
            FlowShare(flow_id=i, packets=1, bytes=100 - i, share=0.1)
            for i in range(5)
        ]
        approx = exact[:3] + [
            FlowShare(flow_id=99, packets=1, bytes=1, share=0.0),
            FlowShare(flow_id=98, packets=1, bytes=1, share=0.0),
        ]
        assert recall_at_k(exact, approx, 5) == pytest.approx(0.6)
        assert recall_at_k([], approx, 5) == 1.0

    def test_countmin_selectable_via_config(self):
        config = paper_config(
            n_clients=8, duration=2.0, seed=3, forensics=True,
            forensics_sketch="countmin",
        )
        scenario = Scenario(config)
        assert scenario.forensics_probe.sketch.factory is CountMinSketch
        result = scenario.run()
        assert result.forensics is not None

    def test_sketch_knob_is_digest_excluded_but_validated(self):
        base = paper_config(n_clients=8)
        assert base.config_digest() == base.with_(
            forensics_sketch="countmin"
        ).config_digest()
        with pytest.raises(ValueError, match="forensics sketch"):
            paper_config(forensics_sketch="bloom").validate()


# ----------------------------------------------------------------------
# Sweep-wide forensics columns
# ----------------------------------------------------------------------
class TestSweepColumns:
    def test_metrics_carry_burst_summary(self, offline_result):
        metrics = ScenarioMetrics.from_result(offline_result)
        report = offline_result.forensics
        assert metrics.forensic_burst_rate == report.burst_rate
        assert metrics.forensic_burst_duration_mean == \
            report.burst_duration_mean
        assert metrics.forensic_sync_linked_fraction == \
            report.sync_linked_fraction
        assert 0.0 < metrics.forensic_drop_share <= 1.0
        # Round-trips through the flat-dict form (cache serialization).
        again = ScenarioMetrics.from_dict(metrics.as_dict())
        assert again == metrics

    def test_burst_rate_marks_forensics_presence(self):
        # Without forensics the marker stays NaN ...
        plain = run_scenario(paper_config(n_clients=4, duration=1.0, seed=3))
        assert math.isnan(
            ScenarioMetrics.from_result(plain).forensic_burst_rate
        )
        # ... with forensics it is finite even when nothing bursts.
        quiet = run_scenario(
            paper_config(n_clients=4, duration=1.0, seed=3, forensics=True)
        )
        assert ScenarioMetrics.from_result(quiet).forensic_burst_rate == 0.0

    def test_runner_logs_forensic_extras(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        config = paper_config(n_clients=8, duration=2.0, seed=3, forensics=True)
        run_many([config], processes=1, run_log=RunLog(path=path))
        done = [
            e for e in read_runlog(path) if e.get("event") == "task_done"
        ]
        assert len(done) == 1
        assert "forensic_bursts" in done[0]
        assert "forensic_burst_rate" in done[0]
        # Forensics off -> no forensic keys on the event.
        path2 = str(tmp_path / "run2.jsonl")
        run_many(
            [paper_config(n_clients=8, duration=2.0, seed=3)],
            processes=1,
            run_log=RunLog(path=path2),
        )
        done2 = [
            e for e in read_runlog(path2) if e.get("event") == "task_done"
        ]
        assert "forensic_bursts" not in done2[0]

    def test_forensics_sweep_backfills_stale_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        base = paper_config(n_clients=10, duration=2.0, seed=3)
        protocols = {"reno": ("reno", "fifo")}
        # Seed the cache with a forensics-free run of the same cell
        # (the forensics knobs are digest-excluded, so it's a hit).
        stale_config = base.with_(
            backend="packet", forensics=True, protocol="reno",
            queue="fifo", n_clients=10,
        )
        plain = ScenarioMetrics.from_result(
            run_scenario(stale_config.with_(forensics=False))
        )
        cache.put(stale_config, plain)
        assert math.isnan(plain.forensic_burst_rate)

        sweep = run_forensics_sweep(
            client_counts=(10,), base=base, protocols=protocols,
            processes=1, cache=cache,
        )
        refreshed = sweep["reno"][0]
        assert math.isfinite(refreshed.forensic_burst_rate)
        # The cache entry was overwritten with the forensic columns.
        assert math.isfinite(cache.get(stale_config).forensic_burst_rate)


# ----------------------------------------------------------------------
# The sweep figure: the paper's smoothing claim as a grid
# ----------------------------------------------------------------------
class TestForensicsSweepFigure:
    @pytest.fixture(scope="class")
    def sweep(self, tmp_path_factory):
        cache = ResultCache(str(tmp_path_factory.mktemp("forensics-sweep")))
        base = paper_config(duration=16.0, seed=1).with_(buffer_capacity=200)
        return cache, run_forensics_sweep(
            client_counts=(20, 40, 50), base=base, processes=1, cache=cache
        )

    def test_droptail_rises_while_red_stays_flat(self, sweep):
        _, data = sweep
        for key in ("reno", "vegas"):
            rates = [m.forensic_burst_rate for m in data[key]]
            assert rates == sorted(rates), key  # nondecreasing in N
            assert rates[-1] > rates[0], key  # and genuinely rising
        for key in ("reno_red", "vegas_red"):
            rates = [m.forensic_burst_rate for m in data[key]]
            assert all(
                later <= earlier
                for earlier, later in zip(rates, rates[1:])
            ), key  # flat or falling
        # RED ends below droptail: the smoothing claim across the grid.
        for droptail, red in (("reno", "reno_red"), ("vegas", "vegas_red")):
            assert data[droptail][-1].forensic_burst_rate > \
                data[red][-1].forensic_burst_rate

    def test_figure_renders_from_cached_results(self, sweep):
        cache, data = sweep
        base = paper_config(duration=16.0, seed=1).with_(buffer_capacity=200)
        # Same grid again: every cell must be a cache hit (and still
        # carry the forensic columns a re-render needs).
        again = run_forensics_sweep(
            client_counts=(20, 40, 50), base=base, processes=1, cache=cache
        )
        for key in data:
            assert again[key] == data[key]
        figure = figure_forensics_sweep(again)
        assert len(figure.series) == 4
        for xs, ys in figure.series.values():
            assert xs == [20.0, 40.0, 50.0]
            assert all(math.isfinite(y) for y in ys)
        assert "burst" in figure.render_plot()
        linked = figure_forensics_sweep(
            again, "forensic_sync_linked_fraction"
        )
        assert linked.ylabel == "fraction of bursts sync-linked"
        # The c.o.v. companion renders from the very same sweep data.
        cov = figure2_cov(again)
        assert "Poisson" in cov.series

    def test_unknown_attribute_falls_back_to_its_name(self, sweep):
        _, data = sweep
        figure = figure_forensics_sweep(data, "loss_percent")
        assert figure.ylabel == "loss_percent"


# ----------------------------------------------------------------------
# Run-log aggregation + the live dashboard
# ----------------------------------------------------------------------
def _forensic_log_events():
    return [
        {"t": 0.0, "event": "sweep_start", "total": 3, "workers": 2,
         "pool": "persistent", "schedule": "cost"},
        {"t": 1.0, "event": "task_done", "index": 0, "digest": "a",
         "label": "reno/fifo N=40", "elapsed": 1.0, "attempt": 1,
         "backend": "packet", "worker": 0, "forensic_bursts": 5,
         "forensic_sync_linked": 4, "forensic_burst_rate": 0.3125,
         "forensic_sync_linked_fraction": 0.8},
        {"t": 2.0, "event": "task_done", "index": 1, "digest": "b",
         "label": "reno/red N=40", "elapsed": 0.5, "attempt": 1,
         "backend": "packet", "worker": 1, "forensic_bursts": 1,
         "forensic_sync_linked": 0, "forensic_burst_rate": 0.0625,
         "forensic_sync_linked_fraction": 0.0},
        {"t": 2.5, "event": "task_done", "index": 2, "digest": "c",
         "label": "udp N=40", "elapsed": 0.4, "attempt": 1,
         "backend": "packet", "worker": 0},
    ]


class TestRunlogForensics:
    def test_summarize_aggregates_forensic_columns(self):
        summary = summarize_runlog(_forensic_log_events())
        forensics = summary["forensics"]
        assert forensics["cells"] == 2  # the udp cell carried none
        assert forensics["bursts"] == 6
        assert forensics["sync_linked"] == 4
        assert forensics["burst_rate_mean"] == pytest.approx(0.1875)
        assert forensics["sync_linked_fraction_mean"] == pytest.approx(0.4)

    def test_render_summary_and_slowest_columns(self):
        text = render_runlog_summary(_forensic_log_events())
        assert "forensics: 6 burst(s), 4 sync-linked across 2 cell(s)" in text
        assert "bursts" in text and "sync-linked" in text
        # The cell without forensic columns renders placeholders.
        assert "-" in text

    def test_render_summary_without_forensics_is_unchanged(self):
        events = [
            e for e in _forensic_log_events()
            if "forensic_bursts" not in e
        ]
        assert "forensics:" not in render_runlog_summary(events)

    def test_task_done_skips_nan_fractions(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        log = RunLog(path=path)
        log.task_done(
            0, "d", elapsed=1.0, forensic_bursts=0,
            forensic_sync_linked=0, forensic_burst_rate=0.0,
            forensic_sync_linked_fraction=float("nan"),
        )
        event = read_runlog(path)[0]
        assert event["forensic_bursts"] == 0
        assert event["forensic_burst_rate"] == 0.0
        assert "forensic_sync_linked_fraction" not in event


class TestFollowDashboard:
    def _write(self, path, events):
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")

    def test_tail_handles_missing_file_and_torn_lines(self, tmp_path):
        tail = RunLogTail(str(tmp_path / "absent.jsonl"))
        assert tail.poll() == []
        path = str(tmp_path / "log.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"event": "task')
        tail = RunLogTail(path)
        assert tail.poll() == []  # torn line buffered, not parsed
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('_done", "index": 0}\n')
        assert tail.poll() == [{"event": "task_done", "index": 0}]

    def test_non_tty_renders_one_line_per_update(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        self._write(path, _forensic_log_events())
        out = io.StringIO()
        updates = follow_runlog(
            path, stream=out, interval=0.0, max_updates=2, tty=False,
            sleep=lambda _: None,
        )
        assert updates == 2
        lines = out.getvalue().splitlines()
        assert len(lines) == 1  # no new events -> no repeat line
        assert "[3/3]" in lines[0]
        assert "bursts=6" in lines[0]
        assert "\x1b[" not in out.getvalue()

    def test_tty_mode_repaints_and_stops_on_sweep_end(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        self._write(path, _forensic_log_events())

        def append_end(_):
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps({
                    "t": 3.0, "event": "sweep_end", "completed": 3,
                    "failed": 0, "cached": 0, "retried": 0,
                    "makespan": 3.0, "busy": 1.9, "utilization": 0.32,
                }) + "\n")

        out = io.StringIO()
        updates = follow_runlog(
            path, stream=out, interval=0.0, tty=True, sleep=append_end
        )
        assert updates == 2
        frames = out.getvalue().split("\x1b[H\x1b[2J")
        assert len(frames) == 3  # leading empty split + 2 frames
        assert "sweep 3/3 cells" in frames[1]
        assert "forensics: 6 burst(s)" in frames[1]
        # The final frame is the full post-run summary.
        assert "Sweep execution" in frames[2]

    def test_waiting_frame_when_log_does_not_exist_yet(self, tmp_path):
        out = io.StringIO()
        updates = follow_runlog(
            str(tmp_path / "later.jsonl"), stream=out, interval=0.0,
            max_updates=1, tty=False, sleep=lambda _: None,
        )
        assert updates == 1
        assert "[0/0]" in out.getvalue()
