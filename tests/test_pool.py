"""The persistent worker pool's failure matrix and differential tests.

Every behaviour of the robustness contract — crash isolation, deadline
kill-and-respawn of only the stuck worker, retry-then-placeholder,
KeyboardInterrupt draining, cache-hit resume — is asserted for
``pool="persistent"`` and (where the scenario applies) shown identical
to ``pool="per-task"``.  The differential matrix proves both executors
and both schedules produce byte-identical :class:`ScenarioMetrics`
(same config digests, same metric values, stable after a
``from_dict`` round-trip).
"""

import os
import subprocess
import sys
import time

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.config import paper_config
from repro.experiments.costmodel import CostModel, cell_units, make_cost_model
from repro.experiments.results import ScenarioMetrics
from repro.experiments.runlog import RunLog, read_runlog, summarize_runlog
from repro.experiments.runner import POOLS, SweepRunner, run_one
from repro.experiments.sweep import run_many

pytestmark = pytest.mark.skipif(
    sys.platform == "win32",
    reason="the misbehaving task stubs rely on POSIX process semantics",
)

BOTH_POOLS = pytest.mark.parametrize("pool", list(POOLS))


def tiny(**overrides):
    defaults = dict(n_clients=2, duration=3.0, seed=1)
    defaults.update(overrides)
    return paper_config(**defaults)


# ----------------------------------------------------------------------
# Deliberately misbehaving task stubs (module level: picklable by fork)
# ----------------------------------------------------------------------
def _crash_on_seed_2(config):
    if config.seed == 2:
        os._exit(17)
    return run_one(config)


def _hang_on_seed_99(config):
    if config.seed == 99:
        time.sleep(300)
    return run_one(config)


def _raise_always(config):
    raise RuntimeError("scripted failure")


def _flaky_once(config):
    """Fails the first time it is ever called, then behaves."""
    sentinel = os.environ["REPRO_TEST_POOL_SENTINEL"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        raise RuntimeError("first attempt fails")
    return run_one(config)


class TestFailureMatrix:
    @BOTH_POOLS
    def test_worker_crash_mid_cell(self, pool):
        """A hard crash yields a placeholder; the rest of the grid and
        (persistent pool) the surviving worker finish normally."""
        configs = [tiny(seed=s) for s in (1, 2, 3, 4)]
        log = RunLog()
        runner = SweepRunner(
            processes=2, timeout=60, retries=0, task=_crash_on_seed_2,
            pool=pool, run_log=log,
        )
        results = runner.run(configs)
        assert [m.seed for m in results] == [1, 2, 3, 4]
        assert results[1].failed
        assert "exit code 17" in results[1].error
        assert [m.failed for m in results] == [False, True, False, False]
        assert log.progress.completed == 3
        assert log.progress.failed == 1

    @BOTH_POOLS
    def test_deadline_kills_only_the_stuck_worker(self, pool, tmp_path):
        """One hanging cell is killed at its deadline while the other
        worker keeps draining; under the pool, exactly one respawn."""
        hang = tiny(seed=99, n_clients=2, duration=500.0)  # biggest estimate
        normal = [tiny(seed=s, n_clients=20, duration=10.0) for s in range(1, 25)]
        path = str(tmp_path / "run.jsonl")
        with RunLog(path) as log:
            # Deadline calibration: a normal cell takes ~0.2 s alone but
            # two workers timeslicing one loaded CI core can push it
            # well past that, so the deadline needs contention headroom;
            # it must also fire while normal cells are still queued
            # (~0.2 s x 24 cells ~ 4+ s of drain) or the pool has
            # nothing left to prove the respawned worker works on.
            runner = SweepRunner(
                processes=2, timeout=2.0, retries=0, task=_hang_on_seed_99,
                pool=pool, run_log=log, heartbeat=0.1,
            )
            results = runner.run([hang] + normal)
        assert results[0].failed
        assert "timeout after 2" in results[0].error
        assert all(not m.failed for m in results[1:])
        events = read_runlog(path)
        if pool == "persistent":
            respawns = [e for e in events if e["event"] == "worker_respawn"]
            assert len(respawns) == 1
            assert respawns[0]["reason"] == "timeout"
            assert respawns[0]["index"] == 0
            # The other worker was never replaced: every cell completed
            # on a worker that is not the replaced one.
            replaced = respawns[0]["replaced"]
            done_workers = {
                e["worker"] for e in events if e["event"] == "task_done"
            }
            assert replaced not in done_workers

    @BOTH_POOLS
    def test_retry_then_placeholder(self, pool):
        """retries=2 means three attempts, then an error placeholder."""
        log = RunLog()
        runner = SweepRunner(
            processes=1, timeout=60, retries=2, backoff=0.02,
            task=_raise_always, pool=pool, run_log=log,
        )
        results = runner.run([tiny()])
        assert results[0].failed
        assert "scripted failure" in results[0].error
        assert log.progress.retried == 2
        assert log.progress.failed == 1
        # An in-worker exception is not a worker death: no respawns.
        assert log.progress.respawned == 0

    @BOTH_POOLS
    def test_retry_attempt_recorded_in_task_done(self, pool, tmp_path, monkeypatch):
        """The attempt count of the eventual success is auditable."""
        monkeypatch.setenv(
            "REPRO_TEST_POOL_SENTINEL", str(tmp_path / "sentinel")
        )
        path = str(tmp_path / "run.jsonl")
        with RunLog(path) as log:
            runner = SweepRunner(
                processes=1, timeout=60, retries=2, backoff=0.02,
                task=_flaky_once, pool=pool, run_log=log,
            )
            results = runner.run([tiny()])
        assert not results[0].failed
        done = [e for e in read_runlog(path) if e["event"] == "task_done"]
        assert len(done) == 1
        assert done[0]["attempt"] == 1  # one failed attempt preceded it
        assert done[0]["lane"] == "cost"

    @BOTH_POOLS
    def test_keyboard_interrupt_drains_workers(self, pool, tmp_path):
        """SIGINT mid-sweep propagates KeyboardInterrupt and leaves no
        orphan worker processes behind."""
        driver = tmp_path / "driver.py"
        driver.write_text(
            "import multiprocessing, os, signal, sys, time\n"
            "from repro.experiments.config import paper_config\n"
            "from repro.experiments.runner import SweepRunner, run_one\n"
            "\n"
            "def interrupt_parent(config):\n"
            "    if config.seed == 2:\n"
            "        os.kill(os.getppid(), signal.SIGINT)\n"
            "        time.sleep(30)\n"
            "    return run_one(config)\n"
            "\n"
            "configs = [paper_config(n_clients=2, duration=3.0, seed=s)\n"
            "           for s in (1, 2, 3, 4)]\n"
            "runner = SweepRunner(processes=2, timeout=60,\n"
            "                     pool=sys.argv[1], task=interrupt_parent)\n"
            "try:\n"
            "    runner.run(configs)\n"
            "except KeyboardInterrupt:\n"
            "    deadline = time.time() + 10\n"
            "    while multiprocessing.active_children() and time.time() < deadline:\n"
            "        time.sleep(0.05)\n"
            "    sys.exit(0 if not multiprocessing.active_children() else 3)\n"
            "sys.exit(4)  # the interrupt never arrived\n"
        )
        env = dict(os.environ)
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(driver), pool],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, (proc.returncode, proc.stderr)

    @BOTH_POOLS
    def test_cache_hit_resume_after_failures(self, pool, tmp_path):
        """Completed cells resume from the cache; failed cells (never
        cached) are re-attempted on the next run."""
        cache = ResultCache(str(tmp_path / "cache"))
        configs = [tiny(seed=s) for s in (1, 2, 3, 4)]
        first_log = RunLog()
        first = SweepRunner(
            processes=2, timeout=60, retries=0, task=_crash_on_seed_2,
            pool=pool, cache=cache, run_log=first_log,
        ).run(configs)
        assert first[1].failed
        assert len(cache) == 3  # the crash cell was not cached
        second_log = RunLog()
        second = SweepRunner(
            processes=2, timeout=60, retries=0, task=run_one,
            pool=pool, cache=cache, run_log=second_log,
        ).run(configs)
        assert all(not m.failed for m in second)
        assert second_log.progress.cached == 3
        assert second_log.progress.completed == 1
        assert [m.seed for m in second] == [1, 2, 3, 4]


class TestWorkerSideCaching:
    def test_parent_never_writes_the_cache(self, tmp_path):
        """Under the pool with a cache, workers persist results
        themselves and the parent only reads the entries back."""
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(processes=2, timeout=60, pool="persistent", cache=cache)

        def forbidden_put(config, metrics):
            raise AssertionError("parent serialized a result into the cache")

        runner.cache.put = forbidden_put
        configs = [tiny(seed=s) for s in (1, 2, 3)]
        results = runner.run(configs)
        assert all(not m.failed for m in results)
        assert len(cache) == 3  # written by the workers

    def test_cached_and_piped_results_are_identical(self, tmp_path):
        """A result recovered from a worker-side cache write equals the
        same cell shipped over the pipe (no cache)."""
        configs = [tiny(seed=s) for s in (1, 2)]
        piped = run_many(configs, processes=2, timeout=60, pool="persistent")
        cached = run_many(
            configs, processes=2, timeout=60, pool="persistent",
            cache=str(tmp_path),
        )
        assert piped == cached


class TestDifferentialMatrix:
    def grid(self):
        return [
            tiny(protocol=protocol, seed=seed, n_clients=n)
            for protocol in ("udp", "reno")
            for seed, n in ((1, 2), (2, 3))
        ]

    def test_executors_and_schedules_agree(self):
        """in-process, per-task, and persistent pool — under both
        schedules — produce byte-identical metrics per cell."""
        configs = self.grid()
        reference = run_many(configs, processes=1)
        variants = {
            "per-task/cost": run_many(
                configs, processes=2, timeout=120, pool="per-task"
            ),
            "per-task/fifo": run_many(
                configs, processes=2, timeout=120, pool="per-task",
                schedule="fifo",
            ),
            "persistent/cost": run_many(
                configs, processes=2, timeout=120, pool="persistent"
            ),
            "persistent/fifo": run_many(
                configs, processes=2, timeout=120, pool="persistent",
                schedule="fifo",
            ),
        }
        for name, metrics in variants.items():
            assert metrics == reference, f"{name} diverged from in-process"

    def test_round_trip_and_digests(self):
        """Results survive a from_dict round-trip byte-equal, and both
        executors agree on every cell's config digest."""
        configs = self.grid()
        results = run_many(configs, processes=2, timeout=120, pool="persistent")
        for config, metrics in zip(configs, results):
            rebuilt = ScenarioMetrics.from_dict(metrics.as_dict())
            assert rebuilt == metrics
            assert config.config_digest()  # digest is stable and present
        digests = [c.config_digest() for c in configs]
        assert digests == [c.config_digest() for c in self.grid()]


class TestCostModel:
    def test_default_ordering_is_by_size(self):
        model = CostModel()
        small = tiny(n_clients=2, duration=1.0)
        big = tiny(n_clients=40, duration=10.0)
        assert model.estimate(big) > model.estimate(small)
        assert cell_units(big) == 400.0

    def test_lane_refinement(self):
        """An observed lane predicts from its own wall times; an
        unobserved lane falls back to the global rate."""
        model = CostModel()
        udp = tiny(protocol="udp")
        reno = tiny(protocol="reno")
        model.observe(udp, 0.6)  # 6 units -> alpha 0.1
        assert model.estimate(udp) == pytest.approx(0.6)
        # reno has no lane data: global alpha (0.1) applies.
        assert model.estimate(reno) == pytest.approx(0.6)
        model.observe(reno, 6.0)  # reno is 10x slower per unit
        assert model.estimate(reno) == pytest.approx(6.0)
        assert model.estimate(udp) == pytest.approx(0.6)

    def test_nan_and_zero_observations_ignored(self):
        model = CostModel()
        model.observe(tiny(), float("nan"))
        model.observe(tiny(), 0.0)
        model.observe(tiny(), -1.0)
        assert model.observations == 0

    def test_seed_from_runlog(self):
        config = tiny()
        digest = config.config_digest()
        events = [
            {"event": "task_done", "digest": digest, "elapsed": 1.2},
            {"event": "task_done", "digest": "unknown", "elapsed": 9.9},
            {"event": "cache_hit", "digest": digest},
        ]
        model = CostModel()
        seeded = model.seed_from_runlog(events, {digest: config})
        assert seeded == 1
        assert model.estimate(config) == pytest.approx(1.2)

    def test_make_cost_model(self):
        assert make_cost_model("fifo") is None
        assert make_cost_model("cost") is not None
        with pytest.raises(ValueError):
            make_cost_model("random")

    def test_runner_seeds_model_from_existing_runlog(self, tmp_path):
        """A prior sweep's task_done rows seed the next sweep's model
        through the shared JSONL file."""
        path = str(tmp_path / "run.jsonl")
        configs = [tiny(seed=s) for s in (1, 2)]
        with RunLog(path) as log:
            run_many(configs, processes=1, run_log=log)
        with RunLog(path) as log:
            runner = SweepRunner(processes=1, run_log=log)
            model = runner._make_cost_model(configs)
        assert model is not None
        assert model.observations >= 1


class TestValidationAndKnobs:
    def test_runner_rejects_unknown_pool_and_schedule(self):
        with pytest.raises(ValueError):
            SweepRunner(pool="threads")
        with pytest.raises(ValueError):
            SweepRunner(schedule="random")
        with pytest.raises(ValueError):
            SweepRunner(heartbeat=0)

    def test_fifo_schedule_runs(self):
        configs = [tiny(seed=s) for s in (1, 2)]
        assert run_many(configs, processes=1, schedule="fifo") == run_many(
            configs, processes=1
        )

    def test_sweep_end_reports_utilization(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLog(path) as log:
            run_many(
                [tiny(seed=s) for s in (1, 2)],
                processes=2, timeout=60, pool="persistent", run_log=log,
            )
        events = read_runlog(path)
        end = [e for e in events if e["event"] == "sweep_end"][-1]
        assert end["makespan"] > 0
        assert 0 <= end["utilization"] <= 1.5  # elapsed can overlap slightly
        summary = summarize_runlog(events)
        assert summary["completed"] == 2
        assert summary["pool"] == "persistent"
        assert summary["workers"] == 2
        assert summary["per_worker"]
