"""Differential tests: the heap and wheel schedulers are equivalent.

The timer wheel (``scheduler="wheel"``) is a pure performance
substitute for the binary heap: both pop events in exactly the same
``(time, priority, seq)`` order, so every simulation must produce
*identical* results -- the same :class:`ScenarioMetrics`, the same
event count, and byte-identical ns trace files.  This suite drives a
matrix of small congested scenarios (every transport x FIFO/RED x
open-loop/RPC) under both schedulers and diffs everything; it is the
evidence behind excluding ``scheduler`` from the config digest.

A kernel-level differential (deterministic pseudo-random schedule and
cancel traffic, far beyond the wheel horizon, run with debug-mode
invariant checking) complements the scenario matrix; the wheel-vs-model
property tests live in tests/test_timer_wheel.py.
"""

import io
import random

import pytest

from repro.experiments.config import PROTOCOLS, paper_config
from repro.experiments.results import ScenarioMetrics
from repro.experiments.scenario import Scenario
from repro.net.tracefile import NsTraceWriter
from repro.sim.engine import SCHEDULERS, Simulator

# Every transport x {fifo, red} x {open, rpc}; reno_ecn needs an
# ECN-marking gateway so its FIFO cells are invalid by construction.
MATRIX = [
    (protocol, queue, workload)
    for protocol in PROTOCOLS
    for queue in ("fifo", "red")
    for workload in ("open", "rpc")
    if not (protocol == "reno_ecn" and queue == "fifo")
]


def _differential_config(protocol, queue, workload, scheduler, **overrides):
    # Small but congested: a 0.4 Mb/s bottleneck keeps 3 senders in
    # loss/retransmission territory so the schedulers are exercised on
    # cancels, timers, and queue dynamics, not just happy-path sends.
    return paper_config(
        protocol=protocol,
        queue=queue,
        workload=workload,
        n_clients=3,
        duration=6.0,
        seed=11,
        bottleneck_rate_bps=0.4e6,
        scheduler=scheduler,
        **overrides,
    )


def _run_with_trace(config):
    scenario = Scenario(config)
    stream = io.StringIO()
    NsTraceWriter(stream).attach(scenario.network.bottleneck_interface)
    result = scenario.run()
    return ScenarioMetrics.from_result(result), result.events_executed, stream.getvalue()


@pytest.mark.parametrize("protocol,queue,workload", MATRIX)
def test_schedulers_produce_identical_results(protocol, queue, workload):
    runs = {
        scheduler: _run_with_trace(
            _differential_config(protocol, queue, workload, scheduler)
        )
        for scheduler in SCHEDULERS
    }
    heap_metrics, heap_events, heap_trace = runs["heap"]
    wheel_metrics, wheel_events, wheel_trace = runs["wheel"]
    assert heap_events == wheel_events
    assert heap_metrics == wheel_metrics
    # Byte-identical ns trace: same packets, same uids, same times, in
    # the same order -- the strongest equivalence the scenario exposes.
    assert heap_trace == wheel_trace
    assert heap_trace  # the cell actually pushed traffic through


# Buffer depth moves the loss pattern between the three regimes the
# paper sweeps -- shallow (drop-dominated), the paper default, and deep
# (delay-dominated) -- and with it the mix of cancels and timer churn
# the schedulers must agree on.  Both queue disciplines are swept: RED's
# averaged occupancy makes its drop decisions state-dependent in a way
# droptail's are not.
@pytest.mark.parametrize("queue", ["fifo", "red"])
@pytest.mark.parametrize("buffer_capacity", [20, 50, 200])
def test_schedulers_identical_across_buffer_depths(buffer_capacity, queue):
    runs = {
        scheduler: _run_with_trace(
            _differential_config(
                "reno", queue, "open", scheduler, buffer_capacity=buffer_capacity
            )
        )
        for scheduler in SCHEDULERS
    }
    heap_metrics, heap_events, heap_trace = runs["heap"]
    wheel_metrics, wheel_events, wheel_trace = runs["wheel"]
    assert heap_events == wheel_events
    assert heap_metrics == wheel_metrics
    assert heap_trace == wheel_trace
    assert heap_trace


def test_scheduler_does_not_change_config_digest():
    base = _differential_config("reno", "fifo", "open", "heap")
    assert (
        base.config_digest()
        == base.with_(scheduler="wheel").config_digest()
    ), "scheduler must stay digest-excluded: results are identical"


# ----------------------------------------------------------------------
# Kernel-level differential
# ----------------------------------------------------------------------
def _drive(sim, ops, log):
    """Replay a pre-generated op sequence against one simulator."""
    handles = {}

    def fire(tag):
        log.append((round(sim.now, 9), tag))
        # Bounded re-scheduling from inside callbacks: chains stop once
        # the tag leaves the original range.
        if tag % 7 == 0 and tag < 4000:
            handles[tag + 4000] = sim.schedule(0.0305, fire, tag + 4000)

    for op, payload in ops:
        if op == "at":
            tag, time, priority = payload
            handles[tag] = sim.schedule_at(time, fire, tag, priority=priority)
        else:
            tag = payload
            if tag in handles:
                sim.cancel(handles[tag])
    return handles


def _op_sequence(seed):
    """Times spanning ready/L0/L1/overflow, plus ties and cancels."""
    rng = random.Random(seed)
    ops = []
    for tag in range(400):
        bucket = rng.random()
        if bucket < 0.5:
            time = rng.uniform(0.0, 0.12)  # level 0
        elif bucket < 0.8:
            time = rng.uniform(0.12, 30.0)  # level 1
        elif bucket < 0.95:
            time = rng.uniform(30.0, 120.0)  # overflow
        else:
            time = rng.choice([0.05, 1.0, 33.0, 2000.0])  # ties + far future
        ops.append(("at", (tag, time, rng.choice((0, 0, 0, 1)))))
        if rng.random() < 0.25:
            ops.append(("cancel", rng.randrange(tag + 1)))
    return ops


@pytest.mark.parametrize("seed", range(5))
def test_kernel_event_order_identical(seed):
    ops = _op_sequence(seed)
    logs = {}
    sims = {}
    for scheduler in SCHEDULERS:
        sim = Simulator(scheduler=scheduler, debug=True)
        log = []
        _drive(sim, ops, log)
        sim.run(until=150.0)
        sim.run()  # drain the far-future tail
        logs[scheduler] = log
        sims[scheduler] = sim
    assert logs["heap"] == logs["wheel"]
    assert sims["heap"].now == sims["wheel"].now
    assert sims["heap"].events_executed == sims["wheel"].events_executed
    assert sims["heap"].live_events == sims["wheel"].live_events == 0


def test_unknown_scheduler_rejected_everywhere():
    with pytest.raises(ValueError):
        Simulator(scheduler="calendar")
    with pytest.raises(ValueError):
        paper_config(scheduler="calendar").validate()
