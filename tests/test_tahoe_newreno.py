"""Unit tests for TCP Tahoe and TCP NewReno."""

import pytest

from repro.transport.newreno import NewRenoSender
from repro.transport.tahoe import TahoeSender
from repro.transport.tcp_base import TcpParams

from tests.helpers import TcpHarness


def make_harness(cls, cwnd=8.0, **overrides):
    params = TcpParams(
        initial_cwnd=cwnd,
        initial_ssthresh=overrides.pop("ssthresh", 64.0),
        **overrides,
    )
    return TcpHarness(cls, {"params": params})


def three_dupacks(h, ackno=0):
    h.deliver_ack(ackno)
    for _ in range(3):
        h.deliver_ack(ackno)


class TestTahoe:
    def test_fast_retransmit_restarts_slow_start(self):
        h = make_harness(TahoeSender)
        h.give_app_packets(100)
        three_dupacks(h)
        assert h.sender.cwnd == 1.0
        # The first (new) ACK grew cwnd 8 -> 9 in slow start; half of 9.
        assert h.sender.ssthresh == 4.5
        assert h.sender.stats.fast_retransmits == 1
        # The hole (packet 1) was retransmitted.
        assert h.sent_seqnos().count(1) == 2

    def test_no_inflation_on_further_dupacks(self):
        h = make_harness(TahoeSender)
        h.give_app_packets(100)
        three_dupacks(h)
        cwnd = h.sender.cwnd
        h.deliver_ack(0)
        assert h.sender.cwnd == cwnd

    def test_timeout_same_as_reno(self):
        h = make_harness(TahoeSender, initial_rto=1.0)
        h.give_app_packets(100)
        h.advance(1.5)
        assert h.sender.cwnd == 1.0
        assert h.sender.stats.timeouts == 1

    def test_recovers_via_slow_start(self):
        h = make_harness(TahoeSender)
        h.give_app_packets(100)
        three_dupacks(h)
        h.deliver_ack(h.sender.maxseq)
        assert h.sender.cwnd == 2.0  # slow start doubling resumed

    def test_protocol_name(self):
        assert TahoeSender.protocol_name == "tahoe"


class TestNewReno:
    def test_partial_ack_stays_in_recovery_and_retransmits_next_hole(self):
        h = make_harness(NewRenoSender)
        h.give_app_packets(100)
        three_dupacks(h)
        assert h.sender.in_recovery
        recover = h.sender._recover
        h.deliver_ack(3)  # partial: 3 < recover
        assert h.sender.in_recovery
        assert 3 < recover
        # Next hole (packet 4) retransmitted immediately.
        assert h.sent_seqnos().count(4) == 2

    def test_full_ack_exits_recovery(self):
        h = make_harness(NewRenoSender)
        h.give_app_packets(100)
        three_dupacks(h)
        ssthresh = h.sender.ssthresh
        h.deliver_ack(h.sender.maxseq)
        assert not h.sender.in_recovery
        assert h.sender.cwnd == pytest.approx(ssthresh)

    def test_partial_ack_deflates_by_progress(self):
        h = make_harness(NewRenoSender)
        h.give_app_packets(100)
        three_dupacks(h)
        cwnd = h.sender.cwnd
        h.deliver_ack(3)  # progress of 3 packets
        assert h.sender.cwnd == pytest.approx(cwnd - 3.0 + 1.0)

    def test_multiple_partial_acks_recover_multiple_holes(self):
        h = make_harness(NewRenoSender)
        h.give_app_packets(100)
        three_dupacks(h)
        h.deliver_ack(2)
        h.deliver_ack(5)
        assert h.sender.in_recovery
        assert h.sent_seqnos().count(3) == 2
        assert h.sent_seqnos().count(6) == 2

    def test_normal_growth_outside_recovery(self):
        h = make_harness(NewRenoSender, cwnd=2.0)
        h.give_app_packets(100)
        h.deliver_ack(0)
        assert h.sender.cwnd == 3.0  # slow start

    def test_protocol_name(self):
        assert NewRenoSender.protocol_name == "newreno"
