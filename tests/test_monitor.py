"""Unit tests for measurement instruments."""

import pytest

from repro.net.link import Link
from repro.net.monitor import ArrivalMonitor, FlowStats, QueueMonitor
from repro.net.node import Node
from repro.net.packet import PacketFactory
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator


def make_monitor(**kwargs):
    return ArrivalMonitor(bin_width=1.0, **kwargs)


def data_packet(factory, seq=0):
    return factory.data(0, "a", "b", 1000, seqno=seq, now=0.0)


def ack_packet(factory):
    return factory.ack(0, "b", "a", ackno=0, now=0.0)


class TestArrivalMonitor:
    def test_bins_by_arrival_time(self):
        monitor = make_monitor()
        factory = PacketFactory()
        for t in [0.1, 0.2, 1.5, 3.7]:
            monitor.on_packet(data_packet(factory), t)
        assert list(monitor.counts()) == [2, 1, 0, 1]

    def test_total(self):
        monitor = make_monitor()
        factory = PacketFactory()
        for t in [0.5, 1.5]:
            monitor.on_packet(data_packet(factory), t)
        assert monitor.total == 2

    def test_acks_ignored_by_default(self):
        monitor = make_monitor()
        factory = PacketFactory()
        monitor.on_packet(ack_packet(factory), 0.5)
        assert monitor.total == 0

    def test_data_only_false_counts_acks(self):
        monitor = ArrivalMonitor(bin_width=1.0, data_only=False)
        factory = PacketFactory()
        monitor.on_packet(ack_packet(factory), 0.5)
        assert monitor.total == 1

    def test_warmup_discards_early_arrivals(self):
        monitor = ArrivalMonitor(bin_width=1.0, start_time=10.0)
        factory = PacketFactory()
        monitor.on_packet(data_packet(factory), 5.0)
        monitor.on_packet(data_packet(factory), 10.5)
        assert monitor.total == 1
        assert list(monitor.counts()) == [1]

    def test_counts_until_pads_trailing_empty_bins(self):
        monitor = make_monitor()
        factory = PacketFactory()
        monitor.on_packet(data_packet(factory), 0.5)
        counts = monitor.counts(until=5.0)
        assert len(counts) == 5
        assert counts.sum() == 1

    def test_counts_until_truncates(self):
        monitor = make_monitor()
        factory = PacketFactory()
        for t in [0.5, 4.5]:
            monitor.on_packet(data_packet(factory), t)
        assert list(monitor.counts(until=2.0)) == [1, 0]

    def test_counts_until_before_start_is_empty(self):
        monitor = ArrivalMonitor(bin_width=1.0, start_time=10.0)
        assert monitor.counts(until=5.0).size == 0

    def test_drop_hook_counts_data_drops(self):
        monitor = make_monitor()
        factory = PacketFactory()
        monitor.on_drop(data_packet(factory), 1.0)
        monitor.on_drop(ack_packet(factory), 1.0)
        assert monitor.drops_seen == 1

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            ArrivalMonitor(bin_width=0.0)

    def test_attach_hooks_into_interface(self):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        Link(sim, a, b, 1e6, 0.0, queue_ab=DropTailQueue(1))
        factory = PacketFactory()
        monitor = ArrivalMonitor(bin_width=1.0).attach(a.interfaces["b"])
        a.set_default_route("b")
        # Three sends into a capacity-1 queue: 1 transmitted, 1 queued, 1 dropped.
        for i in range(3):
            a.send(data_packet(factory, i))
        assert monitor.total == 3
        assert monitor.drops_seen == 1


class TestQueueMonitor:
    def test_periodic_samples(self):
        sim = Simulator()
        queue = DropTailQueue(10)
        monitor = QueueMonitor(sim, queue, period=1.0)
        factory = PacketFactory()
        sim.schedule(0.5, lambda: queue.enqueue(data_packet(factory), 0.5))
        sim.run(until=3.0)
        times, lengths, averages = monitor.as_arrays()
        assert list(times) == [0.0, 1.0, 2.0, 3.0]
        assert list(lengths) == [0, 1, 1, 1]
        # DropTail has no EWMA; averages mirror the instantaneous length.
        assert list(averages) == [0.0, 1.0, 1.0, 1.0]

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            QueueMonitor(Simulator(), DropTailQueue(1), period=0.0)


def test_flow_stats_defaults():
    stats = FlowStats(flow_id=7)
    assert stats.flow_id == 7
    assert stats.packets_received == 0
    assert stats.arrival_times == []


class TestQueueMonitorOverRed:
    """Satellite 4: QueueMonitor sampling a RED queue's EWMA average."""

    def _fill(self, sim, queue, factory, rate=0.05, count=40):
        def arrival(i):
            queue.enqueue(data_packet(factory, i), sim.now)

        for i in range(count):
            sim.schedule(i * rate, arrival, i)

    def test_red_average_diverges_from_instantaneous_length(self):
        from repro.net.red import REDParams, REDQueue

        sim = Simulator()
        queue = REDQueue(
            32, REDParams(min_th=5.0, max_th=15.0, weight=0.2), name="red"
        )
        monitor = QueueMonitor(sim, queue, period=0.5)
        factory = PacketFactory()
        self._fill(sim, queue, factory)
        sim.run(until=2.0)
        times, lengths, averages = monitor.as_arrays()
        assert list(times) == [0.0, 0.5, 1.0, 1.5, 2.0]
        # The EWMA lags the instantaneous length while the queue builds.
        assert lengths[-1] > 0
        assert 0.0 < averages[-1] < lengths[-1]

    def test_shared_registry_publishes_series(self):
        from repro.obs.registry import MetricRegistry

        sim = Simulator()
        registry = MetricRegistry(categories=("queue",))
        queue = DropTailQueue(8, name="gw")
        monitor = QueueMonitor(sim, queue, period=1.0, registry=registry)
        factory = PacketFactory()
        sim.schedule(0.5, lambda: queue.enqueue(data_packet(factory), 0.5))
        sim.run(until=2.0)
        # The monitor's series is the registry's series -- one store.
        assert registry.series("queue.sampled.gw") is monitor.series
        assert monitor.lengths == [0, 1, 1]

    def test_disabled_registry_category_records_nothing(self):
        from repro.obs.registry import MetricRegistry

        sim = Simulator()
        registry = MetricRegistry(categories=("cwnd",))  # queue is off
        queue = DropTailQueue(8, name="gw")
        monitor = QueueMonitor(sim, queue, period=1.0, registry=registry)
        sim.run(until=3.0)
        assert monitor.times == []
        assert monitor.lengths == []
