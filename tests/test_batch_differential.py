"""Differential harness: the batch engine against the object engine.

The batch engine (``engine="batch"``, see ``repro.engine``) re-implements
the scenario hot path as struct-of-arrays state plus fused transport
events.  Its correctness claim is not "close" but *bit-identical*: on
every supported cell it must produce the same :class:`ScenarioMetrics`,
the same per-flow observability series, the same registry counters and
the same forensics report as the per-flow object engine, under both
calendar-queue schedulers.

The matrix below covers Reno/Vegas x droptail/RED x open-loop/RPC plus
stress cells chosen to exercise the regimes where an unfaithful fusion
would diverge: deep overload (same-time event ties at the bottleneck
port), tiny buffers (timeout/fast-retransmit storms) and RED's averaged
occupancy.  Every cell runs {object,batch} x {heap,wheel}; the object
engine on the reference heap scheduler is the oracle.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ScenarioConfig, paper_config
from repro.experiments.results import ScenarioMetrics
from repro.experiments.scenario import run_scenario

#: Categories that exercise every obs stream both engines publish to.
ALL_TRACE = ("cwnd", "rtt", "state", "queue", "drops")

#: >= 12 seeded cells: the full protocol x queue x workload product at
#: moderate load, plus stress cells.  Each tuple is (label, overrides).
MATRIX = [
    (
        f"{protocol}-{queue}-{workload}",
        dict(
            protocol=protocol,
            queue=queue,
            workload=workload,
            n_clients=8,
            duration=5.0,
            seed=11,
            bottleneck_rate_bps=0.4e6,
            mean_gap=0.05,
        ),
    )
    for protocol in ("reno", "vegas")
    for queue in ("fifo", "red")
    for workload in ("open", "rpc")
] + [
    (
        "reno-fifo-overload",
        dict(
            protocol="reno",
            queue="fifo",
            n_clients=40,
            duration=4.0,
            seed=1,
            mean_gap=0.05,
        ),
    ),
    (
        "vegas-fifo-tiny-buffer",
        dict(
            protocol="vegas",
            queue="fifo",
            n_clients=12,
            duration=6.0,
            seed=7,
            buffer_capacity=8,
            mean_gap=0.04,
            bottleneck_rate_bps=0.3e6,
        ),
    ),
    (
        "reno-red-tiny-buffer",
        dict(
            protocol="reno",
            queue="red",
            n_clients=12,
            duration=6.0,
            seed=9,
            buffer_capacity=10,
            mean_gap=0.04,
            bottleneck_rate_bps=0.3e6,
        ),
    ),
    (
        "vegas-red-rpc-stress",
        dict(
            protocol="vegas",
            queue="red",
            workload="rpc",
            n_clients=10,
            duration=6.0,
            seed=3,
            bottleneck_rate_bps=0.3e6,
        ),
    ),
]


def _cell_config(overrides: dict) -> ScenarioConfig:
    return paper_config(
        obs_trace=ALL_TRACE,
        forensics=True,
        **overrides,
    )


def canonical_obs(result) -> dict:
    """Order-preserving, identity-free view of the obs bundle.

    ``ObsBundle`` holds registry metric objects without ``__eq__`` and
    series rows; this flattens everything to comparable values.  The
    registry snapshot round-trips through JSON so NaN gauge values
    compare equal (json serializes them to the same token).
    """
    obs = result.obs
    flows = {
        i: {
            "cwnd": probe.cwnd.rows,
            "rtt": probe.rtt.rows,
            "states": probe.states.rows,
        }
        for i, probe in obs.flows.items()
    }
    queue = None
    if obs.queue is not None:
        queue = {
            "occupancy": obs.queue.occupancy.rows,
            "drops": obs.queue.drops.rows,
        }
    return {
        "flows": flows,
        "queue": queue,
        "registry": json.dumps(obs.registry.snapshot(), sort_keys=True),
    }


def canonical_forensics(result) -> str:
    """The full forensics report as a canonical JSON string.

    ``as_dict`` output contains NaN floats, which are unequal to
    themselves under dict comparison; JSON canonicalization makes two
    identical reports compare equal.
    """
    return json.dumps(result.forensics.as_dict(), sort_keys=True)


@pytest.mark.parametrize(
    "overrides", [cell for _, cell in MATRIX], ids=[label for label, _ in MATRIX]
)
def test_batch_matches_object_everywhere(overrides):
    """{object,batch} x {heap,wheel}: identical metrics, obs, forensics."""
    config = _cell_config(overrides)
    reference = run_scenario(config.with_(engine="object", scheduler="heap"))
    ref_metrics = ScenarioMetrics.from_result(reference)
    ref_obs = canonical_obs(reference)
    ref_forensics = canonical_forensics(reference)
    for engine in ("object", "batch"):
        for scheduler in ("heap", "wheel"):
            if engine == "object" and scheduler == "heap":
                continue
            run = run_scenario(config.with_(engine=engine, scheduler=scheduler))
            tag = f"{engine}/{scheduler}"
            assert ScenarioMetrics.from_result(run) == ref_metrics, tag
            assert canonical_obs(run) == ref_obs, tag
            assert canonical_forensics(run) == ref_forensics, tag
            if engine == "batch":
                # The fusion claim itself: same physics from fewer events.
                assert run.events_executed < reference.events_executed, tag


def test_engine_knob_is_digest_excluded():
    """Engine choice must not invalidate cached metrics (like scheduler)."""
    config = paper_config(n_clients=4, duration=2.0, seed=5)
    assert (
        config.with_(engine="batch").config_digest()
        == config.with_(engine="object").config_digest()
    )


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        paper_config(engine="turbo").validate()


@pytest.mark.parametrize(
    "overrides,match",
    [
        (dict(protocol="udp"), "reno/vegas"),
        (dict(protocol="tahoe"), "reno/vegas"),
        (dict(traffic="pareto_onoff"), "poisson"),
        (dict(pacing=True), "pacing"),
        (dict(backend="fluid", queue="red"), "packet backend"),
        (dict(client_rate_bps=1e5), "access links"),
        (dict(packet_size=39), "40"),
        (dict(advertised_window=1000), "access queue"),
        # Bottleneck serialization time == access propagation delay:
        # the object engine's same-time tie-break becomes ambiguous.
        (dict(packet_size=1000, bottleneck_rate_bps=8e6, client_delay=0.001), "tie"),
        (dict(min_rto=0.001), "min_rto"),
    ],
)
def test_batch_envelope_rejections(overrides, match):
    """Outside the fusion envelope the config refuses loudly."""
    with pytest.raises(ValueError, match=match):
        paper_config(engine="batch", **overrides).validate()


def test_batch_accepts_the_paper_grid():
    """The paper's own sweep cells all validate under the batch engine."""
    for protocol in ("reno", "vegas"):
        for queue in ("fifo", "red"):
            for n_clients in (10, 100, 500):
                paper_config(
                    engine="batch",
                    protocol=protocol,
                    queue=queue,
                    n_clients=n_clients,
                ).validate()
