"""Property-based tests on TCP sender invariants under random ACK streams."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.newreno import NewRenoSender
from repro.transport.reno import RenoSender
from repro.transport.tahoe import TahoeSender
from repro.transport.tcp_base import TcpParams
from repro.transport.vegas import VegasSender

from tests.helpers import TcpHarness

SENDERS = [TahoeSender, RenoSender, NewRenoSender, VegasSender]


def drive(sender_cls, script):
    """Drive a sender with a random script of events.

    Script items: ("app", n) hand packets over; ("ack", k) deliver an
    ACK k positions above/below last_ack; ("wait", dt) advance time.
    """
    h = TcpHarness(
        sender_cls,
        {"params": TcpParams(initial_cwnd=2.0, min_rto=0.5, initial_rto=1.0)},
    )
    for kind, value in script:
        if kind == "app":
            h.give_app_packets(value)
        elif kind == "wait":
            h.advance(value)
        else:  # ack
            target = h.sender.last_ack + value
            if target > h.sender.maxseq:
                target = h.sender.maxseq
            if target >= 0:
                h.deliver_ack(target)
        check_invariants(h.sender)
    return h


def check_invariants(sender):
    params = sender.params
    assert 1.0 <= sender.cwnd <= params.advertised_window
    assert sender.ssthresh >= 2.0
    assert sender.last_ack <= sender.maxseq
    assert sender.t_seqno <= sender.app_total
    assert sender.t_seqno >= sender.last_ack + 1 or sender.maxseq == -1
    # In flight never exceeds the advertised window (flow control).
    assert sender.outstanding <= params.advertised_window
    assert params.min_rto <= sender.rto <= params.max_rto
    assert sender.dupacks >= 0


event = st.one_of(
    st.tuples(st.just("app"), st.integers(min_value=1, max_value=30)),
    st.tuples(st.just("ack"), st.integers(min_value=-2, max_value=10)),
    st.tuples(st.just("wait"), st.floats(min_value=0.0, max_value=3.0, allow_nan=False)),
)


@settings(max_examples=40, deadline=None)
@given(script=st.lists(event, min_size=1, max_size=60))
def test_reno_invariants_under_random_events(script):
    drive(RenoSender, script)


@settings(max_examples=40, deadline=None)
@given(script=st.lists(event, min_size=1, max_size=60))
def test_tahoe_invariants_under_random_events(script):
    drive(TahoeSender, script)


@settings(max_examples=40, deadline=None)
@given(script=st.lists(event, min_size=1, max_size=60))
def test_newreno_invariants_under_random_events(script):
    drive(NewRenoSender, script)


@settings(max_examples=40, deadline=None)
@given(script=st.lists(event, min_size=1, max_size=60))
def test_vegas_invariants_under_random_events(script):
    h = drive(VegasSender, script)
    assert h.sender.base_rtt > 0  # inf before any sample, positive after


@settings(max_examples=20, deadline=None)
@given(script=st.lists(event, min_size=1, max_size=40))
def test_sequence_numbers_never_skipped(script):
    """Every transmitted DATA seqno is within [0, maxseq] and first
    transmissions appear in increasing order."""
    h = drive(RenoSender, script)
    seen = set()
    first_transmissions = []
    for packet in h.transmitted:
        if not packet.is_data:
            continue
        if packet.seqno not in seen:
            seen.add(packet.seqno)
            first_transmissions.append(packet.seqno)
    assert first_transmissions == sorted(first_transmissions)
    if first_transmissions:
        # No gaps: a seqno is only ever sent after all before it.
        assert first_transmissions == list(range(len(first_transmissions)))
