"""Tests for the repro-tcp command-line interface."""

import argparse

import pytest

from repro.experiments.cli import build_parser, main, parse_range


class TestParseRange:
    def test_colon_range_inclusive(self):
        assert parse_range("4:12:4") == [4, 8, 12]

    def test_colon_range_default_step(self):
        assert parse_range("1:4") == [1, 2, 3, 4]

    def test_comma_list(self):
        assert parse_range("3,7,20") == [3, 7, 20]

    def test_single_value(self):
        assert parse_range("5") == [5]

    @pytest.mark.parametrize("spec", ["5:1", "1:5:0", "1:2:3:4"])
    def test_invalid(self, spec):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_range(spec)


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ["table1", "run", "fig2", "fig3", "fig4", "fig13", "cwnd"]:
            args = parser.parse_args(
                [command] if command == "table1" else [command]
            )
            assert args.command == command

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "reno"
        assert args.queue == "fifo"
        assert args.clients == 20

    def test_fig_clients_parsing(self):
        args = build_parser().parse_args(["fig2", "--clients", "2:6:2"])
        assert args.clients == [2, 4, 6]


class TestMain:
    def test_table1_prints_parameters(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "50 packets" in out
        assert "3 Mbps" in out

    def test_run_single_scenario(self, capsys):
        code = main(
            ["run", "--protocol", "udp", "--clients", "2", "--duration", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "UDP" in out

    def test_run_writes_outputs(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        main(
            [
                "run",
                "--protocol",
                "udp",
                "--clients",
                "2",
                "--duration",
                "3",
                "--csv",
                str(csv_path),
                "--json",
                str(json_path),
            ]
        )
        assert csv_path.exists()
        assert json_path.exists()

    def test_fig2_small_sweep(self, capsys, tmp_path):
        csv_path = tmp_path / "fig2.csv"
        code = main(
            [
                "fig2",
                "--clients",
                "2,3",
                "--duration",
                "3",
                "--processes",
                "1",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Poisson" in out
        assert csv_path.exists()

    def test_cwnd_renders_traces(self, capsys):
        code = main(
            ["cwnd", "--protocol", "reno", "--clients", "3", "--duration", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cwnd of client" in out

    def test_replicate_summarizes_seeds(self, capsys, tmp_path):
        json_path = tmp_path / "rep.json"
        code = main(
            [
                "replicate",
                "--protocol",
                "udp",
                "--clients",
                "2",
                "--duration",
                "3",
                "--replicas",
                "2",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 replicas" in out
        assert "ci low" in out
        assert json_path.exists()

    def test_all_writes_every_artifact(self, capsys, tmp_path):
        outdir = tmp_path / "results"
        code = main(
            [
                "all",
                "--outdir",
                str(outdir),
                "--clients",
                "2,3",
                "--duration",
                "3",
                "--processes",
                "1",
            ]
        )
        assert code == 0
        names = {p.name for p in outdir.iterdir()}
        assert "table1.txt" in names
        assert "fig02_cov.csv" in names
        assert "fig02_cov.txt" in names
        assert "fig13_timeout_ratio.csv" in names
        assert "sweep_metrics.csv" in names

    def test_dependence_reports_diagnostics(self, capsys):
        code = main(
            ["dependence", "--protocol", "reno", "--clients", "3", "--duration", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "var(sum)/sum(var)" in out
        assert "aggregate c.o.v." in out


class TestRunnerFlags:
    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "fig2",
                "--cache-dir", "cachedir",
                "--timeout", "5.5",
                "--retries", "3",
                "--resume",
                "--progress",
                "--run-log", "events.jsonl",
            ]
        )
        assert args.cache_dir == "cachedir"
        assert args.timeout == 5.5
        assert args.retries == 3
        assert args.resume is True
        assert args.progress is True
        assert args.run_log == "events.jsonl"

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.cache_dir is None
        assert args.timeout is None
        assert args.retries == 1
        assert args.resume is False

    def test_resume_implies_default_cache_dir(self):
        from repro.experiments.cli import DEFAULT_CACHE_DIR, _runner_kwargs

        args = build_parser().parse_args(["fig2", "--resume"])
        assert _runner_kwargs(args)["cache"] == DEFAULT_CACHE_DIR
        args = build_parser().parse_args(["fig2", "--resume", "--cache-dir", "x"])
        assert _runner_kwargs(args)["cache"] == "x"
        args = build_parser().parse_args(["fig2"])
        assert _runner_kwargs(args)["cache"] is None

    def test_fig2_populates_and_reuses_cache(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        log_path = tmp_path / "run.jsonl"
        argv = [
            "fig2",
            "--clients", "2",
            "--duration", "3",
            "--processes", "1",
            "--cache-dir", str(cache_dir),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(list(cache_dir.glob("*.json"))) == 6  # one per protocol

        assert main(argv + ["--run-log", str(log_path)]) == 0
        second = capsys.readouterr().out
        assert first == second  # cache hits reproduce the figure exactly

        from repro.experiments.runlog import read_runlog

        events = [e["event"] for e in read_runlog(str(log_path))]
        assert events.count("cache_hit") == 6
        assert "task_start" not in events


class TestObservabilityFlags:
    """The flight-recorder CLI surface: --trace, --obs-dir, --trace-file."""

    def test_trace_spec_parsing(self):
        args = build_parser().parse_args(["run", "--trace", "cwnd,queue"])
        assert args.trace == ("cwnd", "queue")

    def test_trace_all_expands(self):
        args = build_parser().parse_args(["run", "--trace", "all"])
        assert "drops" in args.trace

    def test_trace_unknown_category_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--trace", "bogus"])
        assert "unknown trace categories" in capsys.readouterr().err

    def test_trace_file_round_trip(self, tmp_path, capsys):
        from repro.net.tracefile import read_trace

        trace_path = tmp_path / "run.tr"
        code = main(
            [
                "run",
                "--clients",
                "2",
                "--duration",
                "3",
                "--trace-file",
                str(trace_path),
            ]
        )
        assert code == 0
        assert str(trace_path) in capsys.readouterr().out
        records = read_trace(str(trace_path))
        assert records  # lines written and parse back cleanly
        ops = {record.op for record in records}
        assert "+" in ops and "-" in ops
        assert all(record.time >= 0 for record in records)

    def test_obs_dir_exports_bundle(self, tmp_path, capsys):
        import json

        obs_dir = tmp_path / "obs"
        code = main(
            [
                "run",
                "--clients",
                "2",
                "--duration",
                "3",
                "--obs-dir",
                str(obs_dir),
                "--trace",
                "cwnd,queue",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert (obs_dir / "flow_cwnd.jsonl").exists()
        assert (obs_dir / "queue_occupancy.jsonl").exists()
        profile = json.loads((obs_dir / "engine_profile.json").read_text())
        assert profile["events_executed"] > 0
        assert "engine profile" in out.lower() or "ev/s" in out

    def test_obs_dir_csv_format(self, tmp_path):
        obs_dir = tmp_path / "obs"
        main(
            [
                "run",
                "--clients",
                "2",
                "--duration",
                "3",
                "--obs-dir",
                str(obs_dir),
                "--obs-format",
                "csv",
                "--trace",
                "cwnd",
            ]
        )
        header = (obs_dir / "flow_cwnd.csv").read_text().splitlines()[0]
        assert header == "flow_id,time,cwnd,ssthresh"

    def test_profile_subcommand(self, capsys):
        code = main(["profile", "--clients", "2", "--duration", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ev/s" in out

    def test_profile_json_output(self, tmp_path):
        import json

        json_path = tmp_path / "profile.json"
        code = main(
            [
                "profile",
                "--clients",
                "2",
                "--duration",
                "3",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["events_executed"] > 0
        assert payload["sim_time"] == 3.0


class TestExecutorFlags:
    """The sweep-executor CLI surface: --jobs, --pool, --schedule."""

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["fig2", "--jobs", "4", "--pool", "per-task", "--schedule", "fifo"]
        )
        assert args.processes == 4
        assert args.pool == "per-task"
        assert args.schedule == "fifo"

    def test_jobs_short_flag_aliases_processes(self):
        args = build_parser().parse_args(["fig2", "-j", "2"])
        assert args.processes == 2

    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.pool == "persistent"
        assert args.schedule == "cost"

    def test_unknown_pool_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--pool", "threads"])

    def test_runner_kwargs_carry_executor_knobs(self):
        from repro.experiments.cli import _runner_kwargs

        args = build_parser().parse_args(
            ["fig2", "--pool", "per-task", "--schedule", "fifo"]
        )
        kwargs = _runner_kwargs(args)
        assert kwargs["pool"] == "per-task"
        assert kwargs["schedule"] == "fifo"


class TestSweeplog:
    def test_sweeplog_summarizes_run(self, capsys, tmp_path):
        log_path = tmp_path / "run.jsonl"
        assert main(
            [
                "fig2",
                "--clients", "2",
                "--duration", "3",
                "--jobs", "2",
                "--timeout", "60",
                "--run-log", str(log_path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["sweeplog", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "utilization" in out
        assert "Per-worker load" in out
        assert "Slowest cells" in out

    def test_sweeplog_json_export(self, capsys, tmp_path):
        import json

        log_path = tmp_path / "run.jsonl"
        json_path = tmp_path / "summary.json"
        assert main(
            [
                "fig2",
                "--clients", "2",
                "--duration", "3",
                "--run-log", str(log_path),
            ]
        ) == 0
        capsys.readouterr()
        code = main(["sweeplog", str(log_path), "--json", str(json_path)])
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["completed"] >= 1
        assert "makespan" in payload

    def test_sweeplog_empty_log_fails(self, capsys, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["sweeplog", str(empty)]) == 1


class TestForensicsStreamFlag:
    def test_run_streams_prefix_consistent_jsonl(self, tmp_path, capsys):
        from repro.experiments.config import paper_config
        from repro.experiments.scenario import run_scenario
        from repro.forensics import offline_stream_lines

        stream_path = tmp_path / "stream.jsonl"
        assert main(
            [
                "run",
                "--clients", "8",
                "--duration", "4",
                "--seed", "3",
                "--forensics-stream", str(stream_path),
                "--forensics-stream-interval", "0.5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "forensics stream records" in out
        offline = run_scenario(
            paper_config(n_clients=8, duration=4.0, seed=3, forensics=True)
        )
        expected = "".join(
            line + "\n" for line in offline_stream_lines(offline.forensics)
        )
        assert stream_path.read_text() == expected

    def test_stream_implies_forensics(self):
        args = build_parser().parse_args(
            ["run", "--forensics-stream", "x.jsonl"]
        )
        assert args.forensics_stream == "x.jsonl"
        assert args.forensics_stream_interval == 1.0


class TestForensicsSweepFlag:
    def test_sweep_flag_parses_range_and_default(self):
        args = build_parser().parse_args(["forensics", "--sweep", "10,20"])
        assert args.sweep == [10, 20]
        args = build_parser().parse_args(["forensics", "--sweep"])
        assert args.sweep == [20, 40, 60]
        args = build_parser().parse_args(["forensics"])
        assert args.sweep is None

    def test_sweep_prints_figures(self, capsys, tmp_path):
        json_path = tmp_path / "sweep.json"
        assert main(
            [
                "forensics",
                "--sweep", "8,12",
                "--duration", "3",
                "--seed", "3",
                "--processes", "1",
                "--json", str(json_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "figF sweep (forensic_burst_rate)" in out
        assert "figF sweep (forensic_sync_linked_fraction)" in out
        assert "coefficient of variation" in out
        import json

        payload = json.loads(json_path.read_text())
        assert set(payload) == {"burst_rate", "sync_linked_fraction", "cov"}


class TestSweeplogFollow:
    def _write_log(self, path):
        import json

        events = [
            {"t": 0.0, "event": "sweep_start", "total": 1, "workers": 1,
             "pool": "persistent", "schedule": "cost"},
            {"t": 1.0, "event": "task_done", "index": 0, "digest": "a",
             "label": "reno N=8", "elapsed": 1.0, "attempt": 1,
             "backend": "packet", "worker": 0, "forensic_bursts": 2,
             "forensic_sync_linked": 1, "forensic_burst_rate": 0.5,
             "forensic_sync_linked_fraction": 0.5},
        ]
        path.write_text(
            "".join(json.dumps(event) + "\n" for event in events)
        )

    def test_follow_non_tty_line_mode(self, capsys, tmp_path):
        log_path = tmp_path / "run.jsonl"
        self._write_log(log_path)
        assert main(
            [
                "sweeplog", str(log_path),
                "--follow", "--interval", "0.01", "--max-updates", "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "[1/1]" in out
        assert "bursts=2" in out
        assert "\x1b[" not in out

    def test_follow_flags_parse(self):
        args = build_parser().parse_args(
            ["sweeplog", "x.jsonl", "--follow", "--interval", "2",
             "--max-updates", "5"]
        )
        assert args.follow and args.interval == 2.0 and args.max_updates == 5
        args = build_parser().parse_args(["sweeplog", "x.jsonl"])
        assert not args.follow
