"""Unit tests for the RED and Adaptive RED gateways."""

import random

import pytest

from repro.net.packet import PacketFactory
from repro.net.red import AdaptiveREDQueue, REDParams, REDQueue


def make_packet(factory, seq=0, ecn=False):
    return factory.data(0, "a", "b", 1000, seqno=seq, now=0.0, ecn_capable=ecn)


def make_queue(**overrides):
    defaults = dict(min_th=5.0, max_th=15.0, max_p=0.1, weight=0.5)
    defaults.update(overrides)
    capacity = defaults.pop("capacity", 50)
    rng_seed = defaults.pop("seed", 1)
    return REDQueue(capacity, REDParams(**defaults), random.Random(rng_seed))


def fill(queue, n, factory, start_seq=0, now=0.0):
    admitted = 0
    for i in range(n):
        if queue.enqueue(make_packet(factory, start_seq + i), now):
            admitted += 1
    return admitted


class TestREDParams:
    def test_defaults_match_table1(self):
        params = REDParams()
        assert params.min_th == 10.0
        assert params.max_th == 40.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(weight=0.0),
            dict(weight=1.5),
            dict(min_th=-1.0),
            dict(min_th=10.0, max_th=10.0),
            dict(max_p=0.0),
            dict(max_p=1.5),
            dict(idle_packet_time=0.0),
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            REDParams(**kwargs).validate()


class TestREDQueue:
    def test_no_drops_below_min_threshold(self):
        queue = make_queue(weight=1.0)  # avg tracks instantaneous queue
        factory = PacketFactory()
        assert fill(queue, 5, factory) == 5
        assert queue.stats.drops == 0

    def test_average_tracks_queue_with_unit_weight(self):
        queue = make_queue(weight=1.0)
        factory = PacketFactory()
        fill(queue, 4, factory)
        # avg after 4 arrivals with w=1: equals queue length just before
        # each arrival, so 3 after the fourth.
        assert queue.avg == pytest.approx(3.0)

    def test_ewma_update(self):
        queue = make_queue(weight=0.25)
        factory = PacketFactory()
        queue.enqueue(make_packet(factory, 0), 0.0)  # avg = 0.75*0 + 0.25*0
        queue.enqueue(make_packet(factory, 1), 0.0)  # avg = 0.75*0 + 0.25*1
        assert queue.avg == pytest.approx(0.25)

    def test_forced_drop_above_max_threshold(self):
        queue = make_queue(weight=1.0, max_th=8.0)
        factory = PacketFactory()
        fill(queue, 9, factory)  # drive avg past max_th
        assert queue.avg >= 8.0
        before = queue.stats.drops
        assert not queue.enqueue(make_packet(factory, 99), 0.0)
        assert queue.stats.drops == before + 1

    def test_probabilistic_drops_between_thresholds(self):
        # Mid-band with max_p=1: p_b = (avg-min)/(max-min) ~ 0.5, and the
        # count correction pushes the effective probability higher, so a
        # run of arrivals must see plenty of early drops.
        queue = make_queue(weight=1.0, min_th=1.0, max_th=21.0, max_p=1.0)
        factory = PacketFactory()
        fill(queue, 11, factory)  # avg ~ 10.5 -> p_b ~ 0.48
        dropped = 0
        trials = 40
        for i in range(trials):
            if not queue.enqueue(make_packet(factory, 100 + i), 0.0):
                dropped += 1
        assert dropped >= trials * 0.3

    def test_drop_rate_scales_with_average(self):
        rng = random.Random(7)
        results = []
        for target in (6.0, 13.0):
            queue = REDQueue(
                1000,
                REDParams(min_th=5.0, max_th=15.0, max_p=0.5, weight=1.0),
                rng,
            )
            factory = PacketFactory()
            fill(queue, int(target), factory)
            drops = 0
            trials = 400
            for i in range(trials):
                if not queue.enqueue(make_packet(factory, 100 + i), 0.0):
                    drops += 1
                else:
                    queue.dequeue(0.0)  # hold the queue near the target
                    # re-add to keep length stable
                    queue._packets.append(make_packet(factory, 10_000 + i))
            results.append(drops / trials)
        assert results[1] > results[0]

    def test_physical_overflow_always_drops(self):
        queue = make_queue(capacity=3, weight=0.001)  # avg stays ~0
        factory = PacketFactory()
        fill(queue, 3, factory)
        assert not queue.enqueue(make_packet(factory, 10), 0.0)

    def test_idle_decay_reduces_average(self):
        queue = make_queue(weight=0.5, idle_packet_time=0.01)
        factory = PacketFactory()
        fill(queue, 6, factory)
        while queue.dequeue(1.0) is not None:
            pass
        avg_before = queue.avg
        assert avg_before > 0
        queue.enqueue(make_packet(factory, 50), 2.0)  # 1 s idle = 100 pkts
        assert queue.avg < avg_before * 0.01

    def test_gentle_mode_allows_band_above_max_th(self):
        queue = make_queue(
            weight=1.0, min_th=2.0, max_th=5.0, gentle=True, max_p=0.0001, seed=3
        )
        factory = PacketFactory()
        fill(queue, 7, factory)
        assert 5.0 <= queue.avg < 10.0
        # In gentle mode, avg between max_th and 2*max_th is probabilistic,
        # not a forced drop; with tiny max_p most packets still get in.
        admitted = sum(
            queue.enqueue(make_packet(factory, 100 + i), 0.0) for i in range(3)
        )
        assert admitted >= 1

    def test_ecn_marks_instead_of_dropping(self):
        # Drive the average past max_th: the (deterministic) forced drop
        # becomes a mark for an ECN-capable packet.
        queue = make_queue(weight=1.0, min_th=1.0, max_th=3.0, ecn=True)
        factory = PacketFactory()
        fill(queue, 5, factory)
        assert queue.avg >= 3.0
        packet = make_packet(factory, 10, ecn=True)
        assert queue.enqueue(packet, 0.0)
        assert packet.ecn_ce
        assert queue.stats.marks >= 1

    def test_ecn_ignores_non_capable_packets(self):
        queue = make_queue(weight=1.0, min_th=1.0, max_th=3.0, ecn=True)
        factory = PacketFactory()
        fill(queue, 5, factory)
        assert queue.avg >= 3.0
        packet = make_packet(factory, 10, ecn=False)
        assert not queue.enqueue(packet, 0.0)

    def test_count_spreading_forces_eventual_drop(self):
        # p_a = p_b / (1 - count*p_b): after 1/p_b admissions, p_a -> 1.
        queue = make_queue(
            weight=1.0, min_th=1.0, max_th=1000.0, max_p=0.05, capacity=10_000
        )
        factory = PacketFactory()
        fill(queue, 5, factory)
        admitted_run = 0
        for i in range(100):
            if queue.enqueue(make_packet(factory, 100 + i), 0.0):
                admitted_run += 1
            else:
                break
        assert admitted_run < 100


class TestAdaptiveRED:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            AdaptiveREDQueue(10, interval=0.0)

    def test_max_p_decreases_when_underutilized(self):
        queue = AdaptiveREDQueue(
            50,
            REDParams(min_th=5.0, max_th=15.0, max_p=0.1, weight=0.001),
            random.Random(1),
            interval=1.0,
        )
        factory = PacketFactory()
        # avg stays ~0 < min_th; crossing t=1, 2, ... should shrink max_p.
        queue.enqueue(make_packet(factory, 0), 0.5)
        queue.enqueue(make_packet(factory, 1), 3.5)
        assert queue.params.max_p < 0.1
        assert queue.adaptations >= 1

    def test_max_p_increases_when_overloaded(self):
        queue = AdaptiveREDQueue(
            100,
            REDParams(min_th=2.0, max_th=5.0, max_p=0.01, weight=0.5),
            random.Random(1),
            interval=1.0,
        )
        factory = PacketFactory()
        # With a lagging average the queue admits past max_th before the
        # forced-drop region engages, leaving avg strictly above max_th.
        fill(queue, 20, factory, now=0.5)
        assert queue.avg > 5.0
        queue.enqueue(make_packet(factory, 99), 1.5)  # adaptation point
        assert queue.params.max_p > 0.01

    def test_max_p_respects_bounds(self):
        queue = AdaptiveREDQueue(
            50,
            REDParams(min_th=5.0, max_th=15.0, max_p=0.002, weight=0.001),
            random.Random(1),
            interval=0.5,
            min_p=0.001,
        )
        factory = PacketFactory()
        queue.enqueue(make_packet(factory, 0), 10.0)  # many intervals pass
        assert queue.params.max_p >= 0.001
