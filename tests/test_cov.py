"""Unit tests for the coefficient-of-variation measure."""

import math

import numpy as np
import pytest

from repro.core.cov import bin_counts, coefficient_of_variation, cov_from_times


class TestBinCounts:
    def test_basic_binning(self):
        counts = bin_counts([0.1, 0.9, 1.5, 3.2], bin_width=1.0, t_end=4.0)
        assert list(counts) == [2, 1, 0, 1]

    def test_events_outside_window_discarded(self):
        counts = bin_counts([-1.0, 0.5, 10.0], bin_width=1.0, t_start=0.0, t_end=2.0)
        assert counts.sum() == 1

    def test_t_end_inferred_from_last_event(self):
        counts = bin_counts([0.5, 2.5], bin_width=1.0)
        assert len(counts) == 3
        assert counts.sum() == 2

    def test_partial_trailing_bin_excluded(self):
        # Window [0, 2.5) with width 1 -> two whole bins only.
        counts = bin_counts([0.5, 1.5, 2.4], bin_width=1.0, t_end=2.5)
        assert len(counts) == 2
        assert counts.sum() == 2

    def test_nonzero_start(self):
        counts = bin_counts([5.5, 6.5], bin_width=1.0, t_start=5.0, t_end=7.0)
        assert list(counts) == [1, 1]

    def test_empty_input(self):
        assert bin_counts([], bin_width=1.0).size == 0

    def test_empty_window(self):
        assert bin_counts([1.0], bin_width=1.0, t_start=0.0, t_end=0.5).size == 0

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            bin_counts([1.0], bin_width=0.0)

    def test_t_end_before_t_start(self):
        with pytest.raises(ValueError):
            bin_counts([1.0], bin_width=1.0, t_start=2.0, t_end=1.0)

    def test_conservation(self):
        times = np.random.default_rng(0).uniform(0, 10, size=500)
        counts = bin_counts(times, bin_width=0.5, t_end=10.0)
        assert counts.sum() == 500


class TestCov:
    def test_constant_counts_cov_zero(self):
        assert coefficient_of_variation([5, 5, 5, 5]) == 0.0

    def test_known_value(self):
        # counts [0, 2]: mean 1, std 1 -> cov 1.
        assert coefficient_of_variation([0, 2]) == pytest.approx(1.0)

    def test_all_zero_counts(self):
        assert coefficient_of_variation([0, 0, 0]) == 0.0

    def test_empty_is_nan(self):
        assert math.isnan(coefficient_of_variation([]))

    def test_ddof(self):
        sample = [1, 2, 3, 4]
        biased = coefficient_of_variation(sample, ddof=0)
        unbiased = coefficient_of_variation(sample, ddof=1)
        assert unbiased > biased

    def test_scale_invariance(self):
        counts = [1, 4, 2, 7, 3]
        scaled = [10 * c for c in counts]
        assert coefficient_of_variation(counts) == pytest.approx(
            coefficient_of_variation(scaled)
        )

    def test_poisson_sample_matches_theory(self):
        rng = np.random.default_rng(1)
        counts = rng.poisson(lam=25.0, size=20000)
        # Poisson c.o.v. = 1/sqrt(lambda) = 0.2.
        assert coefficient_of_variation(counts) == pytest.approx(0.2, rel=0.05)


def test_cov_from_times_matches_composition():
    times = [0.1, 0.4, 1.2, 2.9, 3.3, 3.4]
    direct = cov_from_times(times, bin_width=1.0, t_end=4.0)
    composed = coefficient_of_variation(bin_counts(times, 1.0, t_end=4.0))
    assert direct == pytest.approx(composed)
