"""Integration tests for the per-figure experiment functions."""

import pytest

from repro.experiments.config import paper_config
from repro.experiments.figures import (
    FIGURE2_PROTOCOLS,
    FigureData,
    cwnd_trace_experiment,
    figure2_cov,
    figure3_throughput,
    figure4_loss,
    figure13_timeout_ratio,
    run_protocol_sweep,
)


@pytest.fixture(scope="module")
def sweep():
    base = paper_config(duration=6.0, seed=2)
    return run_protocol_sweep(
        [2, 4],
        base=base,
        protocols={"udp": ("udp", "fifo"), "reno": ("reno", "fifo")},
        processes=1,
    )


class TestSweep:
    def test_structure(self, sweep):
        assert set(sweep) == {"udp", "reno"}
        assert [m.n_clients for m in sweep["udp"]] == [2, 4]

    def test_metrics_sorted_by_clients(self, sweep):
        for metrics in sweep.values():
            counts = [m.n_clients for m in metrics]
            assert counts == sorted(counts)

    def test_figure2_protocols_cover_paper_legend(self):
        labels = set(FIGURE2_PROTOCOLS)
        assert labels == {
            "udp",
            "reno",
            "reno_red",
            "vegas",
            "vegas_red",
            "reno_delack",
        }


class TestFigure2:
    def test_series_include_analytic_poisson(self, sweep):
        figure = figure2_cov(sweep, paper_config(duration=6.0))
        assert "Poisson" in figure.series
        assert "UDP" in figure.series
        assert "Reno" in figure.series

    def test_poisson_series_decreasing(self, sweep):
        figure = figure2_cov(sweep, paper_config(duration=6.0))
        _xs, ys = figure.series["Poisson"]
        assert ys == sorted(ys, reverse=True)

    def test_renderers_produce_text(self, sweep):
        figure = figure2_cov(sweep, paper_config(duration=6.0))
        assert "Figure 2" in figure.render_plot()
        assert "Figure 2" in figure.render_table()


class TestFigures3_4_13:
    def test_min_clients_filter(self, sweep):
        figure = figure3_throughput(sweep, min_clients=4)
        for _name, (xs, _ys) in figure.series.items():
            assert all(x >= 4 for x in xs)

    def test_udp_excluded_from_tcp_figures(self, sweep):
        for builder in (figure3_throughput, figure4_loss, figure13_timeout_ratio):
            figure = builder(sweep, min_clients=0)
            assert "UDP" not in figure.series
            assert "Reno" in figure.series

    def test_loss_values_are_percentages(self, sweep):
        figure = figure4_loss(sweep, min_clients=0)
        for _name, (_xs, ys) in figure.series.items():
            assert all(0.0 <= y <= 100.0 for y in ys)


class TestFigureData:
    def test_to_rows_long_format(self):
        figure = FigureData("F", "t", "x", "y")
        figure.add_series("a", [1, 2], [3, 4])
        rows = figure.to_rows()
        assert rows == [
            {"series": "a", "x": 1, "y": 3},
            {"series": "a", "x": 2, "y": 4},
        ]

    def test_table_merges_sparse_series(self):
        figure = FigureData("F", "t", "x", "y")
        figure.add_series("a", [1.0, 2.0], [10.0, 20.0])
        figure.add_series("b", [2.0], [30.0])
        table = figure.render_table()
        assert "a" in table and "b" in table


class TestFullProtocolSet:
    def test_all_figure2_protocols_run_in_one_sweep(self):
        base = paper_config(duration=4.0, seed=1)
        sweep = run_protocol_sweep([2], base=base, processes=1)
        assert set(sweep) == set(FIGURE2_PROTOCOLS)
        for key, metrics in sweep.items():
            assert len(metrics) == 1
            assert metrics[0].throughput_packets > 0, key
        figure = figure2_cov(sweep, base)
        # Analytic curve + six measured series.
        assert len(figure.series) == 7


class TestCwndTraces:
    def test_default_flows_first_middle_last(self):
        result = cwnd_trace_experiment(
            "reno", 6, base=paper_config(duration=5.0), duration=5.0
        )
        assert set(result.cwnd_traces) == {0, 3, 5}

    def test_explicit_flows(self):
        result = cwnd_trace_experiment(
            "vegas", 4, flows=[1], base=paper_config(duration=5.0)
        )
        assert set(result.cwnd_traces) == {1}

    def test_trace_values_bounded_by_advertised_window(self):
        result = cwnd_trace_experiment(
            "reno", 4, base=paper_config(duration=5.0)
        )
        for trace in result.cwnd_traces.values():
            assert all(1.0 <= v <= 20.0 for _, v in trace)
