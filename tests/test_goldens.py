"""Golden ScenarioMetrics fixtures for core Figure 2/3 points.

Each golden file in tests/goldens/ pins the full (wall-clock-free)
:class:`ScenarioMetrics` record of one seeded sweep point near the
paper's congestion knee -- the three Figure 2 curves (UDP, Reno,
Reno/RED) plus Vegas/RED.  Any change to simulation physics, metric
derivation, RNG consumption order, or scheduler behavior shows up as a
field-level diff against the stored record.

Both schedulers are run for every point and must match the same golden,
so the fixtures double as end-to-end scheduler-equivalence evidence at
paper-realistic load.

To regenerate after an *intentional* behavior change::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

then review the JSON diff before committing.
"""

import json
import math
from pathlib import Path

import pytest

from repro.experiments.config import paper_config
from repro.experiments.results import ScenarioMetrics
from repro.experiments.scenario import Scenario
from repro.sim.engine import SCHEDULERS

GOLDEN_DIR = Path(__file__).parent / "goldens"

# Just above the knee (37.5 clients at Table 1 rates): every protocol
# is in sustained congestion, so losses, retransmissions, and queue
# dynamics are all exercised.
BASE = dict(n_clients=40, duration=16.0, seed=7)

GOLDEN_POINTS = {
    "fig2_udp_fifo_n40": dict(protocol="udp", queue="fifo"),
    "fig2_reno_fifo_n40": dict(protocol="reno", queue="fifo"),
    "fig2_reno_red_n40": dict(protocol="reno", queue="red"),
    "fig3_vegas_red_n40": dict(protocol="vegas", queue="red"),
}


def _golden_payload(metrics):
    """The record minus wall-clock telemetry (nondeterministic)."""
    return {
        key: value
        for key, value in metrics.as_dict().items()
        if key not in ScenarioMetrics._WALL_CLOCK_FIELDS
    }


def _values_equal(expected, actual):
    if (
        isinstance(expected, float)
        and isinstance(actual, float)
        and math.isnan(expected)
        and math.isnan(actual)
    ):
        return True
    return expected == actual


def diff_payloads(expected, actual):
    """Field-level differences, as readable one-line strings."""
    diffs = []
    for key in sorted(set(expected) | set(actual)):
        if key not in expected:
            diffs.append(f"  {key}: unexpected new field (value {actual[key]!r})")
        elif key not in actual:
            diffs.append(f"  {key}: missing (golden has {expected[key]!r})")
        elif not _values_equal(expected[key], actual[key]):
            diffs.append(f"  {key}: golden {expected[key]!r} != run {actual[key]!r}")
    return diffs


@pytest.mark.parametrize("name", sorted(GOLDEN_POINTS))
def test_metrics_match_golden(name, request):
    config = paper_config(**BASE, **GOLDEN_POINTS[name])
    payloads = {}
    for scheduler in SCHEDULERS:
        result = Scenario(config.with_(scheduler=scheduler)).run()
        payloads[scheduler] = _golden_payload(ScenarioMetrics.from_result(result))

    # Scheduler equivalence at paper-realistic load, independent of the
    # stored golden.
    scheduler_diffs = diff_payloads(payloads["heap"], payloads["wheel"])
    assert not scheduler_diffs, "heap/wheel diverged:\n" + "\n".join(scheduler_diffs)

    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-goldens"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(payloads["heap"], indent=2, sort_keys=True) + "\n"
        )
        return
    assert path.exists(), (
        f"golden {path.name} missing; generate it with "
        "pytest tests/test_goldens.py --update-goldens"
    )
    golden = json.loads(path.read_text())
    for scheduler, payload in payloads.items():
        diffs = diff_payloads(golden, payload)
        assert not diffs, (
            f"{name} under scheduler={scheduler} diverged from the golden "
            f"(if intentional, rerun with --update-goldens):\n"
            + "\n".join(diffs)
        )


def test_goldens_have_no_orphan_files():
    """Every stored golden corresponds to a declared point."""
    expected = {f"{name}.json" for name in GOLDEN_POINTS}
    actual = {path.name for path in GOLDEN_DIR.glob("*.json")}
    assert actual == expected
