"""Unit tests for restartable timers."""

from repro.sim.engine import Simulator
from repro.sim.timers import Timer


def make(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    return timer, fired


def test_timer_fires_after_delay():
    sim = Simulator()
    timer, fired = make(sim)
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]


def test_timer_pending_and_expiry():
    sim = Simulator()
    timer, _fired = make(sim)
    assert not timer.pending
    assert timer.expiry is None
    timer.start(3.0)
    assert timer.pending
    assert timer.expiry == 3.0


def test_timer_not_pending_after_firing():
    sim = Simulator()
    timer, _fired = make(sim)
    timer.start(1.0)
    sim.run()
    assert not timer.pending


def test_cancel_prevents_firing():
    sim = Simulator()
    timer, fired = make(sim)
    timer.start(1.0)
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.pending


def test_cancel_idempotent():
    sim = Simulator()
    timer, _fired = make(sim)
    timer.cancel()
    timer.start(1.0)
    timer.cancel()
    timer.cancel()


def test_restart_supersedes_previous_schedule():
    sim = Simulator()
    timer, fired = make(sim)
    timer.start(1.0)
    timer.restart(5.0)
    sim.run()
    assert fired == [5.0]


def test_timer_can_be_reused_after_firing():
    sim = Simulator()
    timer, fired = make(sim)
    timer.start(1.0)
    sim.run(until=1.5)
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.5]


def test_timer_restart_from_callback():
    sim = Simulator()
    count = []

    def periodic():
        count.append(sim.now)
        if len(count) < 3:
            timer.start(1.0)

    timer = Timer(sim, periodic)
    timer.start(1.0)
    sim.run()
    assert count == [1.0, 2.0, 3.0]
