"""Unit tests for interfaces, links, and node forwarding."""

import pytest

from repro.net.link import Interface, Link
from repro.net.node import Node, RoutingError
from repro.net.packet import PacketFactory
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.transport.base import Agent


class RecordingAgent(Agent):
    """Collects (time, packet) deliveries."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def receive(self, packet):
        self.received.append((self.sim.now, packet))


def build_pair(rate=1e6, delay=0.01):
    sim = Simulator()
    a = Node(sim, "a")
    b = Node(sim, "b")
    Link(sim, a, b, rate, delay)
    factory = PacketFactory()
    return sim, a, b, factory


def test_transmission_plus_propagation_delay():
    sim, a, b, factory = build_pair(rate=1e6, delay=0.01)
    agent = RecordingAgent(sim, b, 0, "a", factory)
    a.set_default_route("b")
    packet = factory.data(0, "a", "b", 1000, seqno=0, now=0.0)
    a.send(packet)
    sim.run()
    # 1000 B at 1 Mb/s = 8 ms tx, + 10 ms propagation.
    assert agent.received[0][0] == pytest.approx(0.018)


def test_transmission_time_scales_with_size():
    sim, a, b, factory = build_pair(rate=1e6, delay=0.0)
    iface = a.interfaces["b"]
    small = factory.data(0, "a", "b", 500, seqno=0, now=0.0)
    large = factory.data(0, "a", "b", 2000, seqno=1, now=0.0)
    assert iface.transmission_time(large) == pytest.approx(
        4 * iface.transmission_time(small)
    )


def test_back_to_back_packets_serialize():
    sim, a, b, factory = build_pair(rate=1e6, delay=0.0)
    agent = RecordingAgent(sim, b, 0, "a", factory)
    a.set_default_route("b")
    for i in range(3):
        a.send(factory.data(0, "a", "b", 1000, seqno=i, now=0.0))
    sim.run()
    times = [t for t, _ in agent.received]
    assert times == pytest.approx([0.008, 0.016, 0.024])


def test_wire_pipelines_multiple_packets():
    # Long delay, fast link: several packets in flight at once.
    sim, a, b, factory = build_pair(rate=1e8, delay=1.0)
    agent = RecordingAgent(sim, b, 0, "a", factory)
    a.set_default_route("b")
    for i in range(3):
        a.send(factory.data(0, "a", "b", 1000, seqno=i, now=0.0))
    sim.run()
    times = [t for t, _ in agent.received]
    # All arrive ~1 s after their (tiny) transmission slots, well before
    # 2 s: the wire did not serialize them by the propagation delay.
    assert all(t < 1.01 for t in times)
    assert len(times) == 3


def test_fifo_delivery_order_preserved():
    sim, a, b, factory = build_pair()
    agent = RecordingAgent(sim, b, 0, "a", factory)
    a.set_default_route("b")
    for i in range(5):
        a.send(factory.data(0, "a", "b", 1000, seqno=i, now=0.0))
    sim.run()
    assert [p.seqno for _, p in agent.received] == list(range(5))


def test_interface_counts_sent_traffic():
    sim, a, b, factory = build_pair()
    RecordingAgent(sim, b, 0, "a", factory)
    a.set_default_route("b")
    a.send(factory.data(0, "a", "b", 1000, seqno=0, now=0.0))
    sim.run()
    iface = a.interfaces["b"]
    assert iface.packets_sent == 1
    assert iface.bytes_sent == 1000


def test_send_hook_sees_every_offered_packet():
    sim, a, b, factory = build_pair()
    RecordingAgent(sim, b, 0, "a", factory)
    a.set_default_route("b")
    seen = []
    a.interfaces["b"].add_send_hook(lambda p, t: seen.append(p.seqno))
    for i in range(3):
        a.send(factory.data(0, "a", "b", 1000, seqno=i, now=0.0))
    sim.run()
    assert seen == [0, 1, 2]


def test_queue_overflow_drops_but_keeps_delivering():
    sim = Simulator()
    a = Node(sim, "a")
    b = Node(sim, "b")
    Link(sim, a, b, 1e6, 0.0, queue_ab=DropTailQueue(2))
    factory = PacketFactory()
    agent = RecordingAgent(sim, b, 0, "a", factory)
    a.set_default_route("b")
    for i in range(10):
        a.send(factory.data(0, "a", "b", 1000, seqno=i, now=0.0))
    sim.run()
    # 1 in transmission + 2 queued = 3 delivered; 7 dropped.
    assert len(agent.received) == 3
    assert a.interfaces["b"].queue.stats.drops == 7


def test_invalid_link_parameters():
    sim = Simulator()
    node = Node(sim, "x")
    with pytest.raises(ValueError):
        Interface(sim, "i", node, rate_bps=0, delay=0.0, queue=DropTailQueue(1))
    with pytest.raises(ValueError):
        Interface(sim, "i", node, rate_bps=1e6, delay=-1.0, queue=DropTailQueue(1))


def test_duplex_link_attaches_both_directions():
    sim, a, b, _factory = build_pair()
    assert "b" in a.interfaces
    assert "a" in b.interfaces


def test_node_routes_by_destination():
    sim = Simulator()
    a, mid, b = Node(sim, "a"), Node(sim, "mid"), Node(sim, "b")
    Link(sim, a, mid, 1e6, 0.0)
    Link(sim, mid, b, 1e6, 0.0)
    factory = PacketFactory()
    agent = RecordingAgent(sim, b, 0, "a", factory)
    a.set_default_route("mid")
    mid.add_route("b", "b")
    a.send(factory.data(0, "a", "b", 1000, seqno=0, now=0.0))
    sim.run()
    assert len(agent.received) == 1
    assert mid.packets_forwarded == 1


def test_missing_route_raises():
    sim = Simulator()
    a = Node(sim, "a")
    b = Node(sim, "b")
    Link(sim, a, b, 1e6, 0.0)
    factory = PacketFactory()
    with pytest.raises(RoutingError):
        a.send(factory.data(0, "a", "nowhere", 1000, seqno=0, now=0.0))


def test_route_via_unknown_interface_raises():
    sim = Simulator()
    node = Node(sim, "a")
    with pytest.raises(RoutingError):
        node.add_route("b", "ghost")
    with pytest.raises(RoutingError):
        node.set_default_route("ghost")


def test_unbound_flow_delivery_raises():
    sim, a, b, factory = build_pair()
    a.set_default_route("b")
    a.send(factory.data(99, "a", "b", 1000, seqno=0, now=0.0))
    with pytest.raises(RoutingError):
        sim.run()


def test_duplicate_flow_binding_raises():
    sim, a, b, factory = build_pair()
    RecordingAgent(sim, b, 0, "a", factory)
    with pytest.raises(ValueError):
        RecordingAgent(sim, b, 0, "a", factory)


def test_delivery_counter():
    sim, a, b, factory = build_pair()
    RecordingAgent(sim, b, 0, "a", factory)
    a.set_default_route("b")
    a.send(factory.data(0, "a", "b", 1000, seqno=0, now=0.0))
    sim.run()
    assert b.packets_delivered == 1
