#!/usr/bin/env python3
"""RED vs FIFO gateways: why RED hurt in this system (Section 3.4).

Runs TCP Reno and TCP Vegas over a drop-tail FIFO gateway, a RED
gateway, and the self-configuring Adaptive RED extension, at a heavily
congested load.  Tracks the gateway queue over time to show RED holding
the *average* queue low (its goal) while the burstier transported
traffic loses throughput -- the paper's counter-intuitive finding.

Run:  python examples/red_vs_fifo.py          (~30 s)
"""

from repro.analysis.tables import format_table
from repro.core.fluid import vegas_equilibrium_queue
from repro.experiments.config import paper_config
from repro.experiments.scenario import Scenario
from repro.net.monitor import QueueMonitor

N_CLIENTS = 45
DURATION = 40.0


def run(protocol: str, queue: str):
    config = paper_config(
        protocol=protocol, queue=queue, n_clients=N_CLIENTS, duration=DURATION, seed=1
    )
    scenario = Scenario(config)
    monitor = QueueMonitor(scenario.sim, scenario.network.bottleneck_queue, period=0.5)
    result = scenario.run()
    _times, lengths, averages = monitor.as_arrays()
    return result, lengths, averages


def main() -> None:
    rows = []
    for protocol in ("reno", "vegas"):
        for queue in ("fifo", "red", "ared"):
            result, lengths, averages = run(protocol, queue)
            rows.append(
                [
                    result.config.label,
                    result.cov,
                    result.throughput_packets,
                    result.loss_percent,
                    float(lengths.mean()),
                    float(averages.mean()),
                    result.timeouts,
                ]
            )
            print(f"ran {result.config.label:12s} ...")
    print()
    print(
        format_table(
            [
                "gateway",
                "cov",
                "delivered",
                "loss %",
                "mean queue",
                "mean RED avg",
                "timeouts",
            ],
            rows,
            precision=3,
            title=f"FIFO vs RED vs Adaptive RED ({N_CLIENTS} clients, {DURATION:g}s)",
        )
    )
    low, high = vegas_equilibrium_queue(N_CLIENTS)
    print()
    print(
        f"Section 3.4's arithmetic: {N_CLIENTS} Vegas streams try to keep\n"
        f"between {low:.0f} and {high:.0f} packets queued, but RED's max_th "
        f"is 40 packets --\nso the RED gateway is persistently beyond its "
        f"drop-everything threshold,\nexactly the regime where the paper "
        f"found Vegas/RED's loss spiking."
    )


if __name__ == "__main__":
    main()
