#!/usr/bin/env python3
"""Quickstart: one simulated run of the paper's client/server system.

Builds the Figure-1 dumbbell with the (reconstructed) Table-1 defaults,
runs 40 TCP Reno clients for 30 simulated seconds, and prints the
paper's core measurement: the coefficient of variation of the packets
arriving at the gateway per round-trip propagation delay, against the
analytic c.o.v. of the offered Poisson aggregate.

Run:  python examples/quickstart.py
"""

from repro import paper_config
from repro.experiments.scenario import Scenario


def main() -> None:
    config = paper_config(
        protocol="reno",
        queue="fifo",
        n_clients=40,
        duration=30.0,
        seed=1,
    )

    # Show the topology we are about to simulate (paper Figure 1).
    scenario = Scenario(config)
    print("Network model (Figure 1):")
    print(scenario.network.ascii_diagram())
    print()
    print(
        f"offered load: {config.n_clients} clients x "
        f"{config.per_client_rate:g} pkt/s = "
        f"{config.offered_load_bps / 1e6:.2f} Mbps vs "
        f"{config.bottleneck_rate_bps / 1e6:g} Mbps bottleneck "
        f"(congestion knee at ~{config.congestion_knee_clients:.1f} clients)"
    )
    print()

    result = scenario.run()

    print(f"ran {result.events_executed} events over {config.duration:g} s")
    print()
    print("The paper's headline measurement:")
    assert result.modulation is not None
    print(result.modulation.describe())
    print()
    print(
        f"throughput: {result.throughput_packets} packets "
        f"({result.utilization:.0%} of bottleneck capacity)"
    )
    print(f"packet loss at the gateway: {result.loss_percent:.2f}%")
    print(
        f"recoveries: {result.timeouts} timeouts, "
        f"{result.fast_retransmits} fast retransmits"
    )
    print()
    print(
        "TCP Reno under congestion transports the smooth Poisson input as a\n"
        "noticeably burstier aggregate (modulation ratio > 1); re-run with\n"
        "protocol='vegas' or protocol='udp' to see the contrast."
    )


if __name__ == "__main__":
    main()
