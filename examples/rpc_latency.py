#!/usr/bin/env python3
"""Closed-loop RPC latency: what TCP burstiness costs the application.

The paper measures burstiness at the gateway (packet-level c.o.v.);
this example measures it where a distributed computing system feels it:
request latency.  Forty closed-loop RPC clients (6-packet requests,
four outstanding each, exponential think time) congest the 3 Mbps
bottleneck; unlike the paper's open-loop Poisson sources, each client
only issues its next request after the previous one was delivered and
answered, so TCP backpressure feeds back into the offered load.

Reno's loss-driven sawtooth fills the gateway queue until it drops
(higher loss, higher c.o.v., a higher-median latency); Vegas backs off
on delay, keeping the queue -- and the median request latency -- lower
at the same offered workload.

Run:  python examples/rpc_latency.py
"""

from repro import paper_config, run_scenario


def main() -> None:
    base = paper_config(
        workload="rpc",
        n_clients=40,
        duration=30.0,
        seed=1,
        rpc_request_packets=6,
        rpc_outstanding=4,
        rpc_think_time=0.1,
    )

    print(
        f"{base.n_clients} closed-loop RPC clients, "
        f"{base.rpc_request_packets}-packet requests, "
        f"{base.rpc_outstanding} outstanding, "
        f"mean think {base.rpc_think_time:g}s, {base.duration:g}s simulated\n"
    )

    results = {}
    for protocol in ("reno", "vegas"):
        result = run_scenario(base.with_(protocol=protocol))
        results[protocol] = result
        assert result.app is not None
        print(f"--- {result.config.label} ---")
        print(result.app.describe())
        print(f"  gateway c.o.v. = {result.cov:.4f}, loss = {result.loss_percent:.2f}%")
        print()

    reno, vegas = results["reno"], results["vegas"]
    print(
        f"median request latency: Reno {reno.app.latency_p50:.2f}s vs "
        f"Vegas {vegas.app.latency_p50:.2f}s "
        f"(loss {reno.loss_percent:.1f}% vs {vegas.loss_percent:.1f}%)"
    )
    print(
        "The same application workload pays a different latency depending "
        "on the\ncongestion-control mechanism carrying it -- the paper's "
        "burstiness, seen\nfrom the application."
    )


if __name__ == "__main__":
    main()
