#!/usr/bin/env python3
"""Error bars: is the Reno/Vegas c.o.v. gap real or seed noise?

The paper reports single ns runs.  This example repeats the headline
comparison (Figure 2's heavy-congestion point) under several
independent seeds and reports mean +/- 95% confidence intervals,
then checks whether the Reno-vs-Vegas difference survives.

Run:  python examples/error_bars.py          (~2 minutes)
"""

from repro.experiments.config import paper_config
from repro.experiments.replication import compare, replicate

N_CLIENTS = 50
DURATION = 60.0
REPLICAS = 5


def main() -> None:
    base = paper_config(n_clients=N_CLIENTS, duration=DURATION)
    results = {}
    for protocol in ("udp", "reno", "vegas"):
        print(f"replicating {protocol} x{REPLICAS} ...")
        results[protocol] = replicate(
            base.with_(protocol=protocol), n_replicas=REPLICAS
        )
    print()
    for protocol, result in results.items():
        print(result.render_table(precision=4))
        print()

    analytic = results["reno"].replicas[0].analytic_cov
    print(f"analytic Poisson c.o.v. at {N_CLIENTS} clients: {analytic:.4f}")
    for metric in ("cov", "throughput_packets", "loss_percent"):
        difference, disjoint = compare(results["reno"], results["vegas"], metric)
        verdict = "SIGNIFICANT (disjoint CIs)" if disjoint else "within seed noise"
        print(f"Reno - Vegas, {metric:22s}: {difference:+10.4f}   {verdict}")
    difference, disjoint = compare(results["reno"], results["udp"], "cov")
    verdict = "SIGNIFICANT" if disjoint else "within seed noise"
    print(f"Reno - UDP,  {'cov':22s}: {difference:+10.4f}   {verdict}")


if __name__ == "__main__":
    main()
