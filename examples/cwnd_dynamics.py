#!/usr/bin/env python3
"""Congestion-window dynamics: Figures 5-12 in miniature.

Traces the congestion windows of three spread-out client streams for
TCP Reno and TCP Vegas at a moderately and a heavily congested load,
renders them as ASCII step plots, and quantifies the loss
synchronization the paper describes (Section 3.2): the correlation of
window decreases across flows.

Run:  python examples/cwnd_dynamics.py          (~30 s)
"""

import numpy as np

from repro.analysis.asciiplot import ascii_step_plot
from repro.analysis.timeseries import sample_step_series, uniform_grid
from repro.experiments.config import paper_config
from repro.experiments.figures import cwnd_trace_experiment

DURATION = 40.0


def decrease_times(trace):
    """Times at which the congestion window shrank."""
    times = []
    previous = None
    for t, value in trace:
        if previous is not None and value < previous:
            times.append(t)
        previous = value
    return times


def synchronization_score(traces, window=1.0, duration=DURATION):
    """Fraction of window-decrease events shared by 2+ flows within
    ``window`` seconds -- a direct measure of the coupling the paper
    blames for aggregate burstiness."""
    all_events = [decrease_times(trace) for trace in traces.values()]
    flat = [(t, flow) for flow, events in enumerate(all_events) for t in events]
    if not flat:
        return 0.0, 0
    flat.sort()
    shared = 0
    for t, flow in flat:
        if any(
            abs(t - other_t) <= window and other_flow != flow
            for other_t, other_flow in flat
        ):
            shared += 1
    return shared / len(flat), len(flat)


def show(protocol: str, n_clients: int) -> None:
    base = paper_config(duration=DURATION, seed=1)
    result = cwnd_trace_experiment(protocol, n_clients, base=base)
    title = f"{protocol.capitalize()}, {n_clients} clients"
    print("=" * 78)
    print(title)
    print("=" * 78)
    for flow_id, trace in sorted(result.cwnd_traces.items()):
        print(
            ascii_step_plot(
                trace,
                0.0,
                DURATION,
                width=70,
                height=12,
                title=f"cwnd of client {flow_id}",
            )
        )
        print()
    score, events = synchronization_score(result.cwnd_traces)
    grid = uniform_grid(0.0, DURATION, 0.5)
    mean_windows = [
        float(np.mean(sample_step_series(tr, grid, initial=1.0)))
        for tr in result.cwnd_traces.values()
    ]
    print(
        f"window-decrease events: {events}; fraction synchronized across "
        f"flows (within 1 s): {score:.0%}"
    )
    print(
        "mean windows per flow: "
        + ", ".join(f"{w:.1f}" for w in mean_windows)
        + f"   loss={result.loss_percent:.1f}%  timeouts={result.timeouts}"
    )
    print()


def main() -> None:
    # Reno: stabilizes at moderate load, synchronized sawtooth when heavy
    # (paper Figures 6 and 9).
    show("reno", 30)
    show("reno", 60)
    # Vegas: settles to a small, fair, near-constant window (Figures 10-12).
    show("vegas", 30)
    show("vegas", 60)
    print(
        "Note how Reno's windows keep collapsing and rebuilding in near\n"
        "lock-step under heavy load, while Vegas flows settle to flat,\n"
        "nearly equal windows -- the mechanism behind the c.o.v. gap of\n"
        "Figure 2."
    )


if __name__ == "__main__":
    main()
