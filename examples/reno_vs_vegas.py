#!/usr/bin/env python3
"""Reno vs Vegas: the paper's central comparison, as a mini-sweep.

Sweeps the number of clients across the three congestion regimes the
paper identifies (uncongested / moderately congested / heavily
congested) for TCP Reno and TCP Vegas over both FIFO and RED gateways,
then prints the c.o.v., throughput, loss, and timeout figures side by
side -- a compact rendition of Figures 2, 3, 4 and 13.

Run:  python examples/reno_vs_vegas.py          (~1 minute)
"""

from repro.analysis.tables import format_table
from repro.core.theory import poisson_aggregate_cov
from repro.experiments.config import paper_config
from repro.experiments.sweep import run_many

CLIENT_COUNTS = (20, 38, 50)  # one point per congestion regime
# The paper ran 200 s; shorter runs keep the example fast but leave more
# of the shared start-up transient in the averages, which narrows the
# Reno/Vegas gap.  Raise DURATION (or add warmup=...) to sharpen it.
DURATION = 60.0


def main() -> None:
    base = paper_config(duration=DURATION, seed=1)
    combos = [
        ("reno", "fifo"),
        ("reno", "red"),
        ("vegas", "fifo"),
        ("vegas", "red"),
    ]
    configs = [
        base.with_(protocol=protocol, queue=queue, n_clients=n)
        for protocol, queue in combos
        for n in CLIENT_COUNTS
    ]
    print(f"running {len(configs)} scenarios of {DURATION:g}s each ...")
    metrics = run_many(configs)

    rows = []
    for m in metrics:
        analytic = poisson_aggregate_cov(
            m.n_clients, base.per_client_rate, base.effective_bin_width
        )
        rows.append(
            [
                m.label,
                m.n_clients,
                m.cov,
                analytic,
                (m.cov / analytic - 1.0) * 100.0,
                m.throughput_packets,
                m.loss_percent,
                m.timeouts,
                m.fairness,
            ]
        )
    rows.sort(key=lambda r: (r[1], r[0]))
    print()
    print(
        format_table(
            [
                "protocol",
                "clients",
                "cov",
                "poisson",
                "excess %",
                "delivered",
                "loss %",
                "timeouts",
                "fairness",
            ],
            rows,
            precision=3,
            title="Reno vs Vegas across congestion regimes",
        )
    )
    print()
    print("What to look for (the paper's findings):")
    print(" * at 20 clients every protocol tracks the Poisson c.o.v.;")
    print(" * past the ~38-client knee Reno's excess c.o.v. explodes while")
    print("   Vegas stays near the analytic curve;")
    print(" * RED increases the excess c.o.v. and reduces throughput for")
    print("   both protocols;")
    print(" * Vegas shares bandwidth more fairly (Jain index closer to 1).")


if __name__ == "__main__":
    main()
