#!/usr/bin/env python3
"""Where does burstiness come from: heavy tails or TCP?

The self-similarity literature the paper critiques attributes aggregate
burstiness to heavy-tailed source activity.  The paper's counterpoint:
even *smooth* (Poisson) sources become bursty once TCP modulates them.
This example puts both effects on the same axis:

  1. Poisson sources over UDP        -> smooth in, smooth out
  2. Pareto on/off sources over UDP  -> bursty in, bursty out (heavy tails)
  3. Poisson sources over TCP Reno   -> smooth in, bursty out (TCP!)

and reports c.o.v. at the RTT timescale, the multi-timescale c.o.v.
profile, and Hurst estimates for each transported aggregate.

Run:  python examples/selfsimilarity.py          (~1 minute)
"""

from repro.analysis.tables import format_table
from repro.core.burstiness import multiscale_cov
from repro.core.selfsimilar import hurst_aggregate_variance, hurst_rescaled_range
from repro.experiments.config import paper_config
from repro.experiments.scenario import run_scenario

N_CLIENTS = 45
DURATION = 120.0  # Hurst estimators need a long series


def main() -> None:
    cases = [
        ("Poisson / UDP", dict(protocol="udp", traffic="poisson")),
        ("Pareto on-off / UDP", dict(protocol="udp", traffic="pareto_onoff")),
        ("Poisson / TCP Reno", dict(protocol="reno", traffic="poisson")),
        ("Pareto on-off / TCP Reno", dict(protocol="reno", traffic="pareto_onoff")),
    ]
    rows = []
    profiles = {}
    for name, overrides in cases:
        config = paper_config(
            n_clients=N_CLIENTS, duration=DURATION, seed=1, **overrides
        )
        result = run_scenario(config)
        counts = result.bin_counts
        profiles[name] = multiscale_cov(counts, factors=(1, 4, 16, 64))
        rows.append(
            [
                name,
                result.offered_cov,
                result.cov,
                hurst_aggregate_variance(counts),
                hurst_rescaled_range(counts),
                result.loss_percent,
            ]
        )
        print(f"ran {name} ...")

    print()
    print(
        format_table(
            ["workload / transport", "offered cov", "gateway cov", "H (var-time)",
             "H (R/S)", "loss %"],
            rows,
            precision=3,
            title=f"Sources of burstiness ({N_CLIENTS} clients, {DURATION:g}s)",
        )
    )
    print()
    print("multi-timescale c.o.v. (bin aggregation factor m):")
    scale_rows = [
        [name] + [profile.get(m, float("nan")) for m in (1, 4, 16, 64)]
        for name, profile in profiles.items()
    ]
    print(format_table(["case", "m=1", "m=4", "m=16", "m=64"], scale_rows, precision=3))
    print()
    print(
        "Reading: for independent smooth traffic the c.o.v. falls ~1/sqrt(m)\n"
        "as you aggregate in time; heavy-tailed input and TCP modulation both\n"
        "slow that decay, but only TCP does so while the *offered* traffic\n"
        "stays Poisson-smooth -- the paper's point."
    )


if __name__ == "__main__":
    main()
