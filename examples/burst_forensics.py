#!/usr/bin/env python3
"""Burst forensics: which flows caused *this* burst, and why.

The paper's headline number (the c.o.v. of the gateway queue) says the
queue is bursty; it cannot say which flows filled it, or whether a
burst followed the classic droptail failure mode -- a loss wave that
synchronizes many windows, then a synchronized ramp-up that slams the
queue.  The forensics layer answers both, per episode: it segments the
queue-occupancy series into burst episodes, ranks each episode's top
contributing flows (an exact per-packet accountant cross-validated
against a bounded-memory space-saving sketch, the variant a real switch
could afford), and links each burst to the loss-synchronization event
that explains it.

Forty Reno clients congest the 3 Mbps droptail bottleneck; every burst
traces back to a synchronization wave.  The same scenario through a RED
gateway with an adequately provisioned physical buffer (so early drops,
not overflows, do the work) shows the paper's smoothing claim
per-episode: fewer bursts, and fewer of them sync-linked.

A production gateway cannot wait for the run to end: the streaming mode
(``repro-tcp run --forensics-stream``) flushes finalized windows, sync
events, and burst attributions as JSONL *while the simulation runs*,
keeping bounded state -- and the streamed file is byte-identical to a
prefix of what offline mode would emit.  The demo drives the droptail
scenario in sim-time slices and tails the stream between slices, the
way an operator's dashboard would.

Run:  python examples/burst_forensics.py
"""

import io

from repro import paper_config, run_scenario
from repro.experiments.scenario import Scenario


def streaming_demo(base) -> None:
    """Tail the forensics stream while the simulation progresses."""
    scenario = Scenario(base)
    sink = io.StringIO()
    scenario.attach_forensics_stream(sink, interval=1.0)
    print("=== streaming (tailing the JSONL stream mid-run) ===")
    seen = 0
    for until in (4.0, 8.0, 12.0):
        scenario.sim.run(until=until)
        lines = sink.getvalue().splitlines()
        fresh = lines[seen:]
        kinds = {}
        for line in fresh:
            kind = line.split('"type": "')[1].split('"')[0]
            kinds[kind] = kinds.get(kind, 0) + 1
        print(
            f"  t={until:>4g}s: +{len(fresh)} records "
            + "("
            + ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
            + ")"
        )
        seen = len(lines)
    result = scenario.run()  # finish the run and collect
    stream_report = result.forensics
    assert stream_report is not None
    print(
        f"  t={base.duration:>4g}s: run complete, "
        f"{stream_report.records_written} records total, "
        f"{stream_report.n_bursts} burst(s) diagnosed\n"
    )


def main() -> None:
    base = paper_config(n_clients=40, duration=16.0, seed=7, forensics=True)

    print(
        f"{base.n_clients} Reno clients, {base.duration:g}s simulated, "
        f"droptail buffer {base.buffer_capacity} packets\n"
    )

    streaming_demo(base)

    droptail = run_scenario(base)
    report = droptail.forensics
    assert report is not None
    print("=== droptail gateway ===")
    print(report.render(top=3))

    # Same load through RED, with physical headroom above max_th so the
    # gateway operates in its early-drop regime instead of overflowing.
    red = run_scenario(base.with_(queue="red", buffer_capacity=100))
    red_report = red.forensics
    assert red_report is not None
    print()
    print("=== RED gateway (buffer 100) ===")
    print(red_report.render(top=3))

    print()
    print(
        f"droptail: {report.n_sync_linked}/{report.n_bursts} bursts "
        f"sync-linked, {100 * report.burst_time_fraction:.0f}% of the run "
        f"inside a burst\n"
        f"RED:      {red_report.n_sync_linked}/{red_report.n_bursts} bursts "
        f"sync-linked, {100 * red_report.burst_time_fraction:.0f}% of the "
        f"run inside a burst"
    )
    print(
        "Every droptail burst traces back to a synchronization wave; RED "
        "decorrelates\nthe losses, so the queue spikes less often and its "
        "bursts are no longer the\nsynchronized-ramp signature -- the "
        "paper's smoothing claim, per episode."
    )


if __name__ == "__main__":
    main()
