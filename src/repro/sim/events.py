"""Event objects scheduled on the simulator's calendar queue."""

from __future__ import annotations

from typing import Any, Callable, Tuple


class Event:
    """A callback scheduled to fire at a simulated time.

    Events are ordered by ``(time, priority, seq)``.  The sequence number
    is assigned by the simulator at scheduling time, which makes the
    execution order of same-time events deterministic (FIFO within a
    priority class) -- essential for reproducible runs.

    Events support O(1) cancellation: :meth:`cancel` marks the event dead
    and the simulator discards it when it reaches the head of the queue.

    ``owner`` back-references the simulator while the event sits in its
    queue (cleared when the event is popped), so cancelling a queued
    event keeps the simulator's live-event counter exact without any
    queue scan; cancelling an event that already fired is a no-op for
    the counter.

    Instances are free-listed by the simulator: after an event fires
    (or is discarded as cancelled) the run loop may disarm it
    (``callback``/``args`` cleared) and reuse the object for a later
    ``schedule`` call -- but only when a refcount check proves no
    component still holds the handle, so a held Event never changes
    identity under its owner (tests/test_event_pool.py).  The
    ``__slots__`` layout keeps the object dict-free: events are the
    hottest allocation in the simulator.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
        owner: Any = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.owner = owner

    def cancel(self) -> None:
        """Mark this event dead; it will never fire (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            owner = self.owner
            if owner is not None:
                self.owner = None
                # Inlined owner._note_cancelled(): cancellation is a hot
                # path (pacing cancels per send) and the method call
                # costs more than the bookkeeping itself.
                owner._cancelled_pending += 1

    @property
    def pending(self) -> bool:
        """True if the event has not been cancelled."""
        return not self.cancelled

    def sort_key(self) -> Tuple[float, int, int]:
        """Total ordering used by the calendar queue."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.6f} seq={self.seq} {name} {state}>"
