"""Restartable one-shot timers built on the simulator.

TCP needs several of these (retransmission timer, delayed-ACK timer,
Vegas per-RTT timer); this class wraps the cancel/reschedule dance.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event


class Timer:
    """A one-shot timer that can be (re)started and cancelled.

    The callback receives no arguments; bind state via a closure or a
    bound method.  Restarting a pending timer cancels the previous
    expiry, exactly like ns-2's ``TimerHandler::resched``.

    The held :class:`Event` handle is safe against the engine's event
    free list: the engine recycles an event only once nothing outside
    its run loop references it, so ``_event`` can never be silently
    rebound to an unrelated callback (see DESIGN.md section 10).
    """

    __slots__ = ("_sim", "_callback", "_event")

    def __init__(self, sim: Simulator, callback: Callable[[], Any]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        """True if the timer is armed and has not yet fired."""
        return self._event is not None and self._event.pending

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time if armed, else None."""
        if self.pending:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def restart(self, delay: float) -> None:
        """Alias of :meth:`start`, for call sites that read better this way."""
        self.start(delay)

    def cancel(self) -> None:
        """Disarm the timer (idempotent)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
