"""Discrete-event simulation engine.

This package provides the event-driven substrate on which the network
model (:mod:`repro.net`), transport protocols (:mod:`repro.transport`),
and traffic generators (:mod:`repro.traffic`) are built.  It plays the
role that the scheduler core of the *ns* simulator played for the paper's
original experiments.

Public API:

* :class:`~repro.sim.engine.Simulator` -- the event loop (binary-heap
  or timer-wheel scheduler, selected per instance).
* :class:`~repro.sim.events.Event` -- a scheduled callback.
* :class:`~repro.sim.wheel.TimerWheel` -- the large-N fast-path
  pending-event store.
* :class:`~repro.sim.timers.Timer` -- a restartable one-shot timer.
* :class:`~repro.sim.rng.RandomStreams` -- named, reproducible random
  number streams derived from a single root seed.
* :class:`~repro.sim.trace.TraceRecorder` -- structured event tracing.
"""

from repro.sim.engine import Simulator, SimulationError, SCHEDULERS
from repro.sim.events import Event
from repro.sim.rng import RandomStreams
from repro.sim.timers import Timer
from repro.sim.trace import TraceRecorder, TraceRow
from repro.sim.wheel import TimerWheel

__all__ = [
    "Event",
    "RandomStreams",
    "SCHEDULERS",
    "SimulationError",
    "Simulator",
    "Timer",
    "TimerWheel",
    "TraceRecorder",
    "TraceRow",
]
