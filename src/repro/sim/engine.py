"""The discrete-event simulator (event loop).

The engine is a classic calendar-queue simulator: a binary heap of
:class:`~repro.sim.events.Event` objects ordered by
``(time, priority, seq)``.  Components schedule callbacks; the loop pops
them in time order and invokes them.  All model time is in seconds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.events import Event


class SimulationError(RuntimeError):
    """Raised on scheduling errors (e.g. scheduling into the past)."""


class Simulator:
    """Event-driven simulation kernel.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, callback, arg1, arg2)
        sim.run(until=10.0)

    The kernel guarantees:

    * events fire in non-decreasing time order;
    * events scheduled for the same time fire in (priority, insertion)
      order, which makes runs deterministic;
    * cancelled events never fire.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._seq = 0
        self._events_executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of queued events, including cancelled ones not yet popped."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time!r}; clock is already at {self._now!r}"
            )
        event = Event(time, self._seq, callback, args, priority)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is drained."""
        self._drop_cancelled()
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Execute the next live event.  Returns False if none remain."""
        self._drop_cancelled()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        self._events_executed += 1
        event.callback(*event.args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the event loop.

        Args:
            until: stop once the next event would fire strictly after this
                time; the clock is advanced to ``until``.  If None, run
                until the queue drains.
            max_events: optional safety valve on the number of events.

        Returns:
            The simulated time when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        return self._now

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_cancelled(self) -> None:
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
