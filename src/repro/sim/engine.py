"""The discrete-event simulator (event loop).

The engine offers two interchangeable pending-event stores behind one
``scheduler=`` knob:

* ``"heap"`` (default) -- a classic binary heap of
  :class:`~repro.sim.events.Event` objects ordered by
  ``(time, priority, seq)``.  Simple, and the reference semantics.
* ``"wheel"`` -- a hierarchical timer wheel
  (:class:`~repro.sim.wheel.TimerWheel`) for the large-N fast path:
  O(1) scheduling at integer-arithmetic cost instead of O(log n)
  Python-level comparisons per operation.

Both schedulers pop events in exactly the same order -- same times,
same priority and FIFO tie-breaks -- so every simulation produces
identical results under either; ``tests/test_engine_differential.py``
enforces this.  Components schedule callbacks; the loop pops them in
time order and invokes them.  All model time is in seconds.

To cut allocation churn the engine free-lists :class:`Event` objects
(and, via :meth:`Simulator.set_arg_recycler`, the caller's payload
objects such as packets).  An object is recycled only when
``sys.getrefcount`` proves the run loop holds the last reference, so a
component that keeps an event handle (e.g. a pacing list or a timer)
can never observe its event being resurrected for an unrelated
callback; on interpreters without ``getrefcount`` pooling is disabled.

Observability: an :class:`~repro.obs.engineprof.EngineProfiler` can be
attached with :meth:`Simulator.attach_profiler`, after which every
executed callback is timed and attributed to a category.  With no
profiler attached, :meth:`Simulator.run` takes a fast loop that carries
no timing code at all (``benchmarks/bench_obs_overhead.py`` keeps the
disabled-path cost honest).  Constructing with ``debug=True`` swaps in
a slow loop that recounts the live/pending-event invariants after
every event (see :meth:`Simulator.check_invariants`).
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, List, Optional

from repro.sim.events import Event
from repro.sim.wheel import TimerWheel

_getrefcount = getattr(sys, "getrefcount", None)

#: Free-list bound: events are tiny, but a drained queue should not pin
#: an unbounded pile of dead objects.
_POOL_CAP = 4096

#: The scheduler knob's legal values.
SCHEDULERS = ("heap", "wheel")


def _frame_local_refcount() -> Optional[int]:
    """Refcount of an object held by exactly one frame local, as seen by
    ``sys.getrefcount`` called from that frame.

    This is the event-recycling guard's baseline: at the recycle point
    the run loop holds the popped event in one local, so a count above
    this baseline proves some component still holds a handle and the
    event must not be pooled.  Measuring the baseline (instead of
    hardcoding 2) keeps the guard correct if the interpreter's calling
    convention changes; without ``getrefcount`` (PyPy) pooling is off.
    """
    if _getrefcount is None:
        return None
    probe = object()
    return _getrefcount(probe)


def _tuple_member_refcount() -> Optional[int]:
    """Baseline for an object referenced only by one tuple, observed
    while iterating that tuple (the arg-recycling check context)."""
    if _getrefcount is None:
        return None
    count = None
    for item in (object(),):
        count = _getrefcount(item)
    return count


_POOL_BASELINE = _frame_local_refcount()
_ARG_BASELINE = _tuple_member_refcount()


class SimulationError(RuntimeError):
    """Raised on scheduling errors (e.g. scheduling into the past)."""


class Simulator:
    """Event-driven simulation kernel.

    Usage::

        sim = Simulator()                  # or Simulator(scheduler="wheel")
        sim.schedule(1.0, callback, arg1, arg2)
        sim.run(until=10.0)

    The kernel guarantees:

    * events fire in non-decreasing time order;
    * events scheduled for the same time fire in (priority, insertion)
      order, which makes runs deterministic;
    * cancelled events never fire;
    * the guarantees (and the exact event order) are identical under
      both schedulers.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        scheduler: str = "heap",
        debug: bool = False,
    ) -> None:
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}"
            )
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._wheel: Optional[TimerWheel] = (
            TimerWheel(start_time=self._now) if scheduler == "wheel" else None
        )
        self._scheduler = scheduler
        self._debug = bool(debug)
        self._seq = 0
        self._events_executed = 0
        self._cancelled_pending = 0
        self._running = False
        self._profiler: Optional[Any] = None
        self._event_pool: List[Event] = []
        self._recycle_type: Optional[type] = None
        self._recycle_fn: Optional[Callable[[Any], None]] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def scheduler(self) -> str:
        """Which pending-event store this kernel runs on."""
        return self._scheduler

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of *queued* events, cancelled-but-unpopped included.

        This is the raw queue size -- a capacity/memory measure.  A
        cancelled event stays queued until it reaches the front
        (O(1) cancellation), so this over-counts the events that will
        actually fire; use :attr:`live_events` for that.
        """
        if self._wheel is not None:
            return self._wheel.size
        return len(self._queue)

    @property
    def live_events(self) -> int:
        """Number of queued events that will actually fire.

        Exactly ``pending_events`` minus the cancelled events not yet
        discarded from the queue; maintained in O(1) per cancel/pop.
        """
        return self.pending_events - self._cancelled_pending

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def profiler(self) -> Optional[Any]:
        """The attached :class:`EngineProfiler`, if any."""
        return self._profiler

    def attach_profiler(self, profiler: Any) -> Any:
        """Attach an engine profiler (replacing any previous one).

        Subsequent :meth:`run`/:meth:`step` calls route every executed
        event through ``profiler.note_event``.  Returns the profiler.
        """
        self._profiler = profiler
        return profiler

    def detach_profiler(self) -> None:
        """Remove the profiler; the engine returns to the fast loop."""
        self._profiler = None

    # NOTE: Event.cancel() increments ``_cancelled_pending`` directly
    # (inlined for speed); pops that discard cancelled events decrement
    # it.  ``live_events`` is the only consumer.

    # ------------------------------------------------------------------
    # Pooling
    # ------------------------------------------------------------------
    def set_arg_recycler(
        self, arg_type: type, recycle: Callable[[Any], None]
    ) -> None:
        """Free-list the caller's event payloads of ``arg_type``.

        After each executed event, any argument whose concrete type is
        exactly ``arg_type`` and whose refcount proves the engine holds
        the last reference is handed to ``recycle`` for reuse (the
        scenario wires the packet factory's free list here).  Payloads
        still referenced anywhere -- a retransmission buffer, a trace, a
        test fixture -- are never recycled.  No-op on interpreters
        without ``sys.getrefcount``.
        """
        if _ARG_BASELINE is None:  # pragma: no cover - non-CPython only
            return
        self._recycle_type = arg_type
        self._recycle_fn = recycle

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time!r}; clock is already at {self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.owner = self
        else:
            # owner passed positionally: keyword calls cost ~10x more per
            # Event and this is the hottest allocation in the simulator.
            event = Event(time, seq, callback, args, priority, self)
        wheel = self._wheel
        if wheel is None:
            heapq.heappush(self._queue, event)
        else:
            wheel.push((time, priority, seq, event))
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is drained."""
        if self._wheel is not None:
            entry = self._wheel_head_live()
            return None if entry is None else entry[0]
        self._drop_cancelled()
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Execute the next live event.  Returns False if none remain."""
        if self._wheel is not None:
            entry = self._wheel_head_live()
            if entry is None:
                return False
            self._wheel.pop()
            event = entry[3]
            entry = None
        else:
            self._drop_cancelled()
            if not self._queue:
                return False
            event = heapq.heappop(self._queue)
        event.owner = None
        self._now = event.time
        self._events_executed += 1
        profiler = self._profiler
        if profiler is None:
            event.callback(*event.args)
        else:
            clock = profiler.clock
            start = clock()
            event.callback(*event.args)
            profiler.note_event(event.callback, clock() - start, self.pending_events)
        recycle_type = self._recycle_type
        if recycle_type is not None:
            recycle = self._recycle_fn
            for arg in event.args:
                if type(arg) is recycle_type and _getrefcount(arg) == _ARG_BASELINE:
                    recycle(arg)
        pool = self._event_pool
        if (
            _POOL_BASELINE is not None
            and len(pool) < _POOL_CAP
            and _getrefcount(event) == _POOL_BASELINE
        ):
            event.callback = None
            event.args = None
            pool.append(event)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the event loop.

        Args:
            until: stop once the next event would fire strictly after this
                time; the clock is advanced to ``until``.  If None, run
                until the queue drains.
            max_events: optional safety valve on the number of events.

        Returns:
            The simulated time when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if self._debug:
                return self._run_debug(until, max_events)
            if self._wheel is not None:
                if self._profiler is None:
                    return self._run_fast_wheel(until, max_events)
                return self._run_profiled_wheel(until, max_events)
            if self._profiler is None:
                return self._run_fast(until, max_events)
            return self._run_profiled(until, max_events)
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Heap loops
    # ------------------------------------------------------------------
    def _run_fast(self, until: Optional[float], max_events: Optional[int]) -> float:
        """The un-instrumented loop: no timing code on the hot path."""
        queue = self._queue
        pool = self._event_pool
        getrefcount = _getrefcount
        baseline = _POOL_BASELINE
        arg_baseline = _ARG_BASELINE
        recycle_type = self._recycle_type
        recycle = self._recycle_fn
        heappop = heapq.heappop
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            while queue and queue[0].cancelled:
                dead = heappop(queue)
                self._cancelled_pending -= 1
                if (
                    baseline is not None
                    and len(pool) < _POOL_CAP
                    and getrefcount(dead) == baseline
                ):
                    dead.callback = None
                    dead.args = None
                    pool.append(dead)
            if not queue:
                if until is not None and until > self._now:
                    self._now = until
                break
            event = queue[0]
            if until is not None and event.time > until:
                self._now = until
                break
            heappop(queue)
            event.owner = None
            self._now = event.time
            self._events_executed += 1
            event.callback(*event.args)
            if recycle_type is not None:
                for arg in event.args:
                    if type(arg) is recycle_type and getrefcount(arg) == arg_baseline:
                        recycle(arg)
            if (
                baseline is not None
                and len(pool) < _POOL_CAP
                and getrefcount(event) == baseline
            ):
                event.callback = None
                event.args = None
                pool.append(event)
            executed += 1
        return self._now

    def _run_profiled(
        self, until: Optional[float], max_events: Optional[int]
    ) -> float:
        """The profiled loop: every callback timed and categorized."""
        profiler = self._profiler
        clock = profiler.clock
        queue = self._queue
        pool = self._event_pool
        getrefcount = _getrefcount
        baseline = _POOL_BASELINE
        arg_baseline = _ARG_BASELINE
        recycle_type = self._recycle_type
        recycle = self._recycle_fn
        heappop = heapq.heappop
        executed = 0
        profiler.begin_run(self._now)
        loop_start = clock()
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                while queue and queue[0].cancelled:
                    dead = heappop(queue)
                    self._cancelled_pending -= 1
                    if (
                        baseline is not None
                        and len(pool) < _POOL_CAP
                        and getrefcount(dead) == baseline
                    ):
                        dead.callback = None
                        dead.args = None
                        pool.append(dead)
                if not queue:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                event = queue[0]
                if until is not None and event.time > until:
                    self._now = until
                    break
                heappop(queue)
                event.owner = None
                self._now = event.time
                self._events_executed += 1
                depth = len(queue)
                start = clock()
                event.callback(*event.args)
                profiler.note_event(event.callback, clock() - start, depth)
                if recycle_type is not None:
                    for arg in event.args:
                        if (
                            type(arg) is recycle_type
                            and getrefcount(arg) == arg_baseline
                        ):
                            recycle(arg)
                if (
                    baseline is not None
                    and len(pool) < _POOL_CAP
                    and getrefcount(event) == baseline
                ):
                    event.callback = None
                    event.args = None
                    pool.append(event)
                executed += 1
        finally:
            profiler.add_run_wall(clock() - loop_start)
            profiler.end_run(self._now)
        return self._now

    # ------------------------------------------------------------------
    # Wheel loops
    # ------------------------------------------------------------------
    def _run_fast_wheel(
        self, until: Optional[float], max_events: Optional[int]
    ) -> float:
        """Un-instrumented loop over the timer wheel.

        The wheel's peek/pop fast path is inlined: whenever the ready
        heap is non-empty its head *is* the global minimum (entries
        still in wheel slots are strictly later), so ``peek()`` --
        which only advances the cursor on an empty ready heap -- is
        called solely to refill.  ``_refill`` rebinds ``wheel._ready``,
        hence the local ``ready`` refresh after every ``peek()``.
        """
        wheel = self._wheel
        peek = wheel.peek
        ready = wheel._ready
        heappop = heapq.heappop
        pool = self._event_pool
        getrefcount = _getrefcount
        baseline = _POOL_BASELINE
        arg_baseline = _ARG_BASELINE
        recycle_type = self._recycle_type
        recycle = self._recycle_fn
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            if ready:
                entry = ready[0]
            else:
                entry = peek()
                ready = wheel._ready
            while entry is not None and entry[3].cancelled:
                heappop(ready)
                wheel._size -= 1
                self._cancelled_pending -= 1
                dead = entry[3]
                entry = None
                if (
                    baseline is not None
                    and len(pool) < _POOL_CAP
                    and getrefcount(dead) == baseline
                ):
                    dead.callback = None
                    dead.args = None
                    pool.append(dead)
                if ready:
                    entry = ready[0]
                else:
                    entry = peek()
                    ready = wheel._ready
            if entry is None:
                if until is not None and until > self._now:
                    self._now = until
                break
            time = entry[0]
            if until is not None and time > until:
                self._now = until
                break
            heappop(ready)
            wheel._size -= 1
            event = entry[3]
            entry = None
            event.owner = None
            self._now = time
            self._events_executed += 1
            event.callback(*event.args)
            if recycle_type is not None:
                for arg in event.args:
                    if type(arg) is recycle_type and getrefcount(arg) == arg_baseline:
                        recycle(arg)
            if (
                baseline is not None
                and len(pool) < _POOL_CAP
                and getrefcount(event) == baseline
            ):
                event.callback = None
                event.args = None
                pool.append(event)
            executed += 1
        return self._now

    def _run_profiled_wheel(
        self, until: Optional[float], max_events: Optional[int]
    ) -> float:
        """Profiled loop over the timer wheel (same inlined fast path
        as :meth:`_run_fast_wheel`)."""
        profiler = self._profiler
        clock = profiler.clock
        wheel = self._wheel
        peek = wheel.peek
        ready = wheel._ready
        heappop = heapq.heappop
        pool = self._event_pool
        getrefcount = _getrefcount
        baseline = _POOL_BASELINE
        arg_baseline = _ARG_BASELINE
        recycle_type = self._recycle_type
        recycle = self._recycle_fn
        executed = 0
        profiler.begin_run(self._now)
        loop_start = clock()
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                if ready:
                    entry = ready[0]
                else:
                    entry = peek()
                    ready = wheel._ready
                while entry is not None and entry[3].cancelled:
                    heappop(ready)
                    wheel._size -= 1
                    self._cancelled_pending -= 1
                    dead = entry[3]
                    entry = None
                    if (
                        baseline is not None
                        and len(pool) < _POOL_CAP
                        and getrefcount(dead) == baseline
                    ):
                        dead.callback = None
                        dead.args = None
                        pool.append(dead)
                    if ready:
                        entry = ready[0]
                    else:
                        entry = peek()
                        ready = wheel._ready
                if entry is None:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                time = entry[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heappop(ready)
                wheel._size -= 1
                event = entry[3]
                entry = None
                event.owner = None
                self._now = time
                self._events_executed += 1
                depth = wheel._size
                start = clock()
                event.callback(*event.args)
                profiler.note_event(event.callback, clock() - start, depth)
                if recycle_type is not None:
                    for arg in event.args:
                        if (
                            type(arg) is recycle_type
                            and getrefcount(arg) == arg_baseline
                        ):
                            recycle(arg)
                if (
                    baseline is not None
                    and len(pool) < _POOL_CAP
                    and getrefcount(event) == baseline
                ):
                    event.callback = None
                    event.args = None
                    pool.append(event)
                executed += 1
        finally:
            profiler.add_run_wall(clock() - loop_start)
            profiler.end_run(self._now)
        return self._now

    # ------------------------------------------------------------------
    # Debug loop
    # ------------------------------------------------------------------
    def _run_debug(
        self, until: Optional[float], max_events: Optional[int]
    ) -> float:
        """Slow loop for ``debug=True``: invariants after every event."""
        self.check_invariants()
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                if until is not None and until > self._now:
                    self._now = until
                break
            if until is not None and next_time > until:
                self._now = until
                break
            self.step()
            executed += 1
            self.check_invariants()
        return self._now

    def check_invariants(self) -> None:
        """Recount the queue and verify the O(1) event accounting.

        Raises :class:`SimulationError` if the incrementally maintained
        ``pending_events``/``live_events`` counters diverge from a full
        recount, or if the event free list holds an event that is still
        armed or still queued (a resurrected event).  Cheap enough for
        tests, far too slow for real runs -- the ``debug=True`` loop
        calls it after every event.
        """
        if self._wheel is not None:
            queued = [entry[3] for entry in self._wheel.entries()]
        else:
            queued = list(self._queue)
        live = sum(1 for event in queued if not event.cancelled)
        if len(queued) != self.pending_events:
            raise SimulationError(
                f"pending_events diverged: counter says {self.pending_events}, "
                f"recount says {len(queued)}"
            )
        if live != self.live_events:
            raise SimulationError(
                f"live_events diverged: counter says {self.live_events}, "
                f"recount says {live} ({len(queued)} queued)"
            )
        pooled = {id(event) for event in self._event_pool}
        for event in self._event_pool:
            if (
                event.callback is not None
                or event.args is not None
                or event.owner is not None
            ):
                raise SimulationError(f"pooled event is still armed: {event!r}")
        for event in queued:
            if id(event) in pooled:
                raise SimulationError(f"queued event is also pooled: {event!r}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _wheel_head_live(self) -> Optional[Any]:
        """The wheel's head entry, discarding cancelled ones (with the
        same lazy-pop accounting as the heap's :meth:`_drop_cancelled`)."""
        wheel = self._wheel
        pool = self._event_pool
        entry = wheel.peek()
        while entry is not None and entry[3].cancelled:
            wheel.pop()
            self._cancelled_pending -= 1
            dead = entry[3]
            entry = None
            if (
                _POOL_BASELINE is not None
                and len(pool) < _POOL_CAP
                and _getrefcount(dead) == _POOL_BASELINE
            ):
                dead.callback = None
                dead.args = None
                pool.append(dead)
            entry = wheel.peek()
        return entry

    def _drop_cancelled(self) -> None:
        queue = self._queue
        pool = self._event_pool
        while queue and queue[0].cancelled:
            dead = heapq.heappop(queue)
            self._cancelled_pending -= 1
            if (
                _POOL_BASELINE is not None
                and len(pool) < _POOL_CAP
                and _getrefcount(dead) == _POOL_BASELINE
            ):
                dead.callback = None
                dead.args = None
                pool.append(dead)
