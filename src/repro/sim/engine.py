"""The discrete-event simulator (event loop).

The engine is a classic calendar-queue simulator: a binary heap of
:class:`~repro.sim.events.Event` objects ordered by
``(time, priority, seq)``.  Components schedule callbacks; the loop pops
them in time order and invokes them.  All model time is in seconds.

Observability: an :class:`~repro.obs.engineprof.EngineProfiler` can be
attached with :meth:`Simulator.attach_profiler`, after which every
executed callback is timed and attributed to a category.  With no
profiler attached, :meth:`Simulator.run` takes a fast loop that carries
no timing code at all (``benchmarks/bench_obs_overhead.py`` keeps the
disabled-path cost honest).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.events import Event


class SimulationError(RuntimeError):
    """Raised on scheduling errors (e.g. scheduling into the past)."""


class Simulator:
    """Event-driven simulation kernel.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, callback, arg1, arg2)
        sim.run(until=10.0)

    The kernel guarantees:

    * events fire in non-decreasing time order;
    * events scheduled for the same time fire in (priority, insertion)
      order, which makes runs deterministic;
    * cancelled events never fire.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._seq = 0
        self._events_executed = 0
        self._cancelled_pending = 0
        self._running = False
        self._profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of *queued* events, cancelled-but-unpopped included.

        This is the raw heap size -- a capacity/memory measure.  A
        cancelled event stays in the heap until it reaches the front
        (O(1) cancellation), so this over-counts the events that will
        actually fire; use :attr:`live_events` for that.
        """
        return len(self._queue)

    @property
    def live_events(self) -> int:
        """Number of queued events that will actually fire.

        Exactly ``pending_events`` minus the cancelled events not yet
        discarded from the heap; maintained in O(1) per cancel/pop.
        """
        return len(self._queue) - self._cancelled_pending

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def profiler(self) -> Optional[Any]:
        """The attached :class:`EngineProfiler`, if any."""
        return self._profiler

    def attach_profiler(self, profiler: Any) -> Any:
        """Attach an engine profiler (replacing any previous one).

        Subsequent :meth:`run`/:meth:`step` calls route every executed
        event through ``profiler.note_event``.  Returns the profiler.
        """
        self._profiler = profiler
        return profiler

    def detach_profiler(self) -> None:
        """Remove the profiler; the engine returns to the fast loop."""
        self._profiler = None

    # NOTE: Event.cancel() increments ``_cancelled_pending`` directly
    # (inlined for speed); pops that discard cancelled events decrement
    # it.  ``live_events`` is the only consumer.

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time!r}; clock is already at {self._now!r}"
            )
        # owner passed positionally: keyword calls cost ~10x more per
        # Event and this is the hottest allocation in the simulator.
        event = Event(time, self._seq, callback, args, priority, self)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is drained."""
        self._drop_cancelled()
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Execute the next live event.  Returns False if none remain."""
        self._drop_cancelled()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        event.owner = None
        self._now = event.time
        self._events_executed += 1
        profiler = self._profiler
        if profiler is None:
            event.callback(*event.args)
        else:
            clock = profiler.clock
            start = clock()
            event.callback(*event.args)
            profiler.note_event(event.callback, clock() - start, len(self._queue))
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the event loop.

        Args:
            until: stop once the next event would fire strictly after this
                time; the clock is advanced to ``until``.  If None, run
                until the queue drains.
            max_events: optional safety valve on the number of events.

        Returns:
            The simulated time when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if self._profiler is None:
                return self._run_fast(until, max_events)
            return self._run_profiled(until, max_events)
        finally:
            self._running = False

    def _run_fast(self, until: Optional[float], max_events: Optional[int]) -> float:
        """The un-instrumented loop: no timing code on the hot path."""
        queue = self._queue
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            while queue and queue[0].cancelled:
                heapq.heappop(queue)
                self._cancelled_pending -= 1
            if not queue:
                if until is not None and until > self._now:
                    self._now = until
                break
            event = queue[0]
            if until is not None and event.time > until:
                self._now = until
                break
            heapq.heappop(queue)
            event.owner = None
            self._now = event.time
            self._events_executed += 1
            event.callback(*event.args)
            executed += 1
        return self._now

    def _run_profiled(
        self, until: Optional[float], max_events: Optional[int]
    ) -> float:
        """The profiled loop: every callback timed and categorized."""
        profiler = self._profiler
        clock = profiler.clock
        queue = self._queue
        executed = 0
        profiler.begin_run(self._now)
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                while queue and queue[0].cancelled:
                    heapq.heappop(queue)
                    self._cancelled_pending -= 1
                if not queue:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                event = queue[0]
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(queue)
                event.owner = None
                self._now = event.time
                self._events_executed += 1
                depth = len(queue)
                start = clock()
                event.callback(*event.args)
                profiler.note_event(event.callback, clock() - start, depth)
                executed += 1
        finally:
            profiler.end_run(self._now)
        return self._now

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_cancelled(self) -> None:
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
            self._cancelled_pending -= 1
