"""Hierarchical timer wheel: the large-N pending-event store.

With hundreds of clients the simulator's schedule/cancel traffic is
dominated by near-future events -- transmission completions, pacing
ticks, source ticks, and TCP retransmission timers a few RTTs out.  A
binary heap pays O(log n) *Python-level* ``Event.__lt__`` calls per
pop; at n_clients=500 the heap holds thousands of events and those
comparisons dominate the run.  The timer wheel replaces them with O(1)
list appends at integer-arithmetic cost, falling back to a heap only
for far-future events beyond the wheel horizon.

Layout (classic two-level hashed wheel, Varghese & Lauck 1987):

* ``_ready`` -- a small heap of entries whose tick has been reached;
  the only structure the pop path touches.
* level 0 -- ``l0_slots`` buckets of one tick each (default tick
  resolution 0.5 ms, so 128 ms of horizon): transmission/pacing events.
* level 1 -- ``l1_slots`` buckets of ``l0_slots`` ticks each
  (default horizon ~33 s): retransmission timers, source restarts.
* ``_overflow`` -- a plain heap for everything beyond level 1.

Entries are ``(time, priority, seq, event)`` tuples, so every ordering
decision is a C-level tuple comparison (``seq`` is unique, so the
``event`` field never participates).  When a bucket's tick is reached
the bucket is sorted and becomes the ready heap; because the sort key
is the engine's full ``(time, priority, seq)`` key, the wheel pops
events in *exactly* the order the binary heap would -- same times,
same FIFO tie-breaks -- which is what makes the two schedulers
differentially testable (see tests/test_engine_differential.py).

Cancellation stays O(1) and lazy exactly as with the heap: cancelled
entries are discarded when they surface at the head of ``_ready``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Iterator, List, Optional, Tuple

#: A queued event: ``(time, priority, seq, event)``.  Compared as a
#: plain tuple; ``seq`` is unique so comparison never reaches ``event``.
WheelEntry = Tuple[float, int, int, Any]


class TimerWheel:
    """Two-level hashed timer wheel with an overflow heap.

    The public surface is intentionally tiny -- ``push``, ``peek``,
    ``pop`` and ``size`` -- because the :class:`~repro.sim.engine.Simulator`
    run loop is the only client.
    """

    __slots__ = (
        "_inv_resolution",
        "_n0",
        "_n1",
        "_cur",
        "_ready",
        "_l0",
        "_l1",
        "_overflow",
        "_l0_count",
        "_l1_count",
        "_size",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        resolution: float = 5e-4,
        l0_slots: int = 256,
        l1_slots: int = 256,
    ) -> None:
        if start_time < 0:
            raise ValueError("timer wheel requires a non-negative start time")
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        if l0_slots < 2 or l1_slots < 2:
            raise ValueError("wheel levels need at least two slots")
        self._inv_resolution = 1.0 / resolution
        self._n0 = l0_slots
        self._n1 = l1_slots
        # The cursor tick: every entry with tick <= _cur lives in _ready.
        self._cur = int(start_time * self._inv_resolution)
        self._ready: List[WheelEntry] = []
        self._l0: List[List[WheelEntry]] = [[] for _ in range(l0_slots)]
        self._l1: List[List[WheelEntry]] = [[] for _ in range(l1_slots)]
        self._overflow: List[WheelEntry] = []
        self._l0_count = 0
        self._l1_count = 0
        self._size = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total queued entries (cancelled-but-undiscarded included)."""
        return self._size

    def entries(self) -> Iterator[WheelEntry]:
        """Every queued entry, in no particular order (debug/invariants)."""
        for entry in self._ready:
            yield entry
        for slot in self._l0:
            for entry in slot:
                yield entry
        for slot in self._l1:
            for entry in slot:
                yield entry
        for entry in self._overflow:
            yield entry

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(self, entry: WheelEntry) -> None:
        """Insert an entry.  O(1) within the wheel horizon."""
        tick = int(entry[0] * self._inv_resolution)
        cur = self._cur
        self._size += 1
        if tick <= cur:
            # Due this tick (or the cursor already passed it because the
            # clock advanced past empty ticks): straight to ready.
            heappush(self._ready, entry)
            return
        n0 = self._n0
        if tick - cur <= n0:
            self._l0[tick % n0].append(entry)
            self._l0_count += 1
            return
        block = tick // n0
        if block - cur // n0 <= self._n1:
            self._l1[block % self._n1].append(entry)
            self._l1_count += 1
            return
        heappush(self._overflow, entry)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def peek(self) -> Optional[WheelEntry]:
        """The earliest entry, or None when empty.  Advances the cursor
        (pouring buckets into the ready heap) as needed."""
        ready = self._ready
        if ready or self._refill():
            return self._ready[0]
        return None

    def pop(self) -> WheelEntry:
        """Remove and return the earliest entry (``peek`` must have
        returned non-None)."""
        self._size -= 1
        return heappop(self._ready)

    # ------------------------------------------------------------------
    # Cursor advancement
    # ------------------------------------------------------------------
    def _refill(self) -> bool:
        """Advance the cursor until ``_ready`` is non-empty.

        Returns False when the wheel holds nothing at all.
        """
        l0 = self._l0
        n0 = self._n0
        while self._l0_count or self._l1_count or self._overflow:
            cur = self._cur
            boundary = (cur // n0 + 1) * n0
            if self._l0_count:
                tick = cur + 1
                while tick < boundary:
                    slot = l0[tick % n0]
                    if slot:
                        self._cur = tick
                        self._l0_count -= len(slot)
                        l0[tick % n0] = []
                        # A sorted list is a valid binary heap.
                        slot.sort()
                        self._ready = slot
                        return True
                    tick += 1
                self._enter_block(boundary)
            elif self._l1_count:
                self._enter_block(boundary)
            else:
                # Only far-future entries remain: jump the cursor
                # straight to the block holding the earliest one.
                target = int(self._overflow[0][0] * self._inv_resolution) // n0
                self._enter_block(max(boundary, target * n0))
            if self._ready:
                return True
        return False

    def _enter_block(self, start_tick: int) -> None:
        """Move the cursor to a level-0 block boundary: refill level 1
        from the overflow heap, cascade the block's level-1 bucket down
        into level 0, and pour entries already due into ready."""
        n0 = self._n0
        n1 = self._n1
        inv = self._inv_resolution
        self._cur = start_tick
        block = start_tick // n0
        l0 = self._l0
        # Cascade this block's level-1 bucket down *before* draining the
        # overflow heap: a drained entry for block ``block + n1`` hashes
        # to the same level-1 slot, and cascading it here would plant a
        # far-future entry in level 0 (early delivery).
        slot = self._l1[block % n1]
        if slot:
            self._l1[block % n1] = []
            self._l1_count -= len(slot)
            ready = self._ready
            for entry in slot:
                tick = int(entry[0] * inv)
                if tick <= start_tick:
                    heappush(ready, entry)
                else:
                    l0[tick % n0].append(entry)
                    self._l0_count += 1
        # Blocks up to block + n1 are now addressable by level 1.  The
        # overflow heap is time-ordered, hence block-ordered, so a
        # prefix drain suffices.  Entries for the block being entered
        # (reachable when the cursor jumps straight to the overflow
        # top's block) skip level 1 -- its bucket has already cascaded.
        overflow = self._overflow
        horizon = block + n1
        while overflow and int(overflow[0][0] * inv) // n0 <= horizon:
            entry = heappop(overflow)
            tick = int(entry[0] * inv)
            entry_block = tick // n0
            if entry_block == block:
                if tick <= start_tick:
                    heappush(self._ready, entry)
                else:
                    l0[tick % n0].append(entry)
                    self._l0_count += 1
            else:
                self._l1[entry_block % n1].append(entry)
                self._l1_count += 1
        # Entries scheduled directly into level 0 for the boundary tick.
        slot = l0[start_tick % n0]
        if slot:
            l0[start_tick % n0] = []
            self._l0_count -= len(slot)
            ready = self._ready
            for entry in slot:
                heappush(ready, entry)
