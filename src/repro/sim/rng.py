"""Reproducible named random-number streams.

Every stochastic component (each traffic source, each RED queue, ...)
draws from its own stream, derived deterministically from a single root
seed and the stream's name.  This gives two properties the experiments
rely on:

* *reproducibility*: the same root seed always yields the same run;
* *independence under reconfiguration*: adding a component does not
  perturb the variates other components see, so e.g. changing the queue
  discipline does not change the offered traffic.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(root_seed, name)``.

    Uses SHA-256 rather than ``hash()`` so the derivation is stable
    across processes and Python versions (``PYTHONHASHSEED`` does not
    affect it).
    """
    digest = hashlib.sha256(f"{root_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A registry of named :class:`random.Random` streams.

    Example::

        streams = RandomStreams(seed=1)
        src_rng = streams.stream("client-3/poisson")
        gap = src_rng.expovariate(10.0)
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so components may share a stream if (and only if) they
        ask for the same name.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self._seed, name))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child registry rooted at ``(seed, name)``.

        Useful for replicated experiments: each replica gets a distinct
        but deterministic universe of streams.
        """
        return RandomStreams(derive_seed(self._seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={len(self._streams)})"
