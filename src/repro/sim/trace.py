"""Structured trace recording.

A :class:`TraceRecorder` collects typed rows ``(time, category, fields)``
during a run -- packet arrivals, drops, cwnd changes, timer events --
and supports filtering and CSV export.  It is the Python analogue of
ns-2's trace files, but kept in memory and queryable.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRow:
    """One trace record."""

    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Field accessor with a default, like ``dict.get``."""
        return self.fields.get(key, default)


class TraceRecorder:
    """In-memory trace sink with per-category filtering.

    Tracing every packet of a large run is memory-hungry, so categories
    must be explicitly enabled; rows for disabled categories are dropped
    at the call site with one dict lookup.
    """

    def __init__(self, enabled: Optional[Iterable[str]] = None) -> None:
        self._rows: List[TraceRow] = []
        self._enabled = set(enabled) if enabled is not None else set()
        self._record_all = enabled is None

    def enable(self, category: str) -> None:
        """Start recording rows of ``category``."""
        self._record_all = False
        self._enabled.add(category)

    def disable(self, category: str) -> None:
        """Stop recording rows of ``category``."""
        self._record_all = False
        self._enabled.discard(category)

    def wants(self, category: str) -> bool:
        """True if rows of ``category`` would be recorded."""
        return self._record_all or category in self._enabled

    def record(self, time: float, category: str, **fields: Any) -> None:
        """Record one row (no-op if the category is disabled)."""
        if self.wants(category):
            self._rows.append(TraceRow(time, category, fields))

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[TraceRow]:
        return iter(self._rows)

    def rows(self, category: Optional[str] = None) -> List[TraceRow]:
        """All rows, or only those of one category, in time order."""
        if category is None:
            return list(self._rows)
        return [row for row in self._rows if row.category == category]

    def clear(self) -> None:
        """Drop all recorded rows."""
        self._rows.clear()

    def to_csv(self, path: str, category: Optional[str] = None) -> int:
        """Write rows to ``path`` as CSV; returns the number written.

        The column set is the union of field names across the selected
        rows, preceded by ``time`` and ``category``.
        """
        rows = self.rows(category)
        field_names: List[str] = []
        seen = set()
        for row in rows:
            for key in row.fields:
                if key not in seen:
                    seen.add(key)
                    field_names.append(key)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time", "category", *field_names])
            for row in rows:
                writer.writerow(
                    [row.time, row.category]
                    + [row.fields.get(name, "") for name in field_names]
                )
        return len(rows)
