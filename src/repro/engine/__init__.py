"""The vectorized flow-batch engine (``engine="batch"``).

This package holds the large-N fast path for homogeneous TCP scenarios:

* :mod:`repro.engine.transitions` -- the pure TCP window/RTT arithmetic,
  shared verbatim by the per-flow object senders
  (:mod:`repro.transport.tcp_base`) and the batch engine, so the two
  implementations cannot drift apart expression by expression;
* :mod:`repro.engine.flowbatch` -- the struct-of-arrays per-flow state
  (:class:`~repro.engine.flowbatch.FlowBatch`) plus the Reno/Vegas batch
  policies operating on it;
* :mod:`repro.engine.batch` -- :class:`~repro.engine.batch.BatchScenario`,
  the fused event graph that replays the object engine's physics with a
  fraction of its simulator events.

``tests/test_batch_differential.py`` pins the batch engine to the object
engine cell by cell: identical :class:`ScenarioMetrics`, identical obs
and forensics streams.

The submodule imports are lazy (PEP 562): ``repro.transport.tcp_base``
imports :mod:`repro.engine.transitions` while ``flowbatch``/``batch``
import the transport layer, so an eager re-export here would be a cycle.
"""

#: The engine knob's legal values (mirrors ``repro.sim.engine.SCHEDULERS``).
ENGINES = ("object", "batch")

__all__ = ["BatchScenario", "ENGINES", "FlowBatch"]


def __getattr__(name):
    if name == "FlowBatch":
        from repro.engine.flowbatch import FlowBatch

        return FlowBatch
    if name == "BatchScenario":
        from repro.engine.batch import BatchScenario

        return BatchScenario
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
