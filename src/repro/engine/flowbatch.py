"""Struct-of-arrays per-flow TCP state for the batch engine.

:class:`FlowBatch` holds the state of N homogeneous TCP flows as
parallel arrays: numpy float64 for the fields the driver scans as a
vector (retransmit deadlines, Poisson next-arrival times), plain Python
lists for the fields only ever read one flow at a time (cwnd, ssthresh,
RTT estimators, dupack counters -- scalar numpy indexing would box an
``np.float64`` per access), and per-flow Python containers for the
bookkeeping that must stay exact Python types (sequence numbers are
ints so they never leak ``np.int64`` into JSON-serialized metrics;
send-time maps are dicts).

The ACK/timeout state machine mirrors
:class:`repro.transport.tcp_base.TcpSender` *call for call* -- same
statement order, same expressions (via :mod:`repro.engine.transitions`),
same observability publish points -- so a batch run produces
bit-identical per-flow statistics, cwnd logs, obs series and forensics
events.  ``RenoFlowBatch`` and ``VegasFlowBatch`` mirror the
``RenoSender`` / ``VegasSender`` policy hooks the same way.

The transport side (how an ``output`` packet reaches the gateway, how
timers and arrivals are scheduled) is delegated to a driver object
(:class:`repro.engine.batch.BatchScenario`) through three callbacks:
``transmit(i, packet)``, ``timer_arm(i, deadline)`` and the shared
simulator clock.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.engine import transitions
from repro.transport.tcp_base import TcpParams, TcpSenderStats
from repro.transport.vegas import VegasParams, VegasSender

_INF = math.inf


class FlowBatch:
    """N homogeneous TCP flows in struct-of-arrays layout."""

    protocol_name = "tcp"

    def __init__(
        self,
        n_flows: int,
        params: TcpParams,
        driver,
        trace_flows=(),
    ) -> None:
        params.validate()
        if params.pacing:
            raise ValueError("the batch engine does not support pacing")
        self.n = n_flows
        self.params = params
        self.driver = driver  # supplies .sim, .transmit, .timer_arm
        # Hot-path constant (send_much inlines effective_window).
        self._adv = float(params.advertised_window)

        # --- struct-of-arrays core -------------------------------------
        # One parallel array per field.  Fields the driver scans as a
        # vector (timer/arrival cohorts) are numpy float64; fields only
        # ever touched one flow at a time are plain Python lists --
        # scalar indexing into a numpy array boxes an np.float64 per
        # access (~100ns), which dominates the fused handlers at the
        # batch engine's event rate (see DESIGN.md section 15).
        self.cwnd: List[float] = [float(params.initial_cwnd)] * n_flows
        self.ssthresh: List[float] = [float(params.initial_ssthresh)] * n_flows
        # NaN = "no sample yet" (the object engine's ``srtt is None``).
        self.srtt: List[float] = [math.nan] * n_flows
        self.rttvar: List[float] = [0.0] * n_flows
        self.backoff: List[float] = [1.0] * n_flows
        self.dupacks: List[int] = [0] * n_flows
        # inf = timer disarmed; finite = absolute expiry time.  This is
        # the array the driver's timer cohort scans with np.nonzero.
        self.rtx_deadline = np.full(n_flows, _INF, dtype=np.float64)
        # Head-of-buffer pending Poisson arrival (inf = none pending);
        # maintained by the driver's arrival machinery.
        self.next_arrival = np.full(n_flows, _INF, dtype=np.float64)

        # --- exact-integer sequence bookkeeping (Python ints) ----------
        self.last_ack: List[int] = [-1] * n_flows
        self.t_seqno: List[int] = [0] * n_flows
        self.maxseq: List[int] = [-1] * n_flows
        self.app_total: List[int] = [0] * n_flows

        # --- RTT sampling (Karn) ---------------------------------------
        self.rtt_seq: List[Optional[int]] = [None] * n_flows
        self.rtt_sent_at: List[float] = [0.0] * n_flows
        self.last_ack_rtt: List[Optional[float]] = [None] * n_flows

        # --- per-flow maps and logs ------------------------------------
        self.send_times: List[Dict[int, float]] = [dict() for _ in range(n_flows)]
        self.transmit_counts: List[Dict[int, int]] = [dict() for _ in range(n_flows)]
        self.generation_times = [deque() for _ in range(n_flows)]
        self.stats = [TcpSenderStats() for _ in range(n_flows)]
        trace_set = set(trace_flows)
        self.trace_cwnd = [i in trace_set for i in range(n_flows)]
        self.cwnd_log = [
            [(0.0, float(params.initial_cwnd))] if i in trace_set else []
            for i in range(n_flows)
        ]

        # Observability: FlowProbe per flow (or None), forensics probe.
        self.obs = [None] * n_flows
        self.forensics = None

    # ------------------------------------------------------------------
    # Observability (mirrors TcpSender.attach_probe / note_state)
    # ------------------------------------------------------------------
    def attach_probe(self, i: int, probe):
        self.obs[i] = probe
        probe.on_cwnd(self.driver.sim.now, float(self.cwnd[i]), float(self.ssthresh[i]))
        return probe

    def note_state(self, i: int, state: str, now: float) -> None:
        obs = self.obs[i]
        if obs is not None:
            obs.on_state(now, state)
        forensics = self.forensics
        if forensics is not None:
            forensics.on_flow_state(i, now, state)

    # ------------------------------------------------------------------
    # Application interface (mirrors TcpSender.app_arrival)
    # ------------------------------------------------------------------
    def app_arrival(self, i: int, n_packets: int, now: float) -> None:
        self.generation_times[i].extend([now] * n_packets)
        self.app_total[i] += n_packets
        self.stats[i].app_packets += n_packets
        self.send_much(i, now)

    def app_arrival_bulk(self, i: int, times) -> None:
        """Book a backlogged flow's deferred arrivals in one call.

        Only valid while the flow is backlogged: a non-empty send
        buffer implies the window is shut (the lazy-arrival invariant),
        so the per-arrival ``send_much`` this path skips would have
        been a no-op for every entry.
        """
        self.generation_times[i].extend(times)
        self.app_total[i] += len(times)
        self.stats[i].app_packets += len(times)

    def backlog(self, i: int) -> int:
        return max(0, self.app_total[i] - self.t_seqno[i])

    # ------------------------------------------------------------------
    # Window helpers (same expressions as TcpSender)
    # ------------------------------------------------------------------
    def window(self, i: int) -> float:
        return transitions.effective_window(
            float(self.cwnd[i]), self.params.advertised_window
        )

    def outstanding(self, i: int) -> int:
        return max(0, self.t_seqno[i] - (self.last_ack[i] + 1))

    def set_cwnd(self, i: int, value: float, now: float) -> None:
        value = float(transitions.clamp_cwnd(value, self.params.advertised_window))
        if value != self.cwnd[i]:
            self.cwnd[i] = value
            if self.trace_cwnd[i]:
                self.cwnd_log[i].append((now, value))
            obs = self.obs[i]
            if obs is not None:
                obs.on_cwnd(now, value, float(self.ssthresh[i]))

    # ------------------------------------------------------------------
    # Transmission (mirrors TcpSender.send_much / output)
    # ------------------------------------------------------------------
    def send_much(self, i: int, now: float) -> None:
        # transitions.effective_window inlined: min(cwnd, advertised).
        cwnd = self.cwnd[i]
        adv = self._adv
        limit = self.last_ack[i] + int(cwnd if cwnd < adv else adv)
        seq = self.t_seqno[i]
        total = self.app_total[i]
        while seq <= limit and seq < total:
            self.output(i, seq, now)
            seq += 1
            self.t_seqno[i] = seq

    def output(self, i: int, seqno: int, now: float) -> None:
        driver = self.driver
        is_retransmit = seqno <= self.maxseq[i]
        packet = driver.mint_data(i, seqno, now, is_retransmit)
        stats = self.stats[i]
        stats.packets_sent += 1
        if is_retransmit:
            stats.retransmits += 1
        self.send_times[i][seqno] = now
        self.transmit_counts[i][seqno] = self.transmit_counts[i].get(seqno, 0) + 1
        if seqno > self.maxseq[i]:
            self.maxseq[i] = seqno
            # Karn: only time first transmissions, one at a time.
            if self.rtt_seq[i] is None:
                self.rtt_seq[i] = seqno
                self.rtt_sent_at[i] = now
        if self.rtx_deadline[i] == _INF:
            driver.timer_arm(i, now + self.rto(i))
        driver.transmit(i, packet, now)

    # ------------------------------------------------------------------
    # ACK processing (mirrors TcpSender.receive / _new_ack)
    # ------------------------------------------------------------------
    def on_ack(self, i: int, ackno: int, now: float) -> None:
        self.stats[i].acks_received += 1
        if ackno > self.last_ack[i]:
            self._new_ack(i, ackno, now)
        elif ackno == self.last_ack[i] and self.outstanding(i) > 0:
            self.dupacks[i] += 1
            self.stats[i].dupacks_received += 1
            self._on_dupack(i, now)
        # ACKs below last_ack are stale; ignore.

    def _new_ack(self, i: int, ackno: int, now: float) -> None:
        self.stats[i].new_acks += 1
        old_last_ack = self.last_ack[i]
        self.last_ack[i] = ackno
        if self.t_seqno[i] < ackno + 1:
            self.t_seqno[i] = ackno + 1
        self._take_rtt_sample(i, ackno, now)
        sent_at = self.send_times[i].get(ackno)
        self.last_ack_rtt[i] = (now - sent_at) if sent_at is not None else None
        self._forget_acked(i, old_last_ack, ackno, now)
        self.dupacks[i] = 0
        self._on_new_ack_window(i, ackno, now)
        if self.outstanding(i) > 0:
            self.driver.timer_arm(i, now + self.rto(i))
        else:
            self.rtx_deadline[i] = _INF
        self.send_much(i, now)

    # ------------------------------------------------------------------
    # RTT estimation (mirrors TcpSender)
    # ------------------------------------------------------------------
    def _take_rtt_sample(self, i: int, ackno: int, now: float) -> None:
        rtt_seq = self.rtt_seq[i]
        if rtt_seq is not None and ackno >= rtt_seq:
            sample = now - self.rtt_sent_at[i]
            self.rtt_seq[i] = None
            self._update_rtt(i, sample, now)

    def _update_rtt(self, i: int, sample: float, now: float) -> None:
        self.stats[i].rtt_samples += 1
        if math.isnan(self.srtt[i]):
            self.srtt[i], self.rttvar[i] = transitions.rtt_init(sample)
        else:
            self.srtt[i], self.rttvar[i] = transitions.rtt_update(
                float(self.srtt[i]), float(self.rttvar[i]), sample
            )
        self.backoff[i] = 1.0
        obs = self.obs[i]
        if obs is not None:
            obs.on_rtt(now, sample, float(self.srtt[i]), float(self.rttvar[i]))

    def rtt_estimate(self, i: int) -> float:
        srtt = self.srtt[i]
        return float(srtt) if not math.isnan(srtt) else self.params.initial_rto

    def rto(self, i: int) -> float:
        params = self.params
        srtt = self.srtt[i]
        return transitions.rto_value(
            None if math.isnan(srtt) else float(srtt),
            float(self.rttvar[i]),
            float(self.backoff[i]),
            params.tick,
            params.min_rto,
            params.max_rto,
            params.initial_rto,
        )

    # ------------------------------------------------------------------
    # Timeout (mirrors TcpSender._timeout; driver fires the cohort)
    # ------------------------------------------------------------------
    def on_timeout(self, i: int, now: float) -> None:
        self.stats[i].timeouts += 1
        self.note_state(i, "timeout", now)
        # Karn: invalidate the in-flight RTT measurement.
        self.rtt_seq[i] = None
        self.backoff[i] = transitions.next_backoff(
            float(self.backoff[i]), self.params.max_backoff
        )
        self._on_timeout_window(i, now)
        # Go-back-N: rewind the send point to the first unACKed packet.
        self.t_seqno[i] = self.last_ack[i] + 1
        self.dupacks[i] = 0
        self.driver.timer_arm(i, now + self.rto(i))
        self.send_much(i, now)

    # ------------------------------------------------------------------
    # Shared policy pieces
    # ------------------------------------------------------------------
    def slowstart_or_linear_increase(self, i: int, now: float) -> None:
        self.set_cwnd(
            i,
            transitions.slowstart_or_linear_next(
                float(self.cwnd[i]), float(self.ssthresh[i])
            ),
            now,
        )

    def halve_ssthresh(self, i: int, now: float) -> None:
        self.ssthresh[i] = transitions.halved_ssthresh(self.window(i))
        obs = self.obs[i]
        if obs is not None:
            obs.on_cwnd(now, float(self.cwnd[i]), float(self.ssthresh[i]))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _forget_acked(self, i: int, old_last_ack: int, ackno: int, now: float) -> None:
        send_times = self.send_times[i]
        transmit_counts = self.transmit_counts[i]
        generation_times = self.generation_times[i]
        stats = self.stats[i]
        for seq in range(old_last_ack + 1, ackno + 1):
            send_times.pop(seq, None)
            transmit_counts.pop(seq, None)
            if generation_times:
                stats.note_latency(now - generation_times.popleft())

    # ------------------------------------------------------------------
    # Policy hooks (subclasses mirror RenoSender / VegasSender)
    # ------------------------------------------------------------------
    def _on_new_ack_window(self, i: int, ackno: int, now: float) -> None:
        raise NotImplementedError

    def _on_dupack(self, i: int, now: float) -> None:
        raise NotImplementedError

    def _on_timeout_window(self, i: int, now: float) -> None:
        raise NotImplementedError


class RenoFlowBatch(FlowBatch):
    """Batched TCP Reno (mirrors :class:`repro.transport.reno.RenoSender`)."""

    protocol_name = "reno"
    DUPACK_THRESHOLD = 3

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.in_recovery: List[bool] = [False] * self.n
        self.recover = [-1] * self.n

    def _on_new_ack_window(self, i: int, ackno: int, now: float) -> None:
        if self.in_recovery[i]:
            self.in_recovery[i] = False
            self.recover[i] = -1
            self.note_state(i, "recovery_exit", now)
            self.set_cwnd(i, float(self.ssthresh[i]), now)
            return
        self.slowstart_or_linear_increase(i, now)

    def _on_dupack(self, i: int, now: float) -> None:
        if self.in_recovery[i]:
            self.set_cwnd(
                i, transitions.reno_recovery_inflation(float(self.cwnd[i])), now
            )
            self.send_much(i, now)
            return
        if self.dupacks[i] == self.DUPACK_THRESHOLD:
            self._fast_retransmit(i, now)

    def _on_timeout_window(self, i: int, now: float) -> None:
        self.in_recovery[i] = False
        self.recover[i] = -1
        self.halve_ssthresh(i, now)
        self.set_cwnd(i, 1.0, now)

    def _fast_retransmit(self, i: int, now: float) -> None:
        self.stats[i].fast_retransmits += 1
        self.note_state(i, "fast_retransmit", now)
        self.halve_ssthresh(i, now)
        self.in_recovery[i] = True
        self.recover[i] = self.maxseq[i]
        self.output(i, self.last_ack[i] + 1, now)
        self.rtt_seq[i] = None  # Karn: never time a retransmission
        self.set_cwnd(
            i, transitions.reno_fast_recovery_entry_cwnd(float(self.ssthresh[i])), now
        )
        self.driver.timer_arm(i, now + self.rto(i))
        self.send_much(i, now)


class VegasFlowBatch(FlowBatch):
    """Batched TCP Vegas (mirrors :class:`repro.transport.vegas.VegasSender`)."""

    protocol_name = "vegas"
    DUPACK_THRESHOLD = VegasSender.DUPACK_THRESHOLD
    MIN_CWND = VegasSender.MIN_CWND
    TIMEOUT_CWND = VegasSender.TIMEOUT_CWND
    SS_EXIT_SHRINK = VegasSender.SS_EXIT_SHRINK
    LOSS_SHRINK = VegasSender.LOSS_SHRINK

    def __init__(self, *args, vegas_params: Optional[VegasParams] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.vegas = vegas_params or VegasParams()
        self.vegas.validate()
        self.base_rtt: List[float] = [_INF] * self.n
        self.in_slow_start: List[bool] = [True] * self.n
        self.ss_grow_this_epoch: List[bool] = [True] * self.n
        self.epoch_marker = [0] * self.n
        self.last_reduction_time: List[float] = [-_INF] * self.n
        self.diff_history = [[] for _ in range(self.n)]

    def _on_new_ack_window(self, i: int, ackno: int, now: float) -> None:
        rtt = self.last_ack_rtt[i]
        if rtt is not None and rtt > 0:
            self.base_rtt[i] = min(float(self.base_rtt[i]), rtt)
        if ackno >= self.epoch_marker[i]:
            self._per_rtt_adjustment(i, rtt, now)
            self.epoch_marker[i] = self.t_seqno[i]

    def _on_dupack(self, i: int, now: float) -> None:
        if self.dupacks[i] >= self.DUPACK_THRESHOLD:
            if self.dupacks[i] == self.DUPACK_THRESHOLD:
                self._vegas_retransmit(i, now)
            return
        missing = self.last_ack[i] + 1
        sent_at = self.send_times[i].get(missing)
        if sent_at is not None and now - sent_at > self._fine_timeout(i):
            self._vegas_retransmit(i, now)

    def _on_timeout_window(self, i: int, now: float) -> None:
        self.in_slow_start[i] = True
        self.ss_grow_this_epoch[i] = True
        self.set_cwnd(i, self.TIMEOUT_CWND, now)
        self.epoch_marker[i] = self.last_ack[i] + 1

    def _per_rtt_adjustment(self, i: int, rtt, now: float) -> None:
        base_rtt = float(self.base_rtt[i])
        if rtt is None or rtt <= 0 or not math.isfinite(base_rtt):
            return
        diff = transitions.vegas_queue_estimate(self.window(i), base_rtt, rtt)
        self.diff_history[i].append((now, diff))
        vegas = self.vegas
        if self.in_slow_start[i]:
            if diff > vegas.gamma:
                self.in_slow_start[i] = False
                self.note_state(i, "slowstart_exit", now)
                self.set_cwnd(
                    i,
                    transitions.vegas_ss_exit_window(
                        float(self.cwnd[i]), self.MIN_CWND, self.SS_EXIT_SHRINK
                    ),
                    now,
                )
            elif self.ss_grow_this_epoch[i]:
                self.set_cwnd(
                    i, transitions.vegas_ss_grow_window(float(self.cwnd[i])), now
                )
                self.ss_grow_this_epoch[i] = False
            else:
                self.ss_grow_this_epoch[i] = True
            return
        self.set_cwnd(
            i,
            transitions.vegas_ca_next(
                float(self.cwnd[i]), diff, vegas.alpha, vegas.beta, self.MIN_CWND
            ),
            now,
        )

    def _fine_timeout(self, i: int) -> float:
        srtt = self.srtt[i]
        return transitions.vegas_fine_timeout(
            None if math.isnan(srtt) else float(srtt),
            float(self.rttvar[i]),
            self.params.initial_rto,
        )

    def _vegas_retransmit(self, i: int, now: float) -> None:
        missing = self.last_ack[i] + 1
        sent_at = self.send_times[i].get(missing)
        if (
            self.transmit_counts[i].get(missing, 0) > 1
            and sent_at is not None
            and now - sent_at < self.rtt_estimate(i)
        ):
            # Already retransmitted within the last RTT; don't pile on.
            return
        self.stats[i].fast_retransmits += 1
        self.note_state(i, "fast_retransmit", now)
        self.output(i, missing, now)
        self.rtt_seq[i] = None  # Karn
        # Reduce at most once per RTT.
        if now - float(self.last_reduction_time[i]) > self.rtt_estimate(i):
            self.last_reduction_time[i] = now
            self.in_slow_start[i] = False
            self.set_cwnd(
                i,
                transitions.vegas_loss_window(
                    float(self.cwnd[i]), self.MIN_CWND, self.LOSS_SHRINK
                ),
                now,
            )
        self.driver.timer_arm(i, now + self.rto(i))


FLOW_BATCHES = {
    "reno": RenoFlowBatch,
    "vegas": VegasFlowBatch,
}
