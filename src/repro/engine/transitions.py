"""Pure TCP state-transition arithmetic shared by both engines.

Every window, RTT-estimator and retransmit-timer expression that the
per-flow object senders (:mod:`repro.transport.tcp_base`,
:mod:`repro.transport.reno`, :mod:`repro.transport.vegas`) evaluate is
defined here *once* as a pure function of scalars, and both the object
engine and the batch engine (:mod:`repro.engine.batch`) call these same
functions.  Identical expressions evaluated in identical order on
identical IEEE-754 doubles produce bit-identical results, so the
differential harness can assert exact metric equality rather than a
tolerance.

These functions are also the surface for the randomized property tests
(``tests/test_tcp_transitions.py``): cwnd never below one packet,
ssthresh halving never below two, additive increase monotone between
loss events, RTO bounded by ``[min_rto, max_rto]``.

Keep these functions free of any engine state: scalars in, scalars out,
no mutation, no clocks, no RNG.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

__all__ = [
    "clamp_cwnd",
    "effective_window",
    "slowstart_or_linear_next",
    "halved_ssthresh",
    "rtt_init",
    "rtt_update",
    "rto_value",
    "next_backoff",
    "reno_recovery_inflation",
    "reno_fast_recovery_entry_cwnd",
    "vegas_queue_estimate",
    "vegas_fine_timeout",
    "vegas_ss_exit_window",
    "vegas_ss_grow_window",
    "vegas_ca_next",
    "vegas_loss_window",
]


# ----------------------------------------------------------------------
# Window arithmetic (TcpSender)
# ----------------------------------------------------------------------
def clamp_cwnd(value: float, advertised_window: int) -> float:
    """Congestion-window clamp to [1, advertised_window] packets."""
    return max(1.0, min(value, float(advertised_window)))


def effective_window(cwnd: float, advertised_window: int) -> float:
    """Effective window: congestion window capped by flow control."""
    return min(cwnd, float(advertised_window))


def slowstart_or_linear_next(cwnd: float, ssthresh: float) -> float:
    """The standard additive opening: slow start below ssthresh,
    +1/cwnd per ACK above it (congestion avoidance)."""
    if cwnd < ssthresh:
        return cwnd + 1.0
    return cwnd + 1.0 / cwnd


def halved_ssthresh(window: float) -> float:
    """ssthresh <- max(flightsize/2, 2), per RFC 2581."""
    return max(window / 2.0, 2.0)


# ----------------------------------------------------------------------
# RTT estimation (Jacobson/Karels) and the retransmission timer
# ----------------------------------------------------------------------
def rtt_init(sample: float) -> Tuple[float, float]:
    """(srtt, rttvar) seeded from the first RTT sample."""
    return sample, sample / 2.0


def rtt_update(srtt: float, rttvar: float, sample: float) -> Tuple[float, float]:
    """One Jacobson/Karels EWMA step: gains 1/8 (srtt) and 1/4 (rttvar)."""
    err = sample - srtt
    return srtt + err / 8.0, rttvar + (abs(err) - rttvar) / 4.0


def rto_value(
    srtt: Optional[float],
    rttvar: float,
    backoff: float,
    tick: float,
    min_rto: float,
    max_rto: float,
    initial_rto: float,
) -> float:
    """Current retransmission timeout, with backoff and granularity."""
    if srtt is None:
        base = initial_rto
    else:
        base = srtt + 4.0 * rttvar
        # Coarse timer granularity, as in BSD/ns-2 of the era.
        base = math.ceil(base / tick) * tick
    # Clamp to the floor before applying backoff (as BSD does), so
    # exponential backoff bites even when the RTT estimate is tiny.
    value = max(min_rto, base) * backoff
    return min(max_rto, value)


def next_backoff(backoff: float, max_backoff: float) -> float:
    """Exponential timer backoff after a retransmission timeout."""
    return min(max_backoff, backoff * 2.0)


# ----------------------------------------------------------------------
# Reno fast recovery
# ----------------------------------------------------------------------
def reno_recovery_inflation(cwnd: float) -> float:
    """Window inflation: every duplicate ACK signals a departure."""
    return cwnd + 1.0


def reno_fast_recovery_entry_cwnd(ssthresh: float) -> float:
    """cwnd on entering fast recovery: the halved ssthresh inflated by
    the three duplicate ACKs already seen."""
    return ssthresh + 3.0


# ----------------------------------------------------------------------
# Vegas estimator and window policy
# ----------------------------------------------------------------------
def vegas_queue_estimate(window: float, base_rtt: float, rtt: float) -> float:
    """Estimated packets this flow keeps queued at the bottleneck."""
    if not math.isfinite(base_rtt) or rtt <= 0:
        return 0.0
    expected = window / base_rtt
    actual = window / rtt
    return (expected - actual) * base_rtt


def vegas_fine_timeout(
    srtt: Optional[float], rttvar: float, initial_rto: float
) -> float:
    """Fine-grained expiry (no coarse tick rounding, no backoff)."""
    if srtt is None:
        return initial_rto
    return srtt + 4.0 * rttvar


def vegas_ss_exit_window(cwnd: float, min_cwnd: float, shrink: float) -> float:
    """Window on leaving slow start (a 1/8 reduction by default)."""
    return max(min_cwnd, cwnd * shrink)


def vegas_ss_grow_window(cwnd: float) -> float:
    """Slow-start doubling (Vegas doubles every other RTT)."""
    return cwnd * 2.0


def vegas_ca_next(
    cwnd: float, diff: float, alpha: float, beta: float, min_cwnd: float
) -> float:
    """Congestion-avoidance step: keep the queue estimate in
    [alpha, beta] by adjusting the window linearly (+1 / -1)."""
    if diff < alpha:
        return cwnd + 1.0
    if diff > beta:
        return max(min_cwnd, cwnd - 1.0)
    return cwnd


def vegas_loss_window(cwnd: float, min_cwnd: float, shrink: float) -> float:
    """Fast-retransmit reduction (one quarter, at most once per RTT)."""
    return max(min_cwnd, cwnd * shrink)
