"""The fused-event batch scenario driver (``engine="batch"``).

:class:`BatchScenario` runs the same physics as
:class:`repro.experiments.scenario.Scenario` -- the same dumbbell
arithmetic, the same bottleneck queue objects, the same sinks, monitors
and probes -- but collapses the object engine's per-hop event graph into
a handful of fused events per delivered packet:

* **Access-hop fusion.**  A client's access link never drops within the
  batch envelope (in-flight is bounded by the advertised window, far
  below the 1000-packet access queue), so its store-and-forward chain
  ``enqueue -> pull -> finish -> receive`` reduces to per-flow busy-time
  arithmetic: ``start = max(now, busy); finish = start + tx`` -- the
  exact additions :class:`repro.net.link.Interface` performs -- and one
  ``GW_ARRIVAL`` event at ``finish + delay``.
* **Reverse-path fusion.**  ACKs cannot queue on the reverse path when
  ``packet_size >= 40`` bytes and ``client_rate >= bottleneck_rate``
  (ACK spacing is bounded below by the data serialization time, which
  bounds the ACK serialization time above), so the four reverse hops
  become four sequential float additions, guarded at runtime: a strictly
  busy reverse link raises :class:`~repro.sim.engine.SimulationError`
  instead of silently diverging from the object engine.
* **Inline sink processing (open loop).**  With no application objects
  at the server, the sink's ACK generation commutes with any event
  between the gateway transmission and the server delivery time, so the
  sink runs inline under a virtual clock.  Closed-loop (RPC) runs keep a
  real ``SERVER_ARRIVAL`` event because workload unit-timeouts may fire
  in that window.
* **Lazy Poisson arrivals.**  A per-flow arrival event is armed only
  while the flow has no send-buffer backlog.  A backlogged flow's
  window is shut (``send_much`` drains until window or buffer runs
  out), so its ticks are pure bookkeeping; they are replayed -- with
  their original timestamps, consuming the same per-flow RNG stream --
  at the next event that touches the flow ("catch-up", always first in
  a handler).  This removes the dominant event class of the object
  engine at large N.
* **Timer cohort.**  Retransmit deadlines live in one numpy array; a
  single lazily-maintained horizon event fires the due cohort and
  reschedules at the new minimum.

Per-flow TCP state lives in :class:`repro.engine.flowbatch.FlowBatch`;
metric collection is shared verbatim with the object engine
(``Scenario._collect``), so both engines produce the same
:class:`ScenarioResult` shape from the same attribute names.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from math import log as _log
from typing import Dict, List, Optional

import numpy as np

from repro.apps.base import AppWorkload
from repro.apps.rpc import RpcClientWorkload
from repro.engine.flowbatch import FLOW_BATCHES, VegasFlowBatch
from repro.experiments.config import ScenarioConfig
from repro.experiments.scenario import Scenario, ScenarioResult
from repro.forensics.probe import ForensicsParams, ForensicsProbe
from repro.net.monitor import ArrivalMonitor, FlowArrivalMonitor
from repro.net.packet import Packet, PacketFactory
from repro.obs.engineprof import EngineProfiler
from repro.obs.probes import FlowProbe, QueueProbe
from repro.obs.registry import NULL_REGISTRY, MetricRegistry
from repro.sim.engine import SimulationError, Simulator
from repro.sim.rng import RandomStreams
from repro.traffic.recorder import OfferedTrafficRecorder
from repro.transport.sink import TcpSink
from repro.transport.vegas import VegasParams

_INF = float("inf")

#: Poisson gaps pre-drawn per refill (identical draws to the object
#: engine's one-per-tick ``expovariate``; only the batching differs,
#: which the per-flow dedicated RNG stream makes unobservable).
ARRIVAL_CHUNK = 64

#: Priority class for the timer-cohort horizon: in the object engine a
#: retransmit timer is pushed a full RTO (>= min_rto) before it fires,
#: which is earlier than any same-time network event's push (the
#: envelope requires min_rto > client_delay), so at a time tie the
#: timer's seq is smaller and it runs first.
_PRIO_TIMER = -2


class _SinkClock:
    """Settable ``.now`` facade standing in for the Simulator.

    The sinks only read ``sim.now`` (their delayed-ACK timer is not
    constructed when ``delayed_ack=False``), so the driver can run them
    inline at a virtual server-arrival time.
    """

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0


class _BatchServerNode:
    """Node facade for the sinks: collects emitted ACKs for routing."""

    __slots__ = ("name", "agents", "outbox")

    def __init__(self) -> None:
        self.name = "server"
        self.agents: Dict[int, object] = {}
        self.outbox: List[Packet] = []

    def bind_flow(self, flow_id: int, agent) -> None:
        self.agents[flow_id] = agent

    def send(self, packet: Packet) -> None:
        self.outbox.append(packet)


class _BatchSenderView:
    """Per-flow facade over the FlowBatch arrays.

    Quacks like a TCP sender for the pieces the rest of the system
    touches: ``.stats`` / ``.cwnd_log`` for metric collection and
    ``.app_arrival`` as the workload agent interface.
    """

    __slots__ = ("_scenario", "flow_id")

    def __init__(self, scenario: "BatchScenario", flow_id: int) -> None:
        self._scenario = scenario
        self.flow_id = flow_id

    @property
    def stats(self):
        return self._scenario.flows.stats[self.flow_id]

    @property
    def cwnd_log(self):
        return self._scenario.flows.cwnd_log[self.flow_id]

    @property
    def cwnd(self) -> float:
        return float(self._scenario.flows.cwnd[self.flow_id])

    @property
    def ssthresh(self) -> float:
        return float(self._scenario.flows.ssthresh[self.flow_id])

    def app_arrival(self, n_packets: int = 1) -> None:
        scenario = self._scenario
        scenario.flows.app_arrival(self.flow_id, n_packets, scenario.sim.now)


class BatchScenario:
    """A fully wired batch-engine simulation, ready to run.

    Exposes the same attribute surface as :class:`Scenario` (``sim``,
    ``monitor``, ``senders``, ``sinks``, ``apps``, ``flow_probes``,
    ``queue_probe``, ``profiler``, ``forensics_probe``, ``network``)
    so metric collection and the obs bundle are shared verbatim.
    """

    def __init__(self, config: ScenarioConfig) -> None:
        config.validate()
        config.validate_batch_engine()
        self.config = config
        self.sim = Simulator(scheduler=config.scheduler)
        self.streams = RandomStreams(config.seed)

        if config.obs_trace:
            self.registry = MetricRegistry(categories=config.obs_trace)
        else:
            self.registry = NULL_REGISTRY
        self.flow_probes: Dict[int, FlowProbe] = {}
        self.queue_probe: Optional[QueueProbe] = None
        self.profiler: Optional[EngineProfiler] = None
        if config.obs_profile:
            self.profiler = EngineProfiler()

        # --- physics constants (exact Interface expressions) -----------
        n = config.n_clients
        self._client_rate = float(config.client_rate_bps)
        self._bn_rate = float(config.bottleneck_rate_bps)
        self._client_delay = config.client_delay
        self._bn_delay = config.bottleneck_delay
        self._open_mode = config.workload == "open"
        self._mean_gap = config.mean_gap
        self._duration = config.duration
        self._client_names = [f"client-{i}" for i in range(n)]

        factory = PacketFactory()
        self.packet_factory = factory
        # Shared with the object engine verbatim; it reads
        # ``params.buffer_capacity``, which this class exposes.
        queue = Scenario._make_bottleneck_queue(self, self, None)
        self.bottleneck_queue = queue
        # Duck-typed stand-in for Scenario's DumbbellNetwork: metric
        # collection only dereferences ``network.bottleneck_queue``.
        self.network = self

        # Instrumentation, registered in Scenario's construction order
        # (gateway monitor, flow monitor, queue probe, forensics).
        self.monitor = ArrivalMonitor(
            bin_width=config.effective_bin_width, start_time=config.warmup
        )
        self._gw_send_hooks = [self.monitor.on_packet]
        queue.add_drop_hook(self.monitor.on_drop)

        self.offered_recorder: Optional[OfferedTrafficRecorder] = None
        if config.record_offered:
            self.offered_recorder = OfferedTrafficRecorder(start_time=config.warmup)

        self.flow_monitor: Optional[FlowArrivalMonitor] = None
        if config.record_flow_arrivals:
            self.flow_monitor = FlowArrivalMonitor(start_time=config.warmup)
            self._gw_send_hooks.append(self.flow_monitor.on_packet)

        self.senders: List[_BatchSenderView] = []
        self.sinks: List[TcpSink] = []
        self.sources: List = []  # batch flows are all TCP; kept for shape
        self.apps: List[AppWorkload] = []
        self.bsp_coordinator = None
        if self.registry.enabled("queue") or self.registry.enabled("drops"):
            self.queue_probe = QueueProbe(
                self.registry,
                queue,
                sample_interval=config.obs_queue_sample_interval,
            )
        self.forensics_probe: Optional[ForensicsProbe] = None
        if config.forensics:
            self.forensics_probe = ForensicsProbe(
                ForensicsParams.from_config(config),
                n_flows=config.n_clients,
                queue=queue,
                sketch_kind=config.forensics_sketch,
            )

        # --- per-flow transport state ----------------------------------
        self._busy_fwd = [0.0] * n  # client->gateway access serializer
        self._busy_rev_client = [0.0] * n  # gateway->client ACK serializer
        self._busy_rev_server = 0.0  # server->gateway ACK serializer
        self._bn_busy = False

        # Same-time tie-breaking (see DESIGN.md section 15).  The object
        # engine orders simultaneous events FIFO by scheduling order;
        # each object-engine event is pushed a fixed lag before it
        # fires, so ties between different event classes resolve by
        # comparing lags (larger lag scheduled first).  The batch engine
        # pushes its fused events at different moments, so it encodes
        # the object engine's outcome as a priority class instead:
        #  * bottleneck enqueue (lag = access propagation delay) vs
        #    dequeue (lag = bottleneck serialization time): whichever
        #    lag is larger runs first -- validate_batch_engine rejects
        #    exact equality;
        #  * retransmit timers (lag = RTO >= min_rto, envelope-checked
        #    to exceed the access delay) precede every same-time
        #    network event.
        # Ties within one class keep FIFO order automatically: both
        # engines process the originating sends in the same order, so
        # the batch engine pushes same-class events in the object
        # engine's relative order.
        tx_bn = config.packet_size * 8.0 / self._bn_rate
        self._prio_txdone = -1 if tx_bn > self._client_delay else 0
        self._prio_arrival = -1 if self._client_delay > tx_bn else 0

        # Timer-cohort horizon (lazy: <= every armed rtx deadline).
        self._horizon_time = _INF
        self._horizon_event = None
        # Arming order, for firing same-deadline cohorts in the order
        # the object engine's per-flow timer events would sort (each
        # Timer.start is a fresh push, so ties resolve by last-arm
        # order, not flow index).
        self._arm_seq = [0] * n
        self._arm_counter = 0

        # Poisson arrival machinery (open loop): chunk-buffered pre-draws
        # plus an armed-arrival cohort sharing one horizon event, so the
        # heap stays a handful of entries regardless of N.
        self._arr_rng = [
            self.streams.stream(f"client-{i}/poisson") for i in range(n)
        ] if self._open_mode else []
        self._arr_buf: List[List[float]] = [[] for _ in range(n)]
        self._arr_pos = [0] * n
        self._arr_last = [0.0] * n  # last drawn absolute arrival time
        self._armed_at = np.full(n if self._open_mode else 0, _INF)
        self._arr_horizon_time = _INF
        self._arr_horizon_event = None

        self._build_flows()
        self.sim.set_arg_recycler(Packet, factory.recycle)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def buffer_capacity(self) -> int:
        # _make_bottleneck_queue (shared with Scenario) reads
        # ``params.buffer_capacity``; we pass ourselves as params.
        return self.config.buffer_capacity

    def _build_flows(self) -> None:
        config = self.config
        batch_cls = FLOW_BATCHES[config.protocol]
        kwargs = {}
        if batch_cls is VegasFlowBatch:
            kwargs["vegas_params"] = VegasParams(
                alpha=config.vegas_alpha,
                beta=config.vegas_beta,
                gamma=config.vegas_gamma,
            )
        self.flows = batch_cls(
            config.n_clients,
            Scenario._tcp_params(self),
            driver=self,
            trace_flows=config.trace_cwnd_flows,
            **kwargs,
        )
        if self.forensics_probe is not None:
            self.flows.forensics = self.forensics_probe

        self._server_node = _BatchServerNode()
        self._sink_clock = _SinkClock()
        registry = self.registry
        probe_flows = (
            registry.enabled("cwnd")
            or registry.enabled("rtt")
            or registry.enabled("state")
        )
        for index in range(config.n_clients):
            view = _BatchSenderView(self, index)
            sink = TcpSink(
                self._sink_clock,
                self._server_node,
                index,
                self._client_names[index],
                self.packet_factory,
                delayed_ack=False,
                ack_delay=config.ack_delay,
                sack=False,
            )
            if probe_flows:
                self.flow_probes[index] = self.flows.attach_probe(
                    index, FlowProbe(registry, index)
                )
            if self._open_mode:
                # Lazy arrival: arm the first Poisson arrival (the flow
                # starts with an empty send buffer).
                self._armed_at[index] = self._peek_arrival(index)
            else:
                app = RpcClientWorkload(
                    self.sim,
                    view,
                    sink,
                    rng=self.streams.stream(f"client-{index}/app"),
                    request_packets=config.rpc_request_packets,
                    response_delay=config.reverse_path_delay(
                        config.rpc_response_packets
                    ),
                    think_time=config.rpc_think_time,
                    outstanding=config.rpc_outstanding,
                    name=f"rpc-{index}",
                    unit_timeout=config.workload_timeout,
                )
                if self.offered_recorder is not None:
                    self.offered_recorder.attach(app)
                app.start(at=0.0, stop_at=config.duration)
                self.apps.append(app)
            self.senders.append(view)
            self.sinks.append(sink)
        if self._open_mode and config.n_clients:
            self.flows.next_arrival[:] = self._armed_at
            self._aim_arrival_horizon(float(self._armed_at.min()))

    # ------------------------------------------------------------------
    # FlowBatch driver interface
    # ------------------------------------------------------------------
    def mint_data(self, i: int, seqno: int, now: float, is_retransmit: bool):
        return self.packet_factory.data(
            flow_id=i,
            src=self._client_names[i],
            dst="server",
            size=self.config.packet_size,
            seqno=seqno,
            now=now,
            is_retransmit=is_retransmit,
            ecn_capable=self.flows.params.ecn,
        )

    def transmit(self, i: int, packet: Packet, now: float) -> None:
        """Client access hop, fused: the exact Interface arithmetic."""
        busy = self._busy_fwd[i]
        start = busy if busy > now else now
        finish = start + packet.size * 8.0 / self._client_rate
        self._busy_fwd[i] = finish
        self.sim.schedule_at(
            finish + self._client_delay,
            self._gw_arrival,
            packet,
            priority=self._prio_arrival,
        )

    def timer_arm(self, i: int, deadline: float) -> None:
        self.flows.rtx_deadline[i] = deadline
        self._arm_seq[i] = self._arm_counter
        self._arm_counter += 1
        if self._horizon_event is None or deadline < self._horizon_time:
            if self._horizon_event is not None:
                self._horizon_event.cancel()
            self._horizon_time = deadline
            self._horizon_event = self.sim.schedule_at(
                deadline, self._timer_fire, priority=_PRIO_TIMER
            )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _gw_arrival(self, packet: Packet) -> None:
        now = self.sim.now
        for hook in self._gw_send_hooks:
            hook(packet, now)
        if self.bottleneck_queue.enqueue(packet, now) and not self._bn_busy:
            self._bn_pull(now)

    def _bn_pull(self, now: float) -> None:
        packet = self.bottleneck_queue.dequeue(now)
        if packet is None:
            return
        self._bn_busy = True
        self.sim.schedule_at(
            now + packet.size * 8.0 / self._bn_rate,
            self._gw_tx_done,
            packet,
            priority=self._prio_txdone,
        )

    def _gw_tx_done(self, packet: Packet) -> None:
        now = self.sim.now
        arrival = now + self._bn_delay
        if self._open_mode:
            # No server-side application: sink processing commutes with
            # everything between now and the delivery time, so run it
            # inline under a virtual clock.  Guard on the horizon: the
            # object engine only delivers when the server-arrival event
            # actually executes, i.e. at times <= duration.
            if arrival <= self._duration:
                self._deliver_at_server(packet, arrival)
        else:
            # Closed loop: workload unit-timeouts may fire in this
            # window, so the delivery needs a real event.
            self.sim.schedule_at(arrival, self._server_arrival, packet)
        self._bn_busy = False
        if len(self.bottleneck_queue):
            self._bn_pull(now)

    def _server_arrival(self, packet: Packet) -> None:
        self._deliver_at_server(packet, self.sim.now)

    def _deliver_at_server(self, packet: Packet, arrival: float) -> None:
        self._sink_clock.now = arrival
        self.sinks[packet.flow_id].receive(packet)
        outbox = self._server_node.outbox
        if outbox:
            for ack in outbox:
                self._route_ack(ack, arrival)
            outbox.clear()

    def _route_ack(self, ack: Packet, now: float) -> None:
        """Reverse path, fused: four sequential additions, no queueing
        possible within the validated envelope (guarded, not assumed)."""
        if self._busy_rev_server > now:
            raise SimulationError(
                "batch engine invariant violated: reverse bottleneck busy "
                f"until {self._busy_rev_server} > ACK arrival {now}"
            )
        tx_server = ack.size * 8.0 / self._bn_rate
        self._busy_rev_server = now + tx_server
        at_gateway = (now + tx_server) + self._bn_delay
        i = ack.flow_id
        if self._busy_rev_client[i] > at_gateway:
            raise SimulationError(
                "batch engine invariant violated: reverse access link busy "
                f"until {self._busy_rev_client[i]} > ACK arrival {at_gateway}"
            )
        tx_client = ack.size * 8.0 / self._client_rate
        self._busy_rev_client[i] = at_gateway + tx_client
        self.sim.schedule_at(
            (at_gateway + tx_client) + self._client_delay, self._ack_arrival, ack
        )

    def _ack_arrival(self, ack: Packet) -> None:
        now = self.sim.now
        i = ack.flow_id
        self._catch_up(i, now)
        self.flows.on_ack(i, ack.ackno, now)
        self._rearm_arrival(i)

    def _timer_fire(self) -> None:
        now = self.sim.now
        self._horizon_event = None
        self._horizon_time = _INF
        flows = self.flows
        deadlines = flows.rtx_deadline
        # Fire same-deadline flows in arming order, matching the seq
        # order of the object engine's per-flow timer events.
        due = sorted(
            (int(index) for index in (deadlines <= now).nonzero()[0]),
            key=self._arm_seq.__getitem__,
        )
        for i in due:
            deadlines[i] = _INF
            self._catch_up(i, now)
            flows.on_timeout(i, now)
            self._rearm_arrival(i)
        # Re-aim at the earliest remaining deadline (timer_arm calls in
        # the loop may already have armed a nearer horizon).
        earliest = float(deadlines.min())
        if earliest < _INF and (
            self._horizon_event is None or earliest < self._horizon_time
        ):
            if self._horizon_event is not None:
                self._horizon_event.cancel()
            self._horizon_time = earliest
            self._horizon_event = self.sim.schedule_at(
                earliest, self._timer_fire, priority=_PRIO_TIMER
            )

    # ------------------------------------------------------------------
    # Lazy Poisson arrivals
    # ------------------------------------------------------------------
    def _refill(self, i: int) -> None:
        buf = self._arr_buf[i]
        pos = self._arr_pos[i]
        if pos:
            del buf[:pos]
            self._arr_pos[i] = 0
        uniform = self._arr_rng[i].random
        inv_gap = 1.0 / self._mean_gap
        t = self._arr_last[i]
        append = buf.append
        for _ in range(ARRIVAL_CHUNK):
            # random.Random.expovariate inlined verbatim: the same
            # ``-log(1 - random()) / lambd`` expression on the same
            # dedicated per-flow stream as PoissonSource._next_gap, so
            # the times are bit-identical to the object engine's.
            t += -_log(1.0 - uniform()) / inv_gap
            append(t)
        self._arr_last[i] = t

    def _peek_arrival(self, i: int) -> float:
        if self._arr_pos[i] >= len(self._arr_buf[i]):
            self._refill(i)
        return self._arr_buf[i][self._arr_pos[i]]

    def _emit_arrival(self, i: int, at: float) -> None:
        # Mirrors TrafficSource._emit: recorder hook, then app_arrival.
        if self.offered_recorder is not None:
            self.offered_recorder.on_generate(at, 1)
        self.flows.app_arrival(i, 1, at)

    def _catch_up(self, i: int, now: float) -> None:
        """Replay this flow's pending Poisson arrivals up to ``now``.

        Always the first action in any handler touching flow ``i``, so
        the flow's send buffer and stats are current before any policy
        runs, and re-arming afterwards picks an arrival ``> now``.

        While the flow is backlogged its window is shut (the lazy
        invariant: nothing between two events for flow ``i`` can open
        it), so every deferred arrival's send_much would be a no-op --
        those are replayed in one bulk bookkeeping call.  Only an
        arrival landing on an *empty* send buffer (the armed-event
        case) takes the full app_arrival path and may transmit.
        """
        if not self._open_mode:
            return
        buf = self._arr_buf[i]
        pos = self._arr_pos[i]
        flows = self.flows
        bulk = None
        while True:
            if pos >= len(buf):
                # _refill compacts the consumed prefix, so publish the
                # local cursor before it runs.
                self._arr_pos[i] = pos
                self._refill(i)
                pos = self._arr_pos[i]
            at = buf[pos]
            if at > now:
                break
            # Once backlogged, the window stays shut for the rest of
            # the replay (emissions only deepen the backlog), so every
            # remaining pending arrival is bulk bookkeeping: take them
            # a sorted-chunk slice at a time.
            if bulk is None and flows.backlog(i) == 0:
                pos += 1
                self._emit_arrival(i, at)
                continue
            cut = bisect_right(buf, now, pos)
            seg = buf[pos:cut]
            bulk = seg if bulk is None else bulk + seg
            pos = cut
        self._arr_pos[i] = pos
        flows.next_arrival[i] = at
        if bulk is not None:
            if self.offered_recorder is not None:
                self.offered_recorder.on_generate_many(bulk)
            flows.app_arrival_bulk(i, bulk)

    def _aim_arrival_horizon(self, at: float) -> None:
        if at >= _INF or (
            self._arr_horizon_event is not None and at >= self._arr_horizon_time
        ):
            return
        if self._arr_horizon_event is not None:
            self._arr_horizon_event.cancel()
        self._arr_horizon_time = at
        self._arr_horizon_event = self.sim.schedule_at(at, self._arrival_fire)

    def _arrival_fire(self) -> None:
        # Armed-arrival cohort: one horizon event serves every idle
        # flow, exactly as the timer cohort serves the rtx deadlines.
        # Poisson times across independent streams never tie, so each
        # fire almost surely serves one flow -- the same time/priority
        # the per-flow event would have had.
        now = self.sim.now
        self._arr_horizon_event = None
        self._arr_horizon_time = _INF
        armed = self._armed_at
        flows = self.flows
        due = (armed <= now).nonzero()[0]
        for index in due:
            i = int(index)
            armed[i] = _INF
            self._catch_up(i, now)
            # Inline re-arm without aiming: one aim at the cohort
            # minimum below replaces a cancel/push pair per flow.
            if flows.backlog(i) == 0:
                at = self._peek_arrival(i)
                flows.next_arrival[i] = at
                armed[i] = at
        self._aim_arrival_horizon(float(armed.min()))

    def _rearm_arrival(self, i: int) -> None:
        if (
            not self._open_mode
            or self._armed_at[i] < _INF
            or self.flows.backlog(i) != 0
        ):
            return
        at = self._peek_arrival(i)
        self.flows.next_arrival[i] = at
        self._armed_at[i] = at
        self._aim_arrival_horizon(at)

    # ------------------------------------------------------------------
    # Execution (collection shared verbatim with the object engine)
    # ------------------------------------------------------------------
    attach_forensics_stream = Scenario.attach_forensics_stream
    obs_bundle = Scenario.obs_bundle
    _collect = Scenario._collect

    def run(self) -> ScenarioResult:
        """Run to the configured duration and collect all metrics."""
        config = self.config
        if self.profiler is not None:
            self.sim.attach_profiler(self.profiler)
        start = time.perf_counter()
        try:
            self.sim.run(until=config.duration)
            # Backlogged (lazy) flows still owe their bookkeeping ticks
            # up to the horizon; the object engine executed those as
            # real events.  Their send_much is a no-op (window shut).
            if self._open_mode:
                for i in range(config.n_clients):
                    self._catch_up(i, config.duration)
        finally:
            wall_time = time.perf_counter() - start
            if self.profiler is not None:
                self.sim.detach_profiler()
        return self._collect(wall_time)
