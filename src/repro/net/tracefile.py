"""ns-2-compatible packet trace files.

The original study's raw artifacts were ns trace files; this module
writes (and reads back) the same line format for any monitored queue,
so existing ns-2 post-processing scripts work on our runs:

    <op> <time> <src-node> <dst-node> <type> <size> <flags> <fid> \
        <src-addr> <dst-addr> <seqno> <pkt-uid>

with op ``+`` (enqueue), ``-`` (dequeue), ``d`` (drop).  Addresses are
rendered ns-style as ``flow.0``/``flow.1``.

One deliberate deviation from ns: ``+`` is written only for *admitted*
packets (ns also writes ``+`` for a packet it drops on arrival), so
that ``+`` lines are exactly the traffic the queue carried; ``d`` lines
cover both refused arrivals and packets evicted by disciplines that
drop from the middle of the buffer (DRR's longest-queue drop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional

from repro.net.link import Interface
from repro.net.packet import Packet, PacketType
from repro.net.queues import PacketQueue


@dataclass(frozen=True)
class TraceRecord:
    """One parsed trace line."""

    op: str
    time: float
    src_node: str
    dst_node: str
    ptype: str
    size: int
    flow_id: int
    seqno: int
    uid: int


class NsTraceWriter:
    """Stream ns-format trace lines for one monitored output port."""

    def __init__(
        self,
        stream: IO[str],
        src_node: str = "gateway",
        dst_node: str = "server",
    ) -> None:
        self._stream = stream
        self.src_node = src_node
        self.dst_node = dst_node
        self.lines_written = 0

    def attach(self, interface: Interface) -> "NsTraceWriter":
        """Record +/-/d events of the interface's queue; returns self."""
        interface.queue.add_enqueue_hook(self._hook("+"))
        interface.queue.add_dequeue_hook(self._hook("-"))
        interface.queue.add_drop_hook(self._hook("d"))
        return self

    def attach_queue(self, queue: PacketQueue) -> "NsTraceWriter":
        """Record +/-/d events of a bare queue; returns self."""
        queue.add_enqueue_hook(self._hook("+"))
        queue.add_dequeue_hook(self._hook("-"))
        queue.add_drop_hook(self._hook("d"))
        return self

    def _hook(self, op: str):
        def write(packet: Packet, now: float) -> None:
            self.write_event(op, packet, now)

        return write

    def write_event(self, op: str, packet: Packet, now: float) -> None:
        """Write one trace line."""
        ptype = "tcp" if packet.ptype is PacketType.DATA else "ack"
        line = (
            f"{op} {now:.6f} {self.src_node} {self.dst_node} {ptype} "
            f"{packet.size} ------- {packet.flow_id} "
            f"{packet.flow_id}.0 {packet.flow_id}.1 {packet.seqno} {packet.uid}\n"
        )
        self._stream.write(line)
        self.lines_written += 1


def parse_trace_lines(lines: Iterable[str]) -> Iterator[TraceRecord]:
    """Parse ns trace lines, skipping blanks and comments."""
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) < 12:
            raise ValueError(f"malformed trace line: {line!r}")
        yield TraceRecord(
            op=fields[0],
            time=float(fields[1]),
            src_node=fields[2],
            dst_node=fields[3],
            ptype=fields[4],
            size=int(fields[5]),
            flow_id=int(fields[7]),
            seqno=int(fields[10]),
            uid=int(fields[11]),
        )


def read_trace(path: str) -> List[TraceRecord]:
    """Read a whole trace file."""
    with open(path) as handle:
        return list(parse_trace_lines(handle))


def arrival_times(
    records: Iterable[TraceRecord],
    op: str = "+",
    data_only: bool = True,
    flow_id: Optional[int] = None,
) -> List[float]:
    """Event times of one op (the input to the c.o.v. machinery).

    This is how an ns-2 user of the original study would have extracted
    the gateway arrival process from their trace files.
    """
    times = []
    for record in records:
        if record.op != op:
            continue
        if data_only and record.ptype != "tcp":
            continue
        if flow_id is not None and record.flow_id != flow_id:
            continue
        times.append(record.time)
    return times
