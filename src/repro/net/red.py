"""Random Early Detection (RED) gateways.

Implements the algorithm of Floyd & Jacobson, "Random Early Detection
Gateways for Congestion Avoidance" (IEEE/ACM ToN, 1993) -- the paper's
reference [6] -- with the ns-2 refinements the original study would have
inherited:

* exponentially-weighted moving average (EWMA) of the instantaneous
  queue length, updated on every arrival;
* idle-time compensation: while the queue sits empty the average decays
  as if small packets had been departing;
* count-based drop probability ``p_a = p_b / (1 - count * p_b)`` so that
  inter-drop gaps are roughly uniform rather than geometric;
* forced drop when the average exceeds ``max_th`` (plus physical
  tail drop at the buffer limit);
* optional "gentle" ramp between ``max_th`` and ``2*max_th``;
* optional ECN marking instead of dropping for ECN-capable packets.

:class:`AdaptiveREDQueue` adds the self-configuring behaviour of Feng,
Kandlur, Saha & Shin, "A Self-Configuring RED Gateway" (INFOCOM 1999)
-- the paper's reference [5] -- scaling ``max_p`` up or down as the
average queue drifts outside the (min_th, max_th) band.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.net.packet import Packet
from repro.net.queues import PacketQueue


@dataclass
class REDParams:
    """RED configuration.

    Defaults follow the values recommended in the 1993 paper and used by
    ns-2 at the time of the study; ``min_th``/``max_th`` default to the
    paper's Table 1 values (10 and 40 packets).
    """

    min_th: float = 10.0
    max_th: float = 40.0
    max_p: float = 0.1
    weight: float = 0.002
    gentle: bool = False
    ecn: bool = False
    # Mean transmission time of one packet on the outgoing link, used for
    # idle-time compensation.  The topology builder fills this in from
    # the link rate and mean packet size.
    idle_packet_time: float = 0.0026667  # 1000 B at 3 Mbps

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if not 0 < self.weight <= 1:
            raise ValueError("RED weight must be in (0, 1]")
        if self.min_th < 0 or self.max_th <= self.min_th:
            raise ValueError("need 0 <= min_th < max_th")
        if not 0 < self.max_p <= 1:
            raise ValueError("max_p must be in (0, 1]")
        if self.idle_packet_time <= 0:
            raise ValueError("idle_packet_time must be positive")


class REDQueue(PacketQueue):
    """A RED gateway queue."""

    def __init__(
        self,
        capacity: int,
        params: Optional[REDParams] = None,
        rng: Optional[random.Random] = None,
        name: str = "red",
    ) -> None:
        super().__init__(capacity, name=name)
        self.params = params or REDParams()
        self.params.validate()
        self._rng = rng or random.Random(0)
        self.avg = 0.0
        self._count = -1  # packets since last early drop; -1 = below min_th
        self._idle_since: Optional[float] = 0.0  # queue starts empty

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self, packet: Packet, now: float) -> bool:
        self._update_average(now)

        params = self.params
        if len(self._packets) >= self.capacity:
            # Physical buffer overflow: unavoidable tail drop.
            self._count = 0
            self.last_drop_cause = "buffer_overflow"
            return False

        if self.avg < params.min_th:
            self._count = -1
            return True

        if self.avg >= self._hard_limit():
            # Average beyond the (possibly gentle-extended) band.
            self._count = 0
            self.last_drop_cause = "red_forced"
            return self._mark_or_refuse(packet)

        drop_probability = self._drop_probability()
        self._count += 1
        final_probability = self._spread(drop_probability)
        if self._rng.random() < final_probability:
            self._count = 0
            self.last_drop_cause = "red_early"
            return self._mark_or_refuse(packet)
        return True

    def _on_dequeue(self, packet: Packet, now: float) -> None:
        if not self._packets:
            self._idle_since = now

    # ------------------------------------------------------------------
    # RED mechanics
    # ------------------------------------------------------------------
    def _update_average(self, now: float) -> None:
        params = self.params
        if self._packets:
            self.avg = (1 - params.weight) * self.avg + params.weight * len(
                self._packets
            )
        else:
            # Queue has been idle: decay the average as if ``m`` small
            # packets had departed in the idle period.
            idle_since = self._idle_since if self._idle_since is not None else now
            m = max(0.0, (now - idle_since) / params.idle_packet_time)
            self.avg *= (1 - params.weight) ** m
            self._idle_since = None

    def _hard_limit(self) -> float:
        if self.params.gentle:
            return 2 * self.params.max_th
        return self.params.max_th

    def _drop_probability(self) -> float:
        """Instantaneous drop probability p_b from the average queue."""
        params = self.params
        if params.gentle and self.avg >= params.max_th:
            # Gentle RED: ramp from max_p at max_th to 1 at 2*max_th.
            span = params.max_th
            return params.max_p + (1 - params.max_p) * (
                (self.avg - params.max_th) / span
            )
        fraction = (self.avg - params.min_th) / (params.max_th - params.min_th)
        return params.max_p * fraction

    def _spread(self, p_b: float) -> float:
        """Count-corrected probability p_a (uniformizes drop spacing)."""
        if p_b <= 0:
            return 0.0
        denominator = 1 - self._count * p_b
        if denominator <= 0:
            return 1.0
        return min(1.0, p_b / denominator)

    def _mark_or_refuse(self, packet: Packet) -> bool:
        """Mark an ECN-capable packet, or signal a drop.

        Returns True (admit, marked) or False (drop).  Marks are only
        used below the physical limit; overflow always drops.
        """
        if self.params.ecn and packet.ecn_capable:
            packet.ecn_ce = True
            self.stats.marks += 1
            return True
        return False


class AdaptiveREDQueue(REDQueue):
    """Self-configuring RED (Feng et al., INFOCOM 1999).

    Periodically inspects the average queue: if it has fallen below
    ``min_th`` the gateway is being too aggressive and ``max_p`` is
    scaled down; if it has risen above ``max_th`` the gateway is being
    too timid and ``max_p`` is scaled up.
    """

    def __init__(
        self,
        capacity: int,
        params: Optional[REDParams] = None,
        rng: Optional[random.Random] = None,
        name: str = "ared",
        interval: float = 0.5,
        decrease_factor: float = 3.0,
        increase_factor: float = 2.0,
        min_p: float = 0.001,
        max_p_limit: float = 0.5,
    ) -> None:
        super().__init__(capacity, params, rng, name=name)
        if interval <= 0:
            raise ValueError("adaptation interval must be positive")
        self.interval = interval
        self.decrease_factor = decrease_factor
        self.increase_factor = increase_factor
        self.min_p = min_p
        self.max_p_limit = max_p_limit
        self._next_adapt = interval
        self.adaptations = 0

    def _admit(self, packet: Packet, now: float) -> bool:
        self._maybe_adapt(now)
        return super()._admit(packet, now)

    def _maybe_adapt(self, now: float) -> None:
        while now >= self._next_adapt:
            self._next_adapt += self.interval
            params = self.params
            if self.avg < params.min_th:
                new_p = max(self.min_p, params.max_p / self.decrease_factor)
            elif self.avg > params.max_th:
                new_p = min(self.max_p_limit, params.max_p * self.increase_factor)
            else:
                continue
            if new_p != params.max_p:
                params.max_p = new_p
                self.adaptations += 1
