"""Packets.

Packets are the unit of simulation.  Following ns-2's ``Agent/TCP`` (the
agent the paper used), TCP here is *packet-counted*: sequence numbers
number whole packets, and windows/buffers are measured in packets.  That
matches every number the paper reports (cwnd in packets, buffer size in
packets, advertised window in packets).

At large N packet allocation is one of the simulator's hottest paths, so
:class:`Packet` is a ``__slots__`` class (no instance dict) and
:class:`PacketFactory` keeps a free list: delivered packets that nothing
references any more are handed back via :meth:`PacketFactory.recycle`
(the engine's arg-recycler hook does this; see
:meth:`repro.sim.engine.Simulator.set_arg_recycler`) and reused by the
next mint.  Both mint paths reinitialize *every* field, so a recycled
packet can never leak stale state (an old ECN mark, a stale SACK block)
into a fresh packet.
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional, Tuple

# A SACK block: an inclusive (first, last) range of received packets.
SackBlock = Tuple[int, int]


class PacketType(enum.Enum):
    """What a packet carries."""

    DATA = "data"
    ACK = "ack"


class Packet:
    """One simulated packet.

    Attributes:
        uid: globally unique id (for tracing and debugging).
        flow_id: id of the transport flow the packet belongs to.
        src: name of the originating node.
        dst: name of the destination node.
        size: on-wire size in bytes (determines transmission time).
        ptype: DATA or ACK.
        seqno: packet sequence number (DATA packets; -1 otherwise).
        ackno: highest in-order sequence received (ACK packets; -1 otherwise).
        created_at: simulated time the packet was created.
        is_retransmit: True if this DATA packet is a retransmission.
        ecn_capable: ECT -- sender supports Explicit Congestion Notification.
        ecn_ce: CE -- congestion experienced, set by an ECN-marking queue.
        ecn_echo: ECE -- carried on ACKs back to the sender.
        ts: sender timestamp option (echoed by the receiver for RTT taking).
        ts_echo: receiver's echo of ``ts`` on ACKs.
        sack_blocks: selective-ACK option on ACKs -- up to three inclusive
            (first, last) ranges of out-of-order packets the receiver holds.
    """

    __slots__ = (
        "uid",
        "flow_id",
        "src",
        "dst",
        "size",
        "ptype",
        "seqno",
        "ackno",
        "created_at",
        "is_retransmit",
        "ecn_capable",
        "ecn_ce",
        "ecn_echo",
        "ts",
        "ts_echo",
        "sack_blocks",
    )

    def __init__(
        self,
        uid: int,
        flow_id: int,
        src: str,
        dst: str,
        size: int,
        ptype: PacketType,
        seqno: int = -1,
        ackno: int = -1,
        created_at: float = 0.0,
        is_retransmit: bool = False,
        ecn_capable: bool = False,
        ecn_ce: bool = False,
        ecn_echo: bool = False,
        ts: float = 0.0,
        ts_echo: float = 0.0,
        sack_blocks: Tuple[SackBlock, ...] = (),
    ) -> None:
        self.uid = uid
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.ptype = ptype
        self.seqno = seqno
        self.ackno = ackno
        self.created_at = created_at
        self.is_retransmit = is_retransmit
        self.ecn_capable = ecn_capable
        self.ecn_ce = ecn_ce
        self.ecn_echo = ecn_echo
        self.ts = ts
        self.ts_echo = ts_echo
        self.sack_blocks = sack_blocks

    @property
    def is_data(self) -> bool:
        """True for DATA packets."""
        return self.ptype is PacketType.DATA

    @property
    def is_ack(self) -> bool:
        """True for ACK packets."""
        return self.ptype is PacketType.ACK

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "DATA" if self.is_data else "ACK"
        num = self.seqno if self.is_data else self.ackno
        return (
            f"<Packet #{self.uid} {kind} flow={self.flow_id} "
            f"{self.src}->{self.dst} n={num} {self.size}B>"
        )


# Size of a pure acknowledgement, in bytes (TCP/IP headers only).
ACK_SIZE_BYTES = 40

#: Free-list bound; beyond this, retired packets go to the allocator.
_FREE_LIST_CAP = 4096


class PacketFactory:
    """Mints packets with unique ids.

    One factory per simulation keeps uids dense and runs reproducible.
    Retired packets handed to :meth:`recycle` are reused by the next
    mint; recycling is purely an allocation optimization -- a recycled
    packet is indistinguishable from a fresh one because the mint paths
    assign every field.
    """

    __slots__ = ("_counter", "_free")

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._free: List[Packet] = []

    def recycle(self, packet: Packet) -> None:
        """Return a retired packet to the free list.

        The caller asserts nothing references ``packet`` any more (the
        engine's arg-recycler proves this with a refcount check).
        """
        if len(self._free) < _FREE_LIST_CAP:
            self._free.append(packet)

    def data(
        self,
        flow_id: int,
        src: str,
        dst: str,
        size: int,
        seqno: int,
        now: float,
        is_retransmit: bool = False,
        ecn_capable: bool = False,
        ts: Optional[float] = None,
    ) -> Packet:
        """Create a DATA packet."""
        free = self._free
        if free:
            packet = free.pop()
            packet.uid = next(self._counter)
            packet.flow_id = flow_id
            packet.src = src
            packet.dst = dst
            packet.size = size
            packet.ptype = PacketType.DATA
            packet.seqno = seqno
            packet.ackno = -1
            packet.created_at = now
            packet.is_retransmit = is_retransmit
            packet.ecn_capable = ecn_capable
            packet.ecn_ce = False
            packet.ecn_echo = False
            packet.ts = now if ts is None else ts
            packet.ts_echo = 0.0
            packet.sack_blocks = ()
            return packet
        return Packet(
            uid=next(self._counter),
            flow_id=flow_id,
            src=src,
            dst=dst,
            size=size,
            ptype=PacketType.DATA,
            seqno=seqno,
            created_at=now,
            is_retransmit=is_retransmit,
            ecn_capable=ecn_capable,
            ts=now if ts is None else ts,
        )

    def ack(
        self,
        flow_id: int,
        src: str,
        dst: str,
        ackno: int,
        now: float,
        size: int = ACK_SIZE_BYTES,
        ecn_echo: bool = False,
        ts_echo: float = 0.0,
        sack_blocks: Tuple[SackBlock, ...] = (),
    ) -> Packet:
        """Create an ACK packet."""
        free = self._free
        if free:
            packet = free.pop()
            packet.uid = next(self._counter)
            packet.flow_id = flow_id
            packet.src = src
            packet.dst = dst
            packet.size = size
            packet.ptype = PacketType.ACK
            packet.seqno = -1
            packet.ackno = ackno
            packet.created_at = now
            packet.is_retransmit = False
            packet.ecn_capable = False
            packet.ecn_ce = False
            packet.ecn_echo = ecn_echo
            packet.ts = 0.0
            packet.ts_echo = ts_echo
            packet.sack_blocks = sack_blocks
            return packet
        return Packet(
            uid=next(self._counter),
            flow_id=flow_id,
            src=src,
            dst=dst,
            size=size,
            ptype=PacketType.ACK,
            ackno=ackno,
            created_at=now,
            ecn_echo=ecn_echo,
            ts_echo=ts_echo,
            sack_blocks=sack_blocks,
        )
