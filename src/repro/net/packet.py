"""Packets.

Packets are the unit of simulation.  Following ns-2's ``Agent/TCP`` (the
agent the paper used), TCP here is *packet-counted*: sequence numbers
number whole packets, and windows/buffers are measured in packets.  That
matches every number the paper reports (cwnd in packets, buffer size in
packets, advertised window in packets).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

# A SACK block: an inclusive (first, last) range of received packets.
SackBlock = Tuple[int, int]


class PacketType(enum.Enum):
    """What a packet carries."""

    DATA = "data"
    ACK = "ack"


@dataclass
class Packet:
    """One simulated packet.

    Attributes:
        uid: globally unique id (for tracing and debugging).
        flow_id: id of the transport flow the packet belongs to.
        src: name of the originating node.
        dst: name of the destination node.
        size: on-wire size in bytes (determines transmission time).
        ptype: DATA or ACK.
        seqno: packet sequence number (DATA packets; -1 otherwise).
        ackno: highest in-order sequence received (ACK packets; -1 otherwise).
        created_at: simulated time the packet was created.
        is_retransmit: True if this DATA packet is a retransmission.
        ecn_capable: ECT -- sender supports Explicit Congestion Notification.
        ecn_ce: CE -- congestion experienced, set by an ECN-marking queue.
        ecn_echo: ECE -- carried on ACKs back to the sender.
        ts: sender timestamp option (echoed by the receiver for RTT taking).
        ts_echo: receiver's echo of ``ts`` on ACKs.
        sack_blocks: selective-ACK option on ACKs -- up to three inclusive
            (first, last) ranges of out-of-order packets the receiver holds.
    """

    uid: int
    flow_id: int
    src: str
    dst: str
    size: int
    ptype: PacketType
    seqno: int = -1
    ackno: int = -1
    created_at: float = 0.0
    is_retransmit: bool = False
    ecn_capable: bool = False
    ecn_ce: bool = False
    ecn_echo: bool = False
    ts: float = 0.0
    ts_echo: float = 0.0
    sack_blocks: Tuple[SackBlock, ...] = ()

    @property
    def is_data(self) -> bool:
        """True for DATA packets."""
        return self.ptype is PacketType.DATA

    @property
    def is_ack(self) -> bool:
        """True for ACK packets."""
        return self.ptype is PacketType.ACK

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "DATA" if self.is_data else "ACK"
        num = self.seqno if self.is_data else self.ackno
        return (
            f"<Packet #{self.uid} {kind} flow={self.flow_id} "
            f"{self.src}->{self.dst} n={num} {self.size}B>"
        )


# Size of a pure acknowledgement, in bytes (TCP/IP headers only).
ACK_SIZE_BYTES = 40


@dataclass
class PacketFactory:
    """Mints packets with unique ids.

    One factory per simulation keeps uids dense and runs reproducible.
    """

    _counter: "itertools.count[int]" = field(default_factory=itertools.count)

    def data(
        self,
        flow_id: int,
        src: str,
        dst: str,
        size: int,
        seqno: int,
        now: float,
        is_retransmit: bool = False,
        ecn_capable: bool = False,
        ts: Optional[float] = None,
    ) -> Packet:
        """Create a DATA packet."""
        return Packet(
            uid=next(self._counter),
            flow_id=flow_id,
            src=src,
            dst=dst,
            size=size,
            ptype=PacketType.DATA,
            seqno=seqno,
            created_at=now,
            is_retransmit=is_retransmit,
            ecn_capable=ecn_capable,
            ts=now if ts is None else ts,
        )

    def ack(
        self,
        flow_id: int,
        src: str,
        dst: str,
        ackno: int,
        now: float,
        size: int = ACK_SIZE_BYTES,
        ecn_echo: bool = False,
        ts_echo: float = 0.0,
        sack_blocks: Tuple[SackBlock, ...] = (),
    ) -> Packet:
        """Create an ACK packet."""
        return Packet(
            uid=next(self._counter),
            flow_id=flow_id,
            src=src,
            dst=dst,
            size=size,
            ptype=PacketType.ACK,
            ackno=ackno,
            created_at=now,
            ecn_echo=ecn_echo,
            ts_echo=ts_echo,
            sack_blocks=sack_blocks,
        )
