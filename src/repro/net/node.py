"""Nodes: endpoints and store-and-forward routers.

A node delivers packets addressed to it to the transport agent bound to
the packet's flow id, and forwards everything else along a static route.
Static routing is all the paper's star topology needs.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.net.packet import Packet
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Interface
    from repro.transport.base import Agent


class RoutingError(RuntimeError):
    """Raised when a packet cannot be forwarded or delivered."""


class Node:
    """A network node (client, gateway, or server)."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.interfaces: Dict[str, "Interface"] = {}
        self._routes: Dict[str, str] = {}
        self._default_route: Optional[str] = None
        self._agents: Dict[int, "Agent"] = {}
        self.packets_forwarded = 0
        self.packets_delivered = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_interface(self, neighbor: str, interface: "Interface") -> None:
        """Attach the output port that reaches ``neighbor``."""
        self.interfaces[neighbor] = interface

    def add_route(self, dst: str, via: str) -> None:
        """Route packets for node ``dst`` out the port facing ``via``."""
        if via not in self.interfaces:
            raise RoutingError(f"{self.name}: no interface toward {via!r}")
        self._routes[dst] = via

    def set_default_route(self, via: str) -> None:
        """Route packets with no explicit route out the port facing ``via``."""
        if via not in self.interfaces:
            raise RoutingError(f"{self.name}: no interface toward {via!r}")
        self._default_route = via

    def bind_flow(self, flow_id: int, agent: "Agent") -> None:
        """Deliver packets of ``flow_id`` addressed to this node to ``agent``."""
        if flow_id in self._agents:
            raise ValueError(f"{self.name}: flow {flow_id} already bound")
        self._agents[flow_id] = agent

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Entry point for packets arriving from a link."""
        if packet.dst == self.name:
            self._deliver(packet)
        else:
            self.forward(packet)

    def forward(self, packet: Packet) -> None:
        """Send ``packet`` out the port its destination routes to."""
        via = self._routes.get(packet.dst, self._default_route)
        if via is None:
            raise RoutingError(f"{self.name}: no route to {packet.dst!r}")
        self.packets_forwarded += 1
        self.interfaces[via].send(packet)

    def send(self, packet: Packet) -> None:
        """Origination path used by local transport agents."""
        self.forward(packet)

    def _deliver(self, packet: Packet) -> None:
        agent = self._agents.get(packet.flow_id)
        if agent is None:
            raise RoutingError(
                f"{self.name}: no agent bound for flow {packet.flow_id}"
            )
        self.packets_delivered += 1
        agent.receive(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} ifaces={list(self.interfaces)}>"
