"""Links: output ports with finite rate, propagation delay, and a queue.

An :class:`Interface` is one *direction* of a link: the sending side's
output port.  It owns a queueing discipline and a transmitter.  Packets
offered while the transmitter is busy wait in the queue (or are dropped
by the discipline); the wire itself pipelines any number of packets.

A :class:`Link` is the full-duplex pair of interfaces between two nodes,
matching the paper's "full-duplex link with bandwidth mu and delay tau".
"""

from __future__ import annotations

from typing import Callable, List, TYPE_CHECKING

from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, PacketQueue
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node

SendHook = Callable[[Packet, float], None]


class Interface:
    """One direction of a link: queue + transmitter + wire."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        dst_node: "Node",
        rate_bps: float,
        delay: float,
        queue: PacketQueue,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("propagation delay cannot be negative")
        self._sim = sim
        self.name = name
        self.dst_node = dst_node
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.queue = queue
        self._busy = False
        self._send_hooks: List[SendHook] = []
        self.packets_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def add_send_hook(self, hook: SendHook) -> None:
        """Register ``hook(packet, time)`` called on every packet offered
        to this output port (before the admission decision)."""
        self._send_hooks.append(hook)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Offer a packet to this output port."""
        now = self._sim.now
        for hook in self._send_hooks:
            hook(packet, now)
        if self.queue.enqueue(packet, now) and not self._busy:
            self._pull()

    def transmission_time(self, packet: Packet) -> float:
        """Seconds needed to clock ``packet`` onto the wire."""
        return packet.size * 8.0 / self.rate_bps

    @property
    def busy(self) -> bool:
        """True while a packet is being transmitted."""
        return self._busy

    def _pull(self) -> None:
        packet = self.queue.dequeue(self._sim.now)
        if packet is None:
            return
        self._busy = True
        self._sim.schedule(self.transmission_time(packet), self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += packet.size
        # The wire pipelines: propagation proceeds while the transmitter
        # starts on the next queued packet.
        self._sim.schedule(self.delay, self.dst_node.receive, packet)
        self._busy = False
        self._pull()


class Link:
    """A full-duplex link: two symmetric interfaces.

    Each direction gets its own queue; by default both are generous
    drop-tail queues (loss is meant to happen at the bottleneck port,
    which the topology builder configures explicitly).
    """

    def __init__(
        self,
        sim: Simulator,
        node_a: "Node",
        node_b: "Node",
        rate_bps: float,
        delay: float,
        queue_ab: PacketQueue = None,
        queue_ba: PacketQueue = None,
        default_capacity: int = 1000,
    ) -> None:
        name_ab = f"{node_a.name}->{node_b.name}"
        name_ba = f"{node_b.name}->{node_a.name}"
        if queue_ab is None:
            queue_ab = DropTailQueue(default_capacity, name=f"q:{name_ab}")
        if queue_ba is None:
            queue_ba = DropTailQueue(default_capacity, name=f"q:{name_ba}")
        self.forward = Interface(sim, name_ab, node_b, rate_bps, delay, queue_ab)
        self.reverse = Interface(sim, name_ba, node_a, rate_bps, delay, queue_ba)
        node_a.attach_interface(node_b.name, self.forward)
        node_b.attach_interface(node_a.name, self.reverse)
