"""Queueing disciplines: the abstract interface and drop-tail FIFO.

A queue fronts each link transmitter (one per output port).  The
transmitter calls :meth:`PacketQueue.dequeue` whenever it goes idle; the
forwarding path calls :meth:`PacketQueue.enqueue` on arrival.  A queue
decides admission (drop-tail, RED probabilistic drop, ECN marking) and
keeps its own statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.net.packet import Packet

DropHook = Callable[[Packet, float], None]


@dataclass
class QueueStats:
    """Counters every queue maintains."""

    arrivals: int = 0
    departures: int = 0
    drops: int = 0
    marks: int = 0
    bytes_arrived: int = 0
    bytes_departed: int = 0
    # Time-weighted queue-length integral, for mean occupancy.
    _occupancy_integral: float = 0.0
    _last_change: float = 0.0
    _samples: List[int] = field(default_factory=list)

    def note_length(self, length: int, now: float) -> None:
        """Account occupancy up to ``now`` (call on every length change)."""
        self._occupancy_integral += length * (now - self._last_change)
        self._last_change = now

    def mean_occupancy(self, duration: float) -> float:
        """Time-averaged queue length over ``duration`` seconds."""
        if duration <= 0:
            return 0.0
        return self._occupancy_integral / duration

    @property
    def loss_fraction(self) -> float:
        """Fraction of arrivals dropped."""
        if self.arrivals == 0:
            return 0.0
        return self.drops / self.arrivals


class PacketQueue:
    """Base class for queueing disciplines.

    Subclasses implement :meth:`_admit`, returning True to enqueue the
    packet or False to drop it.  Dropped packets are reported to every
    registered drop hook (monitors, transport-layer loss loggers).
    """

    def __init__(self, capacity: int, name: str = "queue") -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1 packet")
        self.capacity = capacity
        self.name = name
        self.stats = QueueStats()
        self._packets: Deque[Packet] = deque()
        self._drop_hooks: List[DropHook] = []
        self._enqueue_hooks: List[DropHook] = []
        self._dequeue_hooks: List[DropHook] = []
        self._now: float = 0.0
        #: Why the most recent drop happened (read by drop hooks that
        #: want attribution): "tail_overflow" for a full buffer; RED
        #: distinguishes "red_early" (probabilistic), "red_forced"
        #: (average beyond the band), and "buffer_overflow"; DRR uses
        #: "longest_queue" for its mid-buffer evictions.
        self.last_drop_cause: str = "tail_overflow"

    # ------------------------------------------------------------------
    # Hook registration
    # ------------------------------------------------------------------
    def add_drop_hook(self, hook: DropHook) -> None:
        """Register ``hook(packet, time)`` to be called on each drop."""
        self._drop_hooks.append(hook)

    def add_enqueue_hook(self, hook: DropHook) -> None:
        """Register ``hook(packet, time)`` called on each admission."""
        self._enqueue_hooks.append(hook)

    def add_dequeue_hook(self, hook: DropHook) -> None:
        """Register ``hook(packet, time)`` called on each departure."""
        self._dequeue_hooks.append(hook)

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._packets)

    @property
    def byte_length(self) -> int:
        """Total bytes queued."""
        return sum(packet.size for packet in self._packets)

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Offer ``packet`` to the queue at time ``now``.

        Returns True if admitted, False if dropped.
        """
        self._now = now
        self.stats.arrivals += 1
        self.stats.bytes_arrived += packet.size
        self.last_drop_cause = "tail_overflow"
        if self._admit(packet, now):
            self.stats.note_length(len(self._packets), now)
            self._packets.append(packet)
            for hook in self._enqueue_hooks:
                hook(packet, now)
            return True
        self._drop(packet, now)
        return False

    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the head packet, or None if empty."""
        self._now = now
        if not self._packets:
            return None
        self.stats.note_length(len(self._packets), now)
        packet = self._packets.popleft()
        self.stats.departures += 1
        self.stats.bytes_departed += packet.size
        self._on_dequeue(packet, now)
        for hook in self._dequeue_hooks:
            hook(packet, now)
        return packet

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    def _admit(self, packet: Packet, now: float) -> bool:
        """Admission decision; subclasses override."""
        raise NotImplementedError

    def _on_dequeue(self, packet: Packet, now: float) -> None:
        """Subclass hook called after a packet leaves the queue."""

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop(self, packet: Packet, now: float) -> None:
        self.stats.drops += 1
        for hook in self._drop_hooks:
            hook(packet, now)


class DropTailQueue(PacketQueue):
    """Plain FIFO with tail drop -- the paper's "FIFO" gateway discipline."""

    def _admit(self, packet: Packet, now: float) -> bool:
        return len(self._packets) < self.capacity
