"""Deficit Round Robin (DRR) fair queueing with longest-queue drop.

Shreedhar & Varghese, "Efficient Fair Queueing Using Deficit Round
Robin" (SIGCOMM 1995).  Not one of the paper's gateway disciplines, but
the natural third point on its axis: FIFO multiplexes blindly, RED
polices the *aggregate* average, DRR isolates the *flows* -- so when
TCP synchronizes the streams, DRR shows how much of the damage per-flow
scheduling can undo.

* one FIFO per flow, served round-robin; each flow's turn earns a
  byte ``quantum``, and it may send packets while its deficit covers
  them (long packets cannot starve short ones);
* buffer sharing with *longest-queue drop*: when the shared buffer is
  full the packet at the tail of the currently longest per-flow queue
  is evicted (McKenney-style buffer stealing), so a flow bursting ahead
  of its fair share pays for the overflow it causes.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

from repro.net.packet import Packet
from repro.net.queues import PacketQueue


class DRRQueue(PacketQueue):
    """Deficit-round-robin fair queue over a shared buffer."""

    def __init__(
        self,
        capacity: int,
        quantum: int = 1000,
        name: str = "drr",
    ) -> None:
        super().__init__(capacity, name=name)
        if quantum < 1:
            raise ValueError("quantum must be at least 1 byte")
        self.quantum = quantum
        # Per-flow FIFOs in round-robin order (OrderedDict keeps the
        # service rotation stable and O(1) to rotate).
        self._flows: "OrderedDict[int, Deque[Packet]]" = OrderedDict()
        self._deficits: Dict[int, int] = {}
        self._total = 0

    # ------------------------------------------------------------------
    # Size accounting (overrides the single-deque base behaviour)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._total

    @property
    def byte_length(self) -> int:
        return sum(p.size for q in self._flows.values() for p in q)

    def flow_queue_length(self, flow_id: int) -> int:
        """Packets queued for one flow (0 if none)."""
        queue = self._flows.get(flow_id)
        return len(queue) if queue else 0

    # ------------------------------------------------------------------
    # Enqueue with longest-queue drop
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> bool:
        self.stats.arrivals += 1
        self.stats.bytes_arrived += packet.size
        if self._total >= self.capacity:
            victim_flow = self._longest_flow()
            incoming_longer = (
                self.flow_queue_length(packet.flow_id)
                >= self.flow_queue_length(victim_flow)
            )
            if incoming_longer:
                # The arriving flow is (one of) the hogs: drop the arrival.
                self.last_drop_cause = "longest_queue"
                self._drop(packet, now)
                return False
            victim = self._flows[victim_flow].pop()  # tail of the hog
            self._total -= 1
            self.last_drop_cause = "longest_queue"
            self._drop(victim, now)
        self.stats.note_length(self._total, now)
        queue = self._flows.get(packet.flow_id)
        if queue is None:
            queue = deque()
            self._flows[packet.flow_id] = queue
            self._deficits[packet.flow_id] = 0
        queue.append(packet)
        self._total += 1
        for hook in self._enqueue_hooks:
            hook(packet, now)
        return True

    def _longest_flow(self) -> int:
        return max(self._flows, key=lambda f: len(self._flows[f]))

    # ------------------------------------------------------------------
    # DRR service
    # ------------------------------------------------------------------
    def dequeue(self, now: float) -> Optional[Packet]:
        if self._total == 0:
            return None
        while True:
            flow_id, queue = next(iter(self._flows.items()))
            if not queue:
                # Idle flow leaves the rotation (and forfeits deficit).
                del self._flows[flow_id]
                del self._deficits[flow_id]
                continue
            if self._deficits[flow_id] >= queue[0].size:
                self.stats.note_length(self._total, now)
                packet = queue.popleft()
                self._deficits[flow_id] -= packet.size
                self._total -= 1
                if not queue:
                    del self._flows[flow_id]
                    del self._deficits[flow_id]
                self.stats.departures += 1
                self.stats.bytes_departed += packet.size
                for hook in self._dequeue_hooks:
                    hook(packet, now)
                return packet
            # Turn over: earn a quantum and go to the back of the rotation.
            self._deficits[flow_id] += self.quantum
            self._flows.move_to_end(flow_id)

    # The base-class hooks operate on self._packets; DRR replaces the
    # whole data path above, so they must never be reached.
    def _admit(self, packet: Packet, now: float) -> bool:  # pragma: no cover
        raise AssertionError("DRRQueue overrides enqueue() directly")
