"""Measurement instruments.

* :class:`ArrivalMonitor` -- counts packets offered to an output port in
  fixed-width time bins.  Binned by the round-trip propagation delay it
  yields exactly the counts whose c.o.v. the paper's Figure 2 plots.
* :class:`QueueMonitor` -- periodic samples of a queue's length (and RED
  average) for queue-dynamics plots.
* :class:`FlowStats` -- per-flow delivery counters kept by sinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.net.link import Interface
from repro.net.packet import Packet
from repro.net.queues import PacketQueue
from repro.obs.registry import MetricRegistry
from repro.sim.engine import Simulator


class ArrivalMonitor:
    """Bin packet arrivals at an output port into fixed-width windows.

    Only DATA packets are counted (ACKs traverse the reverse path and do
    not contribute to the forward aggregate the paper measures).
    """

    def __init__(
        self,
        bin_width: float,
        start_time: float = 0.0,
        data_only: bool = True,
    ) -> None:
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        self.bin_width = bin_width
        self.start_time = start_time
        self.data_only = data_only
        self._counts: List[int] = []
        self.total = 0
        self.drops_seen = 0

    def attach(self, interface: Interface) -> "ArrivalMonitor":
        """Hook this monitor onto an output port; returns self."""
        interface.add_send_hook(self.on_packet)
        interface.queue.add_drop_hook(self.on_drop)
        return self

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet, now: float) -> None:
        """Record one arrival (send-hook signature)."""
        if self.data_only and not packet.is_data:
            return
        if now < self.start_time:
            return
        index = int((now - self.start_time) / self.bin_width)
        counts = self._counts
        if index >= len(counts):
            counts.extend([0] * (index + 1 - len(counts)))
        counts[index] += 1
        self.total += 1

    def on_drop(self, packet: Packet, now: float) -> None:
        """Count drops at the monitored port (drop-hook signature)."""
        if self.data_only and not packet.is_data:
            return
        if now >= self.start_time:
            self.drops_seen += 1

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def counts(self, until: Optional[float] = None) -> np.ndarray:
        """Per-bin arrival counts.

        Args:
            until: if given, pad/truncate so the array covers exactly
                ``[start_time, until)`` -- trailing empty bins count.
        """
        counts = np.asarray(self._counts, dtype=float)
        if until is None:
            return counts
        n_bins = int((until - self.start_time) / self.bin_width)
        if n_bins <= 0:
            return np.zeros(0)
        if len(counts) >= n_bins:
            return counts[:n_bins]
        return np.concatenate([counts, np.zeros(n_bins - len(counts))])


class FlowArrivalMonitor:
    """Record per-flow DATA arrival times at an output port.

    The raw material for cross-stream dependence analysis
    (:mod:`repro.core.dependence`): who sent what into the gateway,
    when, flow by flow.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.start_time = start_time
        self.times_by_flow: dict = {}

    def attach(self, interface: Interface) -> "FlowArrivalMonitor":
        """Hook onto an output port; returns self."""
        interface.add_send_hook(self.on_packet)
        return self

    def on_packet(self, packet: Packet, now: float) -> None:
        """Record one arrival (send-hook signature)."""
        if not packet.is_data or now < self.start_time:
            return
        self.times_by_flow.setdefault(packet.flow_id, []).append(now)


class QueueMonitor:
    """Sample a queue's occupancy (and RED average) on a fixed period.

    Samples are stored in a flight-recorder time series
    (:class:`repro.obs.registry.TimeSeries`).  Pass a shared
    :class:`~repro.obs.registry.MetricRegistry` to publish the series
    into a run's observability bundle; with no registry the monitor
    keeps a private, always-enabled one (the pre-obs behaviour).
    """

    def __init__(
        self,
        sim: Simulator,
        queue: PacketQueue,
        period: float,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self._sim = sim
        self._queue = queue
        self.period = period
        if registry is None:
            registry = MetricRegistry()  # private, every category enabled
        self.series = registry.series(
            f"queue.sampled.{queue.name}", columns=("length", "red_avg")
        )
        sim.schedule(0.0, self._sample)

    def _sample(self) -> None:
        queue = self._queue
        self.series.append(
            self._sim.now,
            len(queue),
            float(getattr(queue, "avg", len(queue))),
        )
        self._sim.schedule(self.period, self._sample)

    # Backwards-compatible list views over the underlying series.
    @property
    def times(self) -> List[float]:
        """Sample times, in order."""
        return self.series.times()

    @property
    def lengths(self) -> List[int]:
        """Instantaneous queue lengths at each sample."""
        return self.series.column("length")

    @property
    def averages(self) -> List[float]:
        """RED EWMA at each sample (instantaneous length when no EWMA)."""
        return self.series.column("red_avg")

    def as_arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """(times, instantaneous lengths, averaged lengths) as arrays."""
        return (
            np.asarray(self.times),
            np.asarray(self.lengths, dtype=float),
            np.asarray(self.averages, dtype=float),
        )


@dataclass
class FlowStats:
    """Delivery counters for one flow, kept at the receiving sink."""

    flow_id: int
    packets_received: int = 0
    bytes_received: int = 0
    unique_packets: int = 0  # in-order progress (retransmit duplicates excluded)
    duplicates: int = 0
    out_of_order: int = 0
    last_arrival: float = 0.0
    arrival_times: List[float] = field(default_factory=list)
