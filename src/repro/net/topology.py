"""The paper's network model (Figure 1): a client/server dumbbell.

``N`` clients each connect to a common gateway over a full-duplex access
link (``mu_c``, ``tau_c``); the gateway connects to the single server
over the bottleneck full-duplex link (``mu_s``, ``tau_s``).  The
gateway's output port toward the server carries the configurable
queueing discipline (FIFO or RED) with buffer size ``B``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.net.link import Interface, Link
from repro.net.node import Node
from repro.net.packet import PacketFactory
from repro.net.queues import DropTailQueue, PacketQueue
from repro.sim.engine import Simulator

QueueFactory = Callable[["DumbbellParams", random.Random], PacketQueue]


def _default_bottleneck_queue(
    params: "DumbbellParams", rng: random.Random
) -> PacketQueue:
    return DropTailQueue(params.buffer_capacity, name="q:gateway->server")


@dataclass
class DumbbellParams:
    """Physical parameters of the dumbbell (paper's Table 1 symbols)."""

    n_clients: int = 20
    client_rate_bps: float = 10e6  # mu_c
    client_delay: float = 0.002  # tau_c
    bottleneck_rate_bps: float = 3e6  # mu_s
    bottleneck_delay: float = 0.020  # tau_s
    buffer_capacity: int = 50  # B, packets
    access_queue_capacity: int = 1000  # effectively lossless access ports
    queue_factory: QueueFactory = field(default=_default_bottleneck_queue)

    @property
    def rtt_prop(self) -> float:
        """Round-trip propagation delay (the c.o.v. binning window)."""
        return 2.0 * (self.client_delay + self.bottleneck_delay)

    def validate(self) -> None:
        """Raise ValueError on nonsensical parameters."""
        if self.n_clients < 1:
            raise ValueError("need at least one client")
        if self.client_rate_bps <= 0 or self.bottleneck_rate_bps <= 0:
            raise ValueError("link rates must be positive")
        if self.client_delay < 0 or self.bottleneck_delay < 0:
            raise ValueError("delays cannot be negative")
        if self.buffer_capacity < 1:
            raise ValueError("gateway buffer must hold at least one packet")


class DumbbellNetwork:
    """The constructed topology with named handles to its pieces."""

    GATEWAY = "gateway"
    SERVER = "server"

    def __init__(
        self,
        sim: Simulator,
        params: DumbbellParams,
        rng: Optional[random.Random] = None,
    ) -> None:
        params.validate()
        self.sim = sim
        self.params = params
        self.packet_factory = PacketFactory()
        rng = rng or random.Random(0)

        self.gateway = Node(sim, self.GATEWAY)
        self.server = Node(sim, self.SERVER)
        self.clients: List[Node] = [
            Node(sim, self.client_name(i)) for i in range(params.n_clients)
        ]

        # Bottleneck link; the gateway->server direction carries the
        # discipline under study, the reverse (ACK) direction a generous
        # drop-tail queue.
        bottleneck_queue = params.queue_factory(params, rng)
        Link(
            sim,
            self.gateway,
            self.server,
            params.bottleneck_rate_bps,
            params.bottleneck_delay,
            queue_ab=bottleneck_queue,
            queue_ba=DropTailQueue(
                params.access_queue_capacity, name="q:server->gateway"
            ),
        )

        # Access links.
        for client in self.clients:
            Link(
                sim,
                client,
                self.gateway,
                params.client_rate_bps,
                params.client_delay,
                queue_ab=DropTailQueue(
                    params.access_queue_capacity, name=f"q:{client.name}->gateway"
                ),
                queue_ba=DropTailQueue(
                    params.access_queue_capacity, name=f"q:gateway->{client.name}"
                ),
            )
            # Static routes: clients send everything via the gateway ...
            client.set_default_route(self.GATEWAY)
            # ... and the gateway knows each client by name.
            self.gateway.add_route(client.name, client.name)
        self.gateway.add_route(self.SERVER, self.SERVER)
        self.server.set_default_route(self.GATEWAY)

    # ------------------------------------------------------------------
    # Handles
    # ------------------------------------------------------------------
    @staticmethod
    def client_name(index: int) -> str:
        """Canonical node name of client ``index``."""
        return f"client-{index}"

    @property
    def bottleneck_interface(self) -> Interface:
        """The gateway's output port toward the server."""
        return self.gateway.interfaces[self.SERVER]

    @property
    def bottleneck_queue(self) -> PacketQueue:
        """The queueing discipline under study."""
        return self.bottleneck_interface.queue

    @property
    def rtt_prop(self) -> float:
        """Round-trip propagation delay between a client and the server."""
        return self.params.rtt_prop

    def ascii_diagram(self) -> str:
        """Render the Figure-1 topology for terminal output."""
        p = self.params
        lines = [
            "client-0   \\",
            f"client-1    \\   mu_c={p.client_rate_bps/1e6:g} Mbps",
            f"  ...        >--[ gateway | B={p.buffer_capacity} pkts ]"
            f"==( mu_s={p.bottleneck_rate_bps/1e6:g} Mbps,"
            f" tau_s={p.bottleneck_delay*1e3:g} ms )==> [ server ]",
            f"client-{p.n_clients - 1}   /    tau_c={p.client_delay*1e3:g} ms",
        ]
        return "\n".join(lines)


def build_dumbbell(
    sim: Simulator,
    params: Optional[DumbbellParams] = None,
    rng: Optional[random.Random] = None,
) -> DumbbellNetwork:
    """Convenience constructor with default (paper Table 1) parameters."""
    return DumbbellNetwork(sim, params or DumbbellParams(), rng)
