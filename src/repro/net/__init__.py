"""Packet-level network substrate.

This package models the data path the paper's ns simulations used:
store-and-forward nodes connected by full-duplex links, each output port
fronted by a queueing discipline (drop-tail FIFO or RED), and a
dumbbell/star topology builder matching the paper's Figure 1.
"""

from repro.net.fq import DRRQueue
from repro.net.link import Interface, Link
from repro.net.monitor import (
    ArrivalMonitor,
    FlowArrivalMonitor,
    FlowStats,
    QueueMonitor,
)
from repro.net.node import Node
from repro.net.packet import Packet, PacketFactory, PacketType
from repro.net.queues import DropTailQueue, PacketQueue, QueueStats
from repro.net.red import REDParams, REDQueue, AdaptiveREDQueue
from repro.net.topology import DumbbellNetwork, DumbbellParams, build_dumbbell

__all__ = [
    "AdaptiveREDQueue",
    "ArrivalMonitor",
    "DRRQueue",
    "DropTailQueue",
    "DumbbellNetwork",
    "DumbbellParams",
    "FlowArrivalMonitor",
    "FlowStats",
    "Interface",
    "Link",
    "Node",
    "Packet",
    "PacketFactory",
    "PacketType",
    "PacketQueue",
    "QueueMonitor",
    "QueueStats",
    "REDParams",
    "REDQueue",
    "build_dumbbell",
]
