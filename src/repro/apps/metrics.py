"""Job-level metrics of a closed-loop application workload.

:class:`AppMetrics` is the flat, picklable summary of what the
*application* experienced in one run -- request latency percentiles,
job completion times, barrier stalls, achieved vs. offered work rate --
complementing the packet-level c.o.v./throughput/loss metrics the paper
reports.  It is carried on :class:`~repro.experiments.scenario.
ScenarioResult` and flattened into :class:`~repro.experiments.results.
ScenarioMetrics` for sweeps, CSV/JSON export, and the figures layer.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List, Sequence

import numpy as np

_NAN = float("nan")


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return _NAN
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass(frozen=True)
class AppMetrics:
    """What the application saw: one run's job-level summary."""

    workload: str
    # Work-unit accounting (requests / shuffles / jobs, by workload).
    units_issued: int = 0
    units_completed: int = 0
    units_failed: int = 0
    app_packets: int = 0
    # Request/response latency (RPC; issue to response arrival).
    latency_mean: float = _NAN
    latency_p50: float = _NAN
    latency_p99: float = _NAN
    latency_max: float = _NAN
    # Job completion time (bulk transfers).
    job_time_mean: float = _NAN
    job_time_p50: float = _NAN
    job_time_max: float = _NAN
    # Barrier behaviour (BSP).
    supersteps: int = 0
    barrier_stall_mean: float = _NAN
    barrier_stall_max: float = _NAN
    barrier_stall_total: float = 0.0
    # Throughput of the closed loop: completions vs. issues per second.
    offered_unit_rate: float = _NAN
    achieved_unit_rate: float = _NAN

    @property
    def completion_ratio(self) -> float:
        """Fraction of issued units that completed (NaN if none issued)."""
        if self.units_issued == 0:
            return _NAN
        return self.units_completed / self.units_issued

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_workloads(
        cls,
        workload: str,
        apps: Sequence[Any],
        duration: float,
        supersteps: int = 0,
    ) -> "AppMetrics":
        """Aggregate per-flow workload objects into one summary."""
        latencies: List[float] = []
        job_times: List[float] = []
        stalls: List[float] = []
        issued = completed = failed = packets = 0
        for app in apps:
            issued += app.units_issued
            completed += app.units_completed
            failed += app.units_failed
            packets += app.generated
            latencies.extend(getattr(app, "request_latencies", ()))
            job_times.extend(getattr(app, "job_times", ()))
            stalls.extend(getattr(app, "barrier_stalls", ()))
        return cls(
            workload=workload,
            units_issued=issued,
            units_completed=completed,
            units_failed=failed,
            app_packets=packets,
            latency_mean=(sum(latencies) / len(latencies)) if latencies else _NAN,
            latency_p50=_percentile(latencies, 50.0),
            latency_p99=_percentile(latencies, 99.0),
            latency_max=max(latencies) if latencies else _NAN,
            job_time_mean=(sum(job_times) / len(job_times)) if job_times else _NAN,
            job_time_p50=_percentile(job_times, 50.0),
            job_time_max=max(job_times) if job_times else _NAN,
            supersteps=supersteps,
            barrier_stall_mean=(sum(stalls) / len(stalls)) if stalls else _NAN,
            barrier_stall_max=max(stalls) if stalls else _NAN,
            barrier_stall_total=sum(stalls),
            offered_unit_rate=issued / duration if duration > 0 else _NAN,
            achieved_unit_rate=completed / duration if duration > 0 else _NAN,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (for CSV/JSON export)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "AppMetrics":
        """Rebuild from :meth:`as_dict` output; unknown keys ignored."""
        kwargs = {
            spec.name: record[spec.name] for spec in fields(cls) if spec.name in record
        }
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable summary, workload-appropriate."""
        unit = {"rpc": "request", "bsp": "shuffle", "bulk": "job"}.get(
            self.workload, "unit"
        )
        lines = [
            f"application workload: {self.workload}",
            f"  {unit}s issued/completed/failed = "
            f"{self.units_issued}/{self.units_completed}/{self.units_failed} "
            f"({self.app_packets} packets)",
            f"  achieved {unit} rate = {self.achieved_unit_rate:.3f}/s "
            f"(offered {self.offered_unit_rate:.3f}/s)",
        ]
        if math.isfinite(self.latency_mean):
            lines.append(
                f"  request latency mean/p50/p99/max = "
                f"{self.latency_mean:.4f}/{self.latency_p50:.4f}/"
                f"{self.latency_p99:.4f}/{self.latency_max:.4f} s"
            )
        if math.isfinite(self.job_time_mean):
            lines.append(
                f"  job completion mean/p50/max = "
                f"{self.job_time_mean:.4f}/{self.job_time_p50:.4f}/"
                f"{self.job_time_max:.4f} s"
            )
        if self.supersteps or math.isfinite(self.barrier_stall_mean):
            lines.append(
                f"  supersteps = {self.supersteps}, barrier stall "
                f"mean/max/total = {self.barrier_stall_mean:.4f}/"
                f"{self.barrier_stall_max:.4f}/{self.barrier_stall_total:.4f} s"
            )
        return "\n".join(lines)
