"""Closed-loop application workloads for the distributed-computing half
of the paper's title.

The paper's clients are *open loop*: Poisson/CBR/Pareto sources hand
packets to TCP at a rate that never reacts to the network.  The
workloads in this package close the loop -- they issue application
*work units* (RPC requests, BSP shuffle phases, bulk-transfer jobs)
into a transport agent and only issue the next unit after observing
delivery completions at the sink, so TCP backpressure feeds back into
the offered load, as it does in a real distributed computing system.

* :mod:`repro.apps.base` -- the :class:`AppWorkload` abstraction
  (work-unit accounting, completion detection, unit timeouts).
* :mod:`repro.apps.rpc` -- closed-loop request/response RPC clients.
* :mod:`repro.apps.bsp` -- bulk-synchronous-parallel supersteps with a
  global barrier (straggler / barrier-stall amplification).
* :mod:`repro.apps.bulk` -- fixed-size checkpoint/file-transfer jobs
  with job-completion-time as the metric.
* :mod:`repro.apps.metrics` -- :class:`AppMetrics`, the job-level
  summary threaded into scenario results and sweeps.
"""

from repro.apps.base import AppWorkload, WorkUnit
from repro.apps.bsp import BspCoordinator, BspWorkload
from repro.apps.bulk import BulkTransferWorkload
from repro.apps.metrics import AppMetrics
from repro.apps.rpc import RpcClientWorkload

__all__ = [
    "AppMetrics",
    "AppWorkload",
    "BspCoordinator",
    "BspWorkload",
    "BulkTransferWorkload",
    "RpcClientWorkload",
    "WorkUnit",
]
