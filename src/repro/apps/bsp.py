"""Bulk-synchronous-parallel (BSP) supersteps with a global barrier.

N workers repeat: *compute* (an exponentially distributed local phase,
whose spread creates natural stragglers), then *shuffle* (each worker
pushes ``shuffle_packets`` through its transport), then *barrier* (no
worker proceeds until every worker's shuffle has been delivered).  The
time a worker spends blocked between finishing its own shuffle and the
barrier releasing is its *barrier stall* -- the quantity TCP's bursty
service amplifies: one flow's timeout holds all N workers idle.

The barrier release is propagated to the workers after a modeled
reverse-path delay (the coordinator's release message travels the
uncongested ACK path).  A worker whose shuffle times out (possible over
UDP, where losses are never repaired) reports the barrier anyway as
*failed* so a single lossy flow cannot deadlock the computation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.apps.base import AppWorkload, WorkUnit
from repro.sim.engine import Simulator
from repro.transport.base import Agent


class BspCoordinator:
    """The barrier: collects per-superstep completions from N workers."""

    def __init__(self, sim: Simulator, release_delay: float = 0.0) -> None:
        self.sim = sim
        self.release_delay = release_delay
        self.workers: List["BspWorkload"] = []
        self.supersteps_completed = 0
        self.failed_shuffles = 0
        self._arrived: Dict[int, float] = {}  # worker index -> finish time
        self._started = False
        self._stop_at: Optional[float] = None

    def register(self, worker: "BspWorkload") -> int:
        """Add a worker; returns its index."""
        if self._started:
            raise RuntimeError("cannot register workers after the job started")
        self.workers.append(worker)
        return len(self.workers) - 1

    def start(self, at: float = 0.0, stop_at: Optional[float] = None) -> None:
        """Launch superstep 0 on every registered worker."""
        if self._started:
            return
        if not self.workers:
            raise RuntimeError("a BSP job needs at least one worker")
        self._started = True
        self._stop_at = stop_at
        self.sim.schedule_at(max(at, self.sim.now), self._launch_superstep)

    def _launch_superstep(self) -> None:
        if self._stop_at is not None and self.sim.now >= self._stop_at:
            return
        self._arrived.clear()
        for worker in self.workers:
            worker.begin_superstep()

    def worker_done(self, index: int, time: float, failed: bool) -> None:
        """A worker's shuffle was delivered (or written off)."""
        if failed:
            self.failed_shuffles += 1
        if index in self._arrived:  # pragma: no cover - defensive
            return
        self._arrived[index] = time
        if len(self._arrived) < len(self.workers):
            return
        # Barrier reached: everyone's stall is the gap to the last arrival.
        release = time
        for worker in self.workers:
            worker.barrier_stalls.append(release - self._arrived[worker.index])
        self.supersteps_completed += 1
        self.sim.schedule(self.release_delay, self._launch_superstep)


class BspWorkload(AppWorkload):
    """One BSP worker: compute, shuffle, block on the barrier."""

    def __init__(
        self,
        sim: Simulator,
        agent: Agent,
        sink,
        rng: random.Random,
        coordinator: BspCoordinator,
        shuffle_packets: int = 30,
        compute_time: float = 0.5,
        name: str = "bsp",
        unit_timeout: float = 30.0,
    ) -> None:
        super().__init__(sim, agent, sink, name=name, unit_timeout=unit_timeout)
        if shuffle_packets < 1:
            raise ValueError("shuffles must carry at least one packet")
        self.rng = rng
        self.coordinator = coordinator
        self.shuffle_packets = shuffle_packets
        self.compute_time = compute_time
        self.index = coordinator.register(self)
        #: per-superstep barrier stall (release time minus own finish)
        self.barrier_stalls: List[float] = []
        #: shuffle-phase durations (issue to full delivery), seconds
        self.shuffle_times: List[float] = []

    def _begin(self) -> None:
        # The coordinator owns the superstep schedule; starting any one
        # worker arms the whole job exactly once.
        self.coordinator.start(at=self.sim.now, stop_at=self._stop_at)

    # ------------------------------------------------------------------
    def begin_superstep(self) -> None:
        """Coordinator callback: start this worker's compute phase."""
        if self.compute_time <= 0:
            compute = 0.0
        else:
            compute = self.rng.expovariate(1.0 / self.compute_time)
        self.sim.schedule(compute, self._shuffle)

    def _shuffle(self) -> None:
        self._issue_unit(self.shuffle_packets)

    def _on_unit_complete(self, unit: WorkUnit, time: float) -> None:
        self.shuffle_times.append(time - unit.issued_at)
        self.coordinator.worker_done(self.index, time, failed=False)

    def _on_unit_failed(self, unit: WorkUnit, time: float) -> None:
        self.coordinator.worker_done(self.index, time, failed=True)
