"""Bulk-transfer jobs: checkpoints / file transfers of fixed size.

Each client repeatedly ships a job of ``job_packets`` application
packets (handed to the transport in one burst -- the window, not the
application, paces the wire) and measures *job completion time*: the
span from handing the job to the transport until the sink has delivered
every packet.  Between jobs the client idles for an exponentially
distributed gap (checkpoint interval / user think time), so the next
job's start -- and hence the offered load -- is pushed back by however
long TCP took to drain the previous one.
"""

from __future__ import annotations

import random
from typing import List

from repro.apps.base import AppWorkload, WorkUnit
from repro.sim.engine import Simulator
from repro.transport.base import Agent


class BulkTransferWorkload(AppWorkload):
    """Sequential fixed-size transfer jobs on one flow."""

    def __init__(
        self,
        sim: Simulator,
        agent: Agent,
        sink,
        rng: random.Random,
        job_packets: int = 200,
        job_gap: float = 1.0,
        name: str = "bulk",
        unit_timeout: float = 30.0,
    ) -> None:
        super().__init__(sim, agent, sink, name=name, unit_timeout=unit_timeout)
        if job_packets < 1:
            raise ValueError("jobs must carry at least one packet")
        self.rng = rng
        self.job_packets = job_packets
        self.job_gap = job_gap
        #: completion time of every finished job, seconds, in order
        self.job_times: List[float] = []

    def _gap(self) -> float:
        if self.job_gap <= 0:
            return 0.0
        return self.rng.expovariate(1.0 / self.job_gap)

    def _begin(self) -> None:
        # First job after one gap draw, staggering the clients.
        self.sim.schedule(self._gap(), self._issue_job)

    def _issue_job(self) -> None:
        if self.stopped:
            return
        self._issue_unit(self.job_packets)

    def _on_unit_complete(self, unit: WorkUnit, time: float) -> None:
        self.job_times.append(time - unit.issued_at)
        self._next_job()

    def _on_unit_failed(self, unit: WorkUnit, time: float) -> None:
        self._next_job()

    def _next_job(self) -> None:
        if self.stopped:
            return
        self.sim.schedule(self._gap(), self._issue_job)
