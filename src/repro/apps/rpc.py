"""Closed-loop request/response RPC clients.

Each client keeps up to ``outstanding`` requests in flight.  A request
is ``request_packets`` application packets handed to the transport; it
completes when the sink has delivered them all, after which the server's
response (``response_packets``, traversing the uncongested reverse path)
arrives one modeled ``response_delay`` later.  The client then thinks
for an exponentially distributed time and issues the next request.

Only the forward (congested, simulated) direction carries simulated
packets; the reverse direction shares the path of the ACK stream, which
the dumbbell never congests, so the response is modeled as a
deterministic latency rather than simulated packet by packet (see
DESIGN.md).  Request latency is measured application-to-application:
issue instant to response arrival, including send-buffer wait, all
retransmissions, and the modeled response path.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.apps.base import AppWorkload, WorkUnit
from repro.sim.engine import Simulator
from repro.transport.base import Agent


class RpcClientWorkload(AppWorkload):
    """A closed-loop RPC client driving one transport flow."""

    def __init__(
        self,
        sim: Simulator,
        agent: Agent,
        sink,
        rng: random.Random,
        request_packets: int = 2,
        response_delay: float = 0.0,
        think_time: float = 0.2,
        outstanding: int = 1,
        name: str = "rpc",
        unit_timeout: float = 30.0,
    ) -> None:
        super().__init__(sim, agent, sink, name=name, unit_timeout=unit_timeout)
        if request_packets < 1:
            raise ValueError("requests must carry at least one packet")
        if outstanding < 1:
            raise ValueError("need at least one outstanding-request slot")
        self.rng = rng
        self.request_packets = request_packets
        self.response_delay = response_delay
        self.think_time = think_time
        self.outstanding = outstanding
        #: issue-to-response latency of every completed request, seconds,
        #: in completion order
        self.request_latencies: List[float] = []

    # ------------------------------------------------------------------
    def _think(self) -> float:
        """One think-time draw (0 when thinking is disabled)."""
        if self.think_time <= 0:
            return 0.0
        return self.rng.expovariate(1.0 / self.think_time)

    def _begin(self) -> None:
        # Stagger the slots' first requests by one think draw each so
        # clients do not start in lockstep.
        for _ in range(self.outstanding):
            self.sim.schedule(self._think(), self._issue_request)

    def _issue_request(self) -> None:
        if self.stopped:
            return
        self._issue_unit(self.request_packets)

    # ------------------------------------------------------------------
    def _on_unit_complete(self, unit: WorkUnit, time: float) -> None:
        # The server has the full request; the response arrives after the
        # modeled reverse-path delay.
        self.sim.schedule_at(time + self.response_delay, self._response, unit)

    def _response(self, unit: WorkUnit) -> None:
        self.request_latencies.append(self.sim.now - unit.issued_at)
        self._slot_free()

    def _on_unit_failed(self, unit: WorkUnit, time: float) -> None:
        # The request is abandoned (RPC deadline exceeded); the slot
        # moves on to fresh work after the usual think time.
        self._slot_free()

    def _slot_free(self) -> None:
        if self.stopped:
            return
        self.sim.schedule(self._think(), self._issue_request)

    # ------------------------------------------------------------------
    @property
    def mean_latency(self) -> Optional[float]:
        """Mean request latency (None if nothing completed)."""
        if not self.request_latencies:
            return None
        return sum(self.request_latencies) / len(self.request_latencies)
