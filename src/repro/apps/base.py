"""The closed-loop application-workload abstraction.

An :class:`AppWorkload` sits where a :class:`~repro.traffic.base.
TrafficSource` sits -- it feeds application packets into a transport
:class:`~repro.transport.base.Agent` -- but unlike a source it *waits*:
each batch of packets it issues belongs to a :class:`WorkUnit` (an RPC
request, a shuffle phase, a transfer job), and the workload observes the
unit's completion through the sink's delivery hook before deciding what
to do next.  Offered load therefore responds to transport backpressure,
which is the defining property of real distributed-computing traffic.

Completion detection is counting-based: the sink reports its cumulative
count of in-order delivered packets, and units complete in FIFO issue
order once the count reaches their issue boundary.  Over an unreliable
transport (UDP) a unit whose packets were dropped would stall the flow
forever, so every unit carries a timeout; an expired unit is marked
failed and its undelivered packets are credited so later units still
complete (late-arriving in-flight packets can at worst complete a later
unit marginally early -- an accepted approximation, documented in
DESIGN.md).

Workloads deliberately duck-type the :class:`TrafficSource` recording
interface (``generated`` plus ``add_hook``) so the existing
:class:`~repro.traffic.recorder.OfferedTrafficRecorder` measures the
*offered* (application-level) process of a closed-loop run unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.transport.base import Agent

GenerateHook = Callable[[float, int], None]


class WorkUnit:
    """One in-flight application work unit (a batch of packets)."""

    __slots__ = ("size", "boundary", "issued_at", "timeout_event", "token")

    def __init__(self, size: int, boundary: int, issued_at: float, token: object = None):
        self.size = size
        #: cumulative issued-packet count at which this unit is complete
        self.boundary = boundary
        self.issued_at = issued_at
        self.timeout_event: Optional[Event] = None
        #: opaque subclass payload (e.g. an RPC slot id)
        self.token = token


class AppWorkload:
    """Base class: issues work units into a transport, closed loop.

    Subclasses drive the workload by calling :meth:`_issue_unit` and
    implementing :meth:`_on_unit_complete` / :meth:`_on_unit_failed`;
    the base class does unit accounting, completion detection via the
    sink's delivery hook, and per-unit timeouts.
    """

    def __init__(
        self,
        sim: Simulator,
        agent: Agent,
        sink,
        name: str = "app",
        unit_timeout: float = 30.0,
    ) -> None:
        self.sim = sim
        self.agent = agent
        self.sink = sink
        self.name = name
        self.unit_timeout = unit_timeout
        # TrafficSource-compatible recording surface.
        self.generated = 0
        self._hooks: List[GenerateHook] = []
        # Closed-loop state.
        self.delivered = 0  # sink's cumulative in-order count
        self._credit = 0  # packets written off by unit timeouts
        self._pending: Deque[WorkUnit] = deque()
        self.units_issued = 0
        self.units_completed = 0
        self.units_failed = 0
        self._stop_at: Optional[float] = None
        self._started = False
        sink.add_delivery_hook(self._on_delivery)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def start(self, at: float = 0.0, stop_at: Optional[float] = None) -> None:
        """Begin the workload at absolute time ``at`` (issue no new
        units after ``stop_at``; in-flight units still complete)."""
        if self._started:
            raise RuntimeError(f"workload {self.name!r} already started")
        self._started = True
        self._stop_at = stop_at
        self.sim.schedule_at(max(at, self.sim.now), self._begin)

    @property
    def stopped(self) -> bool:
        """Whether the issue window has closed."""
        return self._stop_at is not None and self.sim.now >= self._stop_at

    def _begin(self) -> None:
        """Kick off the workload (subclasses override)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Recording surface (OfferedTrafficRecorder compatibility)
    # ------------------------------------------------------------------
    def add_hook(self, hook: GenerateHook) -> None:
        """Register ``hook(time, n_packets)`` called on each issue."""
        self._hooks.append(hook)

    def _emit(self, n_packets: int) -> None:
        self.generated += n_packets
        for hook in self._hooks:
            hook(self.sim.now, n_packets)
        self.agent.app_arrival(n_packets)

    # ------------------------------------------------------------------
    # Work-unit lifecycle
    # ------------------------------------------------------------------
    def _issue_unit(self, size: int, token: object = None) -> WorkUnit:
        """Issue ``size`` packets as one unit; returns the unit."""
        if size < 1:
            raise ValueError("work units must carry at least one packet")
        unit = WorkUnit(
            size=size,
            boundary=self.generated + size,
            issued_at=self.sim.now,
            token=token,
        )
        self._pending.append(unit)
        self.units_issued += 1
        if self.unit_timeout > 0:
            unit.timeout_event = self.sim.schedule(
                self.unit_timeout, self._unit_timeout, unit
            )
        self._emit(size)
        return unit

    def _on_delivery(self, time: float, delivered_total: int) -> None:
        self.delivered = delivered_total
        self._drain(time)

    def _drain(self, time: float) -> None:
        while self._pending and self._pending[0].boundary <= self.delivered + self._credit:
            unit = self._pending.popleft()
            if unit.timeout_event is not None:
                unit.timeout_event.cancel()
            self.units_completed += 1
            self._on_unit_complete(unit, time)

    def _unit_timeout(self, unit: WorkUnit) -> None:
        """Write off an expired unit (and any stuck ahead of it)."""
        if unit not in self._pending:
            return
        now = self.sim.now
        # Units ahead of an expired one were issued earlier with the same
        # timeout, so they are expired too; fail them head-first.
        while self._pending:
            head = self._pending.popleft()
            if head.timeout_event is not None:
                head.timeout_event.cancel()
            self.units_failed += 1
            self._on_unit_failed(head, now)
            if head is unit:
                break
        # Credit the undelivered packets so later units still complete.
        self._credit = max(self._credit, unit.boundary - self.delivered)
        self._drain(now)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _on_unit_complete(self, unit: WorkUnit, time: float) -> None:
        """All of ``unit``'s packets were delivered in order."""
        raise NotImplementedError

    def _on_unit_failed(self, unit: WorkUnit, time: float) -> None:
        """``unit`` timed out before its packets were delivered."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} issued={self.units_issued} "
            f"completed={self.units_completed} failed={self.units_failed}>"
        )
