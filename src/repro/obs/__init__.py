"""The flight-recorder observability layer.

One subsystem for everything the simulator can tell you about itself
and about the protocols it runs:

* :mod:`repro.obs.registry`   -- the metric registry (counters, gauges,
  sampled time series, histograms) components publish into; disabled
  categories resolve to shared null objects, so instrumentation is
  near-free when off.
* :mod:`repro.obs.engineprof` -- wall-clock profiling of the event
  engine (events/sec, per-callback-category time, heap depth,
  sim-time/wall-time ratio).
* :mod:`repro.obs.probes`     -- per-flow TCP probes (cwnd / ssthresh /
  RTT estimate / state transitions) and queue probes (occupancy, RED
  average, per-cause drops).
* :mod:`repro.obs.bundle`     -- :class:`ObsBundle`, the package of
  captured series a :class:`~repro.experiments.scenario.ScenarioResult`
  carries, with JSONL/CSV export.
"""

from repro.obs.bundle import ObsBundle
from repro.obs.engineprof import (
    EngineProfile,
    EngineProfiler,
    callback_category,
    peak_rss_kb,
)
from repro.obs.probes import (
    TRACE_CATEGORIES,
    FlowProbe,
    QueueProbe,
    parse_trace_spec,
)
from repro.obs.registry import (
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    TimeSeries,
)

__all__ = [
    "Counter",
    "EngineProfile",
    "EngineProfiler",
    "FlowProbe",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "ObsBundle",
    "QueueProbe",
    "TRACE_CATEGORIES",
    "TimeSeries",
    "callback_category",
    "parse_trace_spec",
    "peak_rss_kb",
]
