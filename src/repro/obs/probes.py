"""Per-flow TCP probes and queue probes.

These are the protocol-layer publishers of the flight recorder:

* :class:`FlowProbe` attaches to one :class:`~repro.transport.tcp_base.
  TcpSender` and records congestion-window/ssthresh changes, RTT
  estimator updates, and congestion-control state transitions -- the
  per-flow trajectories behind the paper's Figures 5-12 and the
  validation targets of the mean-field TCP/RED literature.
* :class:`QueueProbe` attaches to any :class:`~repro.net.queues.
  PacketQueue` via its enqueue/dequeue/drop hooks and records occupancy
  (with the RED average, when the queue keeps one) and per-cause drop
  events.

Both publish into a shared :class:`~repro.obs.registry.MetricRegistry`,
so what gets recorded is governed entirely by the registry's enabled
categories (:data:`TRACE_CATEGORIES`); a probe built against a disabled
category stores nothing.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet
from repro.net.queues import PacketQueue
from repro.obs.registry import MetricRegistry

#: The trace categories the experiment layer understands (the valid
#: values of ``ScenarioConfig.obs_trace`` and the CLI's ``--trace``).
TRACE_CATEGORIES = ("cwnd", "rtt", "state", "queue", "drops")


class FlowProbe:
    """Flight recorder for one TCP sender.

    The sender calls the ``on_*`` methods from its window/RTT/state
    machinery (guarded by an ``is not None`` check, so unprobed senders
    pay nothing).  Which series actually record is decided by the
    registry's enabled categories.
    """

    def __init__(self, registry: MetricRegistry, flow_id: int) -> None:
        self.flow_id = flow_id
        prefix = f"flow.{flow_id}"
        # Series live under their *trace* category so the registry's
        # category switches map 1:1 onto the CLI's --trace flags.
        self.cwnd = registry.series(
            f"cwnd.{prefix}", columns=("cwnd", "ssthresh")
        )
        self.rtt = registry.series(
            f"rtt.{prefix}", columns=("sample", "srtt", "rttvar")
        )
        self.states = registry.series(f"state.{prefix}", columns=("state",))
        self.transitions = registry.counter(f"state.transitions.{prefix}")

    # ------------------------------------------------------------------
    # Publisher interface (called by TcpSender)
    # ------------------------------------------------------------------
    def on_cwnd(self, time: float, cwnd: float, ssthresh: float) -> None:
        """Record one congestion-window (or ssthresh) change."""
        self.cwnd.append(time, cwnd, ssthresh)

    def on_rtt(
        self, time: float, sample: float, srtt: float, rttvar: float
    ) -> None:
        """Record one Jacobson/Karels estimator update."""
        self.rtt.append(time, sample, srtt, rttvar)

    def on_state(self, time: float, state: str) -> None:
        """Record one congestion-control state transition."""
        self.states.append(time, state)
        self.transitions.inc()


class QueueProbe:
    """Flight recorder for one packet queue.

    Registers itself on the queue's enqueue/dequeue/drop hooks; records
    an occupancy sample on every queue-length change (thinned to
    ``sample_interval`` if given) and one row per drop, labeled with the
    queue's :attr:`~repro.net.queues.PacketQueue.last_drop_cause`.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        queue: PacketQueue,
        sample_interval: float = 0.0,
    ) -> None:
        self.queue = queue
        self._registry = registry
        self.occupancy = registry.series(
            f"queue.occupancy.{queue.name}",
            columns=("length", "red_avg"),
            min_interval=sample_interval,
        )
        self.drops = registry.series(
            f"drops.events.{queue.name}", columns=("flow_id", "seqno", "cause")
        )
        self.depth = registry.gauge(f"queue.max_depth.{queue.name}")
        queue.add_enqueue_hook(self._on_change)
        queue.add_dequeue_hook(self._on_change)
        queue.add_drop_hook(self._on_drop)

    # ------------------------------------------------------------------
    # Hook bodies
    # ------------------------------------------------------------------
    def _on_change(self, packet: Packet, now: float) -> None:
        queue = self.queue
        length = len(queue)
        self.occupancy.append(now, length, self._red_avg())
        self.depth.max(length)

    def _on_drop(self, packet: Packet, now: float) -> None:
        cause = self.queue.last_drop_cause
        self.drops.append(now, packet.flow_id, packet.seqno, cause)
        self._registry.counter(f"drops.cause.{cause}").inc()

    def _red_avg(self) -> float:
        return float(getattr(self.queue, "avg", len(self.queue)))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def drop_causes(self) -> dict:
        """``{cause: count}`` over every drop seen so far."""
        causes: dict = {}
        for row in self.drops.rows:
            causes[row[3]] = causes.get(row[3], 0) + 1
        return causes


def parse_trace_spec(spec: Optional[str]) -> tuple:
    """Parse a CLI ``--trace`` value (comma list) into category names.

    Raises ValueError on unknown categories; ``"all"`` expands to every
    category.
    """
    if not spec:
        return ()
    parts = [part.strip() for part in spec.split(",") if part.strip()]
    if "all" in parts:
        return tuple(TRACE_CATEGORIES)
    unknown = [part for part in parts if part not in TRACE_CATEGORIES]
    if unknown:
        raise ValueError(
            f"unknown trace categories {unknown}; "
            f"choose from {', '.join(TRACE_CATEGORIES)} (or 'all')"
        )
    return tuple(dict.fromkeys(parts))
