"""The metric registry: counters, gauges, time series, histograms.

Components publish measurements through metric objects obtained from a
:class:`MetricRegistry`.  The registry is organized around *categories*
(``"cwnd"``, ``"queue"``, ``"engine"``, ...): a metric requested under a
disabled category is a shared null object whose methods do nothing, so
instrumented code pays one no-op method call -- and allocates nothing --
when observability is off.  Hot loops that cannot afford even that use
the ``is not None`` guard idiom instead (see ``repro.sim.engine``).

Metric kinds:

* :class:`Counter`   -- monotonically increasing event count;
* :class:`Gauge`     -- last-write-wins instantaneous value;
* :class:`TimeSeries`-- sampled ``(time, value...)`` rows, optionally
  thinned to a minimum inter-sample interval;
* :class:`Histogram` -- fixed-boundary frequency counts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the count."""
        self.value += n

    def snapshot(self) -> Any:
        return self.value


class Gauge:
    """An instantaneous value; the last write wins."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """Keep the running maximum instead of the last write."""
        if value > self.value:
            self.value = value

    def snapshot(self) -> Any:
        return self.value


class TimeSeries:
    """Sampled ``(time, *values)`` rows, optionally interval-thinned.

    ``min_interval`` drops samples arriving closer than the interval to
    the previously kept one (first sample always kept), which bounds
    memory on per-packet publishers without biasing slow dynamics.
    """

    __slots__ = ("name", "columns", "rows", "min_interval", "_last_kept")

    def __init__(
        self,
        name: str,
        columns: Sequence[str] = ("value",),
        min_interval: float = 0.0,
    ) -> None:
        self.name = name
        self.columns = tuple(columns)
        self.rows: List[Tuple[float, ...]] = []
        self.min_interval = min_interval
        self._last_kept = -float("inf")

    def append(self, time: float, *values: Any) -> None:
        """Record one sample (dropped if inside the thinning interval)."""
        if time - self._last_kept < self.min_interval:
            return
        self._last_kept = time
        self.rows.append((time, *values))

    def __len__(self) -> int:
        return len(self.rows)

    def times(self) -> List[float]:
        return [row[0] for row in self.rows]

    def column(self, name: str) -> List[Any]:
        """All values of one named column, in time order."""
        index = self.columns.index(name) + 1
        return [row[index] for row in self.rows]

    def snapshot(self) -> Any:
        return {"columns": ("time", *self.columns), "n_rows": len(self.rows)}


class Histogram:
    """Frequency counts over fixed boundaries.

    ``bounds`` are the upper edges of each bin; values above the last
    bound land in an implicit overflow bin.
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def snapshot(self) -> Any:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "mean": self.mean,
        }


class _NullMetric:
    """Shared do-nothing stand-in for every metric kind.

    Returned for metrics in disabled categories so publishers never
    need their own enabled/disabled branches.
    """

    __slots__ = ()
    name = "<null>"
    value = 0
    rows: List[Tuple[float, ...]] = []
    total = 0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def max(self, value: float) -> None:
        pass

    def append(self, time: float, *values: Any) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def times(self) -> List[float]:
        return []

    def column(self, name: str) -> List[Any]:
        return []

    def __len__(self) -> int:
        return 0

    def __bool__(self) -> bool:
        # A null metric is falsy so guards like ``if series:`` skip work.
        return False

    def snapshot(self) -> Any:
        return None


#: The shared null metric every disabled category resolves to.
NULL_METRIC = _NullMetric()


class MetricRegistry:
    """Namespace of metrics, switched on and off by category.

    Metric names are dotted paths whose first segment is the category
    (``"queue.drops.early"`` belongs to category ``"queue"``).  A metric
    requested while its category is disabled resolves to
    :data:`NULL_METRIC`; the registry records nothing for it.

    Args:
        categories: the enabled categories.  ``None`` enables everything
            (the permissive default for ad-hoc use); pass an empty tuple
            for a fully disabled registry.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None) -> None:
        self._all_enabled = categories is None
        self._categories = set(categories) if categories is not None else set()
        self._metrics: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Category switching
    # ------------------------------------------------------------------
    def enabled(self, category: str) -> bool:
        """True if metrics under ``category`` are being recorded."""
        return self._all_enabled or category in self._categories

    def enable(self, category: str) -> None:
        self._categories.add(category)

    @staticmethod
    def category_of(name: str) -> str:
        """The category a dotted metric name belongs to."""
        return name.split(".", 1)[0]

    # ------------------------------------------------------------------
    # Metric factories (idempotent: same name returns the same object)
    # ------------------------------------------------------------------
    def _get(self, name: str, factory) -> Any:
        if not self.enabled(self.category_of(name)):
            return NULL_METRIC
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name))

    def series(
        self,
        name: str,
        columns: Sequence[str] = ("value",),
        min_interval: float = 0.0,
    ) -> TimeSeries:
        return self._get(name, lambda: TimeSeries(name, columns, min_interval))

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        return self._get(name, lambda: Histogram(name, bounds))

    # ------------------------------------------------------------------
    # Introspection and export
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Any]:
        """The live metric object, or None if never created."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of every scalar metric (counters/gauges get
        their value, series/histograms a small summary)."""
        return {name: self._metrics[name].snapshot() for name in self.names()}


#: A registry with every category disabled: the default wiring for
#: components built without explicit observability configuration.
NULL_REGISTRY = MetricRegistry(categories=())
