"""Wall-clock profiling of the event engine.

An :class:`EngineProfiler` attached to a :class:`~repro.sim.engine.
Simulator` times every callback the event loop executes, attributing
the wall time to a *category* derived from the callback itself (class
and method name for bound methods, qualified name otherwise).  The
summary answers the questions that matter when sweeps scale: where does
the simulator spend its time, how many events per second does it
sustain, how deep does the calendar heap get, and how much faster than
real time does the model run.

Profiling costs two ``perf_counter`` calls per event, so it is opt-in;
with no profiler attached the engine's run loop carries no timing code
at all (see ``bench_obs_overhead.py`` for the measured cost).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


def callback_category(callback: Callable[..., Any]) -> str:
    """Human-readable category for one callback.

    Bound methods report ``ClassName.method``; plain functions their
    qualified name.  This is what groups "TCP timer pops" apart from
    "link transmissions" in the profile.
    """
    func = getattr(callback, "__func__", callback)
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        return f"{type(owner).__name__}.{func.__name__}"
    return getattr(func, "__qualname__", repr(func))


@dataclass
class CategoryStat:
    """Aggregated wall time of one callback category."""

    category: str
    events: int = 0
    wall_time: float = 0.0

    @property
    def mean_us(self) -> float:
        """Mean wall time per event, microseconds."""
        return 1e6 * self.wall_time / self.events if self.events else 0.0


@dataclass
class EngineProfile:
    """The summary an :class:`EngineProfiler` renders after a run.

    Two wall-time totals are tracked: ``wall_time`` is the sum of the
    timed callback executions, while ``run_wall_time`` is the run
    loop's end-to-end wall clock.  Their difference is the *engine
    overhead* -- pop/dispatch/recycle work between callbacks -- which is
    the number that separates the ``heap`` and ``wheel`` schedulers
    (the callbacks themselves are scheduler-independent).
    """

    events_executed: int
    wall_time: float
    sim_time: float
    max_heap_depth: int
    categories: List[CategoryStat] = field(default_factory=list)
    run_wall_time: float = 0.0

    @property
    def events_per_sec(self) -> float:
        return self.events_executed / self.wall_time if self.wall_time > 0 else 0.0

    @property
    def loop_events_per_sec(self) -> float:
        """Events per second of end-to-end run-loop wall time."""
        return (
            self.events_executed / self.run_wall_time
            if self.run_wall_time > 0
            else 0.0
        )

    @property
    def overhead_time(self) -> float:
        """Run-loop wall time not spent inside callbacks (seconds)."""
        return max(self.run_wall_time - self.wall_time, 0.0)

    @property
    def overhead_events_per_sec(self) -> float:
        """Events per second of engine overhead: the scheduler's own
        throughput, with callback execution time factored out."""
        overhead = self.overhead_time
        return self.events_executed / overhead if overhead > 0 else 0.0

    @property
    def sim_wall_ratio(self) -> float:
        """Simulated seconds per wall-clock second (>1 = faster than
        real time)."""
        return self.sim_time / self.wall_time if self.wall_time > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "events_executed": self.events_executed,
            "wall_time": self.wall_time,
            "run_wall_time": self.run_wall_time,
            "overhead_time": self.overhead_time,
            "sim_time": self.sim_time,
            "events_per_sec": self.events_per_sec,
            "loop_events_per_sec": self.loop_events_per_sec,
            "overhead_events_per_sec": self.overhead_events_per_sec,
            "sim_wall_ratio": self.sim_wall_ratio,
            "max_heap_depth": self.max_heap_depth,
            "categories": [
                {
                    "category": stat.category,
                    "events": stat.events,
                    "wall_time": stat.wall_time,
                    "mean_us": stat.mean_us,
                }
                for stat in self.categories
            ],
        }

    def render_table(self) -> str:
        """The profile as an aligned text table (hottest first)."""
        from repro.analysis.tables import format_table

        rows: List[List[Any]] = []
        total = self.wall_time or 1.0
        for stat in self.categories:
            rows.append(
                [
                    stat.category,
                    stat.events,
                    round(stat.wall_time, 6),
                    round(100.0 * stat.wall_time / total, 2),
                    round(stat.mean_us, 3),
                ]
            )
        header = (
            f"Engine profile: {self.events_executed} events in "
            f"{self.wall_time:.3f}s wall "
            f"({self.events_per_sec:,.0f} ev/s, "
            f"sim/wall {self.sim_wall_ratio:.1f}x, "
            f"heap depth <= {self.max_heap_depth})"
        )
        if self.run_wall_time > 0:
            header += (
                f"\nEngine overhead: {self.overhead_time:.3f}s outside "
                f"callbacks ({self.overhead_events_per_sec:,.0f} ev/s "
                "scheduler throughput)"
            )
        return format_table(
            ["category", "events", "wall_s", "wall_%", "mean_us"],
            rows,
            title=header,
        )


class EngineProfiler:
    """Collects per-callback-category timings from the event loop.

    Attach with :meth:`~repro.sim.engine.Simulator.attach_profiler`; the
    engine then routes every executed event through :meth:`note_event`.
    One profiler can span several ``run()`` calls on the same simulator.
    """

    def __init__(self) -> None:
        self._stats: Dict[Any, CategoryStat] = {}
        self._names: Dict[Any, str] = {}
        self.events = 0
        self.wall_time = 0.0
        self.run_wall_time = 0.0
        self.max_heap_depth = 0
        self._sim_start: Optional[float] = None
        self._sim_end = 0.0
        self.clock = time.perf_counter

    # ------------------------------------------------------------------
    # Engine-facing interface
    # ------------------------------------------------------------------
    def begin_run(self, now: float) -> None:
        if self._sim_start is None:
            self._sim_start = now

    def end_run(self, now: float) -> None:
        self._sim_end = max(self._sim_end, now)

    def add_run_wall(self, seconds: float) -> None:
        """Account one run loop's end-to-end wall time (the engine
        calls this when a profiled ``run()`` returns)."""
        self.run_wall_time += seconds

    def note_event(
        self, callback: Callable[..., Any], elapsed: float, heap_depth: int
    ) -> None:
        """Account one executed event (engine hot path when attached)."""
        # Key on the underlying function: bound methods are fresh
        # objects on every schedule() call, their __func__ is stable.
        key = getattr(callback, "__func__", callback)
        stat = self._stats.get(key)
        if stat is None:
            stat = CategoryStat(callback_category(callback))
            self._stats[key] = stat
        stat.events += 1
        stat.wall_time += elapsed
        self.events += 1
        self.wall_time += elapsed
        if heap_depth > self.max_heap_depth:
            self.max_heap_depth = heap_depth

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def profile(self) -> EngineProfile:
        """Summarize everything recorded so far (hottest category first)."""
        merged: Dict[str, CategoryStat] = {}
        for stat in self._stats.values():
            into = merged.setdefault(stat.category, CategoryStat(stat.category))
            into.events += stat.events
            into.wall_time += stat.wall_time
        categories = sorted(
            merged.values(), key=lambda s: s.wall_time, reverse=True
        )
        sim_time = (
            self._sim_end - self._sim_start if self._sim_start is not None else 0.0
        )
        return EngineProfile(
            events_executed=self.events,
            wall_time=self.wall_time,
            sim_time=sim_time,
            max_heap_depth=self.max_heap_depth,
            categories=categories,
            run_wall_time=self.run_wall_time,
        )


def peak_rss_kb() -> float:
    """Peak resident-set size of this process in kilobytes.

    Returns NaN where the ``resource`` module is unavailable (Windows).
    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    normalized to kB.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - Windows
        return float("nan")
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return peak / 1024.0
    return float(peak)
