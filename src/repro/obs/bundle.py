"""The observability bundle a run carries out of the simulator.

:class:`ObsBundle` packages everything the flight recorder captured in
one scenario -- the engine profile, per-flow TCP series, queue series,
and the registry's scalar metrics -- and knows how to export itself as
JSONL (one object per sample, streaming-friendly) or CSV.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.obs.engineprof import EngineProfile
from repro.obs.probes import FlowProbe, QueueProbe
from repro.obs.registry import MetricRegistry, TimeSeries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.forensics.report import ForensicsReport


def _write_jsonl(path: str, series: TimeSeries, extra: Dict[str, Any]) -> int:
    """Write one series as JSONL rows; returns rows written."""
    with open(path, "a", encoding="utf-8") as handle:
        for row in series.rows:
            record = dict(extra)
            record["time"] = row[0]
            for name, value in zip(series.columns, row[1:]):
                record[name] = value
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(series.rows)


def _write_csv(path: str, series: TimeSeries, extra: Dict[str, Any]) -> int:
    """Append one series to a CSV file (header written once)."""
    new_file = not os.path.exists(path)
    with open(path, "a", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        if new_file:
            writer.writerow([*extra.keys(), "time", *series.columns])
        for row in series.rows:
            writer.writerow([*extra.values(), *row])
    return len(series.rows)


@dataclass
class ObsBundle:
    """Everything one run's flight recorder captured.

    Attributes:
        categories: the trace categories that were enabled.
        engine: engine profile summary (None when profiling was off).
        flows: per-flow probes keyed by flow id.
        queue: bottleneck-queue probe (None when queue tracing was off).
        registry: the metric registry all probes published into.
        forensics: burst-forensics report (None when forensics was off).
    """

    categories: Tuple[str, ...] = ()
    engine: Optional[EngineProfile] = None
    flows: Dict[int, FlowProbe] = field(default_factory=dict)
    queue: Optional[QueueProbe] = None
    registry: Optional[MetricRegistry] = None
    forensics: Optional["ForensicsReport"] = None

    # ------------------------------------------------------------------
    # Summary counts (the obs_* fields of ScenarioMetrics)
    # ------------------------------------------------------------------
    @property
    def n_cwnd_samples(self) -> int:
        return sum(len(probe.cwnd) for probe in self.flows.values())

    @property
    def n_rtt_samples(self) -> int:
        return sum(len(probe.rtt) for probe in self.flows.values())

    @property
    def n_state_transitions(self) -> int:
        return sum(len(probe.states) for probe in self.flows.values())

    @property
    def n_queue_samples(self) -> int:
        return len(self.queue.occupancy) if self.queue is not None else 0

    @property
    def n_drop_events(self) -> int:
        return len(self.queue.drops) if self.queue is not None else 0

    def snapshot(self) -> Dict[str, Any]:
        """Scalar metrics (counters/gauges) from the registry."""
        return self.registry.snapshot() if self.registry is not None else {}

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self, directory: str, fmt: str = "jsonl") -> List[str]:
        """Write every captured artifact into ``directory``.

        Files (per enabled capture, empty captures skipped):

        * ``engine_profile.json`` -- the engine profile summary;
        * ``flow_cwnd.<fmt>``     -- per-flow cwnd/ssthresh series;
        * ``flow_rtt.<fmt>``      -- per-flow RTT estimator series;
        * ``flow_state.<fmt>``    -- per-flow state transitions;
        * ``queue_occupancy.<fmt>`` -- queue length + RED average;
        * ``queue_drops.<fmt>``   -- per-drop events with cause;
        * ``forensic_bursts.<fmt>``      -- burst episodes + sync links;
        * ``forensic_attribution.<fmt>`` -- per-window top-k rankings
          (exact and sketch rows side by side);
        * ``forensic_sync.<fmt>`` -- loss-synchronization events;
        * ``forensics.json``      -- the full forensics report payload;
        * ``registry.json``       -- scalar metric snapshot.

        Returns the list of paths written.
        """
        if fmt not in ("jsonl", "csv"):
            raise ValueError(f"unknown export format {fmt!r}; use jsonl or csv")
        os.makedirs(directory, exist_ok=True)
        write = _write_jsonl if fmt == "jsonl" else _write_csv
        written: List[str] = []

        def emit(filename: str, series: TimeSeries, extra: Dict[str, Any]) -> None:
            if not len(series):  # disabled category or nothing captured
                return
            path = os.path.join(directory, filename)
            fresh = path not in written
            if fresh and os.path.exists(path):
                os.remove(path)  # re-exports replace, appends accumulate
            if write(path, series, extra) and fresh:
                written.append(path)

        if self.engine is not None:
            path = os.path.join(directory, "engine_profile.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(self.engine.as_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            written.append(path)

        for flow_id in sorted(self.flows):
            probe = self.flows[flow_id]
            extra = {"flow_id": flow_id}
            emit(f"flow_cwnd.{fmt}", probe.cwnd, extra)
            emit(f"flow_rtt.{fmt}", probe.rtt, extra)
            emit(f"flow_state.{fmt}", probe.states, extra)

        if self.queue is not None:
            extra = {"queue": self.queue.queue.name}
            emit(f"queue_occupancy.{fmt}", self.queue.occupancy, extra)
            emit(f"queue_drops.{fmt}", self.queue.drops, extra)

        if self.forensics is not None:
            for name, series in self.forensics.to_series():
                emit(f"{name}.{fmt}", series, {})
            path = os.path.join(directory, "forensics.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(
                    self.forensics.as_dict(), handle, indent=2, sort_keys=True
                )
                handle.write("\n")
            written.append(path)

        snapshot = self.snapshot()
        if snapshot:
            path = os.path.join(directory, "registry.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.write("\n")
            written.append(path)
        return written
