"""Burst forensics: who caused *this* burst at the gateway?

The paper's headline measure (the c.o.v. of queue arrivals) reports the
aggregate *symptom* of TCP-induced burstiness; this package supplies the
per-event *diagnosis* a production operator needs:

* :mod:`repro.forensics.bursts` segments the bottleneck-queue occupancy
  series into burst episodes (threshold + hysteresis);
* :mod:`repro.forensics.windows` attributes each time window's queue
  build-up to flows, twice: an exact per-packet accountant (ground
  truth, free in a simulator) and a bounded-memory space-saving sketch
  (what a real switch could deploy), cross-validated against each other;
* :mod:`repro.forensics.sync` detects loss-synchronization events
  (a quorum of flows halving cwnd within one RTT) and links each burst
  to the sync event that preceded or accompanied it -- the paper's
  claimed mechanism, now checkable per episode.

:class:`~repro.forensics.probe.ForensicsProbe` wires all three onto a
live scenario; :class:`~repro.forensics.report.ForensicsReport` is what
a finished run carries out (tables, JSONL/CSV export, summary metrics).
:mod:`repro.forensics.stream` adds the incremental mode: the same
records emitted mid-run as a prefix-consistent JSONL stream with
bounded memory, finishing in a summary-only
:class:`~repro.forensics.stream.ForensicsStreamReport`.
"""

from repro.forensics.bursts import BurstDetector, BurstEpisode
from repro.forensics.probe import LOSS_STATES, ForensicsParams, ForensicsProbe
from repro.forensics.report import BurstAttribution, ForensicsReport
from repro.forensics.stream import (
    ForensicsStream,
    ForensicsStreamReport,
    offline_stream_lines,
    offline_stream_records,
)
from repro.forensics.sync import (
    IncrementalSyncClusterer,
    LossSyncDetector,
    SyncEvent,
    link_bursts,
)
from repro.forensics.windows import (
    SKETCHES,
    CountMinSketch,
    FlowShare,
    SketchWindowAccountant,
    SpaceSavingSketch,
    WindowAccountant,
    precision_at_k,
    recall_at_k,
)

__all__ = [
    "BurstAttribution",
    "BurstDetector",
    "BurstEpisode",
    "CountMinSketch",
    "FlowShare",
    "ForensicsParams",
    "ForensicsProbe",
    "ForensicsReport",
    "ForensicsStream",
    "ForensicsStreamReport",
    "IncrementalSyncClusterer",
    "LOSS_STATES",
    "LossSyncDetector",
    "SKETCHES",
    "SketchWindowAccountant",
    "SpaceSavingSketch",
    "SyncEvent",
    "WindowAccountant",
    "link_bursts",
    "offline_stream_lines",
    "offline_stream_records",
    "precision_at_k",
    "recall_at_k",
]
