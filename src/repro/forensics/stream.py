"""Incremental (mid-run) emission of the burst-forensics report.

The offline :class:`~repro.forensics.report.ForensicsReport` is
assembled once, at finalize, from everything the probe retained.  This
module emits the same content *during* the run as a JSONL stream with
two guarantees:

**Prefix consistency.**  Every record carries a deterministic *emit
key* ``(emit_time, type_rank, tiebreak)``:

* window ``i`` -> ``(window_end(i), 0, i)`` -- a tumbling window is
  final once sim time passes its right edge;
* sync event ``s`` -> ``(s.end + 2 * sync_window, 1, s.time)`` -- a
  cut's coverage depends only on cuts within one window of it, and a
  closed cluster can still be extended by a covered cut up to one
  window past its last member, so nothing after ``end + 2W`` can
  change the cluster;
* burst ``b`` -> ``(max(end + horizon + 2W, max sync key over syncs
  with time <= end + horizon), 2, start)`` -- a burst record embeds
  its sync linkage, so it must outwait every cluster that could still
  link to it (including one that *started* inside the horizon but
  keeps growing).

Each checkpoint emits every record that is provably final, sorted by
key; the runtime finality conditions match the keys exactly, so the
concatenation of checkpoints is the global key-sorted record list --
any partial stream file is byte-identical to a prefix of
:func:`offline_stream_lines` over the finished report (the gated
differential test in ``tests/test_forensics_stream.py``).

**Bounded memory.**  After a record is emitted its backing state is
dropped: tumbling windows once no unresolved episode spans them,
closed episodes at emission, sync events once out of linkage range
(``lookback``) of every unresolved episode, raw cuts once committed or
provably uncovered.  Live state is then O(windows per episode span +
cuts per 2 sync windows), independent of run duration.  Summary
scalars (the ``forensic_*`` metrics fields) are accumulated in the
same order the offline report would reduce them, so
:class:`ForensicsStreamReport` reproduces the offline summary
bit-for-bit without retaining any of it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import IO, TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.forensics.bursts import BurstEpisode
from repro.forensics.report import (
    BurstAttribution,
    ForensicsReport,
    _mean,
    build_attributions,
)
from repro.forensics.sync import IncrementalSyncClusterer, SyncEvent
from repro.forensics.windows import (
    SketchWindowAccountant,
    WindowAccountant,
    precision_at_k,
    ranked_shares,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.forensics.probe import ForensicsParams, ForensicsProbe
    from repro.obs.registry import TimeSeries

#: type_rank values: at equal emit_time, windows precede syncs precede
#: bursts (a burst record may reference a sync with the same key).
_RANK_WINDOW = 0
_RANK_SYNC = 1
_RANK_BURST = 2

EmitKey = Tuple[float, int, float]


def encode_record(record: Dict[str, Any]) -> str:
    """The one serialization both the stream and the offline replay use."""
    return json.dumps(record, sort_keys=True)


def _params_record(params: "ForensicsParams", n_flows: int) -> Dict[str, Any]:
    return {"type": "params", "n_flows": n_flows, **params.as_dict()}


def _window_record(
    index: int,
    exact: WindowAccountant,
    sketch: SketchWindowAccountant,
    params: "ForensicsParams",
) -> Dict[str, Any]:
    k = params.top_k
    exact_top = exact.top_k(index, k)
    sketch_top = sketch.top_k(index, k)
    return {
        "type": "window",
        "window": index,
        "start": exact.window_start(index),
        "end": exact.window_start(index + 1),
        "total_bytes": exact.window_total_bytes(index),
        "exact_top": [s.as_dict() for s in exact_top],
        "sketch_top": [s.as_dict() for s in sketch_top],
        "precision": precision_at_k(
            ranked_shares(exact.window_counts(index)), sketch_top, k
        ),
    }


def _sync_record(sync: SyncEvent) -> Dict[str, Any]:
    return {"type": "sync", **sync.as_dict()}


def _burst_record(attribution: BurstAttribution) -> Dict[str, Any]:
    return {"type": "burst", **attribution.as_dict()}


def _window_key(index: int, exact: WindowAccountant) -> EmitKey:
    return (exact.window_start(index + 1), _RANK_WINDOW, float(index))


def _sync_key(sync: SyncEvent, params: "ForensicsParams") -> EmitKey:
    return (sync.end + 2.0 * params.sync_window, _RANK_SYNC, sync.time)


def _burst_key(
    episode: BurstEpisode,
    syncs: List[SyncEvent],
    params: "ForensicsParams",
) -> EmitKey:
    """A burst is final only after every linkage-candidate sync is.

    Candidates are syncs with ``time <= end + horizon``; one that keeps
    growing past the horizon pushes the burst's key to its own, so the
    burst still sorts (and emits) after it.
    """
    deadline = episode.end + params.sync_horizon
    emit = deadline + 2.0 * params.sync_window
    for sync in syncs:
        if sync.time <= deadline:
            emit = max(emit, sync.end + 2.0 * params.sync_window)
    return (emit, _RANK_BURST, episode.start)


class ForensicsStream:
    """Checkpointed JSONL emission driven by the probe's hook calls.

    The probe calls :meth:`maybe_flush` from its queue hooks (the only
    clock forensics already observes -- no simulator events are
    scheduled, so enabling the stream cannot change
    ``perf_events_executed``); a flush runs at most once per
    ``interval`` of sim time.  :meth:`finalize` flushes everything
    (``now = inf``) and returns the summary report.
    """

    def __init__(
        self,
        probe: "ForensicsProbe",
        sink: IO[str],
        interval: float,
    ) -> None:
        if interval <= 0:
            raise ValueError("stream interval must be positive")
        self.probe = probe
        self.sink = sink
        self.interval = interval
        self.next_flush = interval
        self.records_written = 0
        self._next_window = 0
        self._pending: List[BurstEpisode] = []
        self._syncs: List[SyncEvent] = []
        self._clusterer = IncrementalSyncClusterer(probe.sync)
        self._summary = _SummaryAccumulator()
        self._write(encode_record(_params_record(probe.params, probe.n_flows)))

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _write(self, line: str) -> None:
        self.sink.write(line + "\n")
        self.records_written += 1

    def maybe_flush(self, now: float) -> None:
        if now >= self.next_flush:
            self.flush(now)
            self.next_flush = (
                math.floor(now / self.interval) + 1.0
            ) * self.interval

    def flush(self, now: float) -> None:
        """Emit every record final at sim time ``now``, then prune."""
        probe = self.probe
        params = probe.params
        self._pending.extend(probe.bursts.drain_episodes())
        committed = self._clusterer.commit(now)
        if committed:
            self._summary.n_sync_events += len(committed)
            self._syncs.extend(committed)
            self._syncs.sort(key=lambda s: s.time)

        batch: List[Tuple[EmitKey, str]] = []
        emitted_window = self._next_window - 1
        for index in probe.exact.windows():
            if index < self._next_window:
                continue
            if probe.exact.window_start(index + 1) > now:
                break
            batch.append(
                (
                    _window_key(index, probe.exact),
                    encode_record(
                        _window_record(index, probe.exact, probe.sketch, params)
                    ),
                )
            )
            emitted_window = index
        self._next_window = emitted_window + 1

        for sync in committed:
            batch.append((_sync_key(sync, params), encode_record(_sync_record(sync))))

        min_cut = self._clusterer.min_buffered_time
        wait = params.sync_horizon + 2.0 * params.sync_window
        while self._pending:
            episode = self._pending[0]
            if not (
                now > episode.end + wait
                and min_cut > episode.end + params.sync_horizon
            ):
                break
            attribution = build_attributions(
                [episode], self._syncs, probe.exact, probe.sketch, params
            )[0]
            batch.append(
                (
                    _burst_key(episode, self._syncs, params),
                    encode_record(_burst_record(attribution)),
                )
            )
            self._summary.add_burst(attribution, probe.exact)
            self._pending.pop(0)

        batch.sort(key=lambda item: item[0])
        for _, line in batch:
            self._write(line)
        self.sink.flush()
        self._prune(now)

    def _prune(self, now: float) -> None:
        """Drop state no unresolved episode can reference anymore."""
        probe = self.probe
        earliest = now
        if self._pending:
            earliest = min(earliest, self._pending[0].start)
        open_start = probe.bursts.open_start
        if open_start is not None:
            earliest = min(earliest, open_start)
        floor = (
            probe.exact.window_index(earliest)
            if math.isfinite(earliest)
            else self._next_window
        )
        for index in list(probe.exact.windows()):
            if index >= self._next_window or index >= floor:
                break
            probe.exact.drop_window(index)
            probe.sketch.drop_window(index)
        keep_from = earliest - probe.params.sync_lookback
        if self._syncs and self._syncs[0].end < keep_from:
            self._syncs = [s for s in self._syncs if s.end >= keep_from]

    # ------------------------------------------------------------------
    # Finalize
    # ------------------------------------------------------------------
    def finalize(self, end_time: float) -> "ForensicsStreamReport":
        """Flush everything and build the summary twin of the report.

        The probe must have closed the open episode first
        (``bursts.finalize``); ``flush(inf)`` then finds every window
        complete, every cluster committable, and every episode
        resolvable.
        """
        self.flush(math.inf)
        return ForensicsStreamReport(
            params=self.probe.params,
            n_flows=self.probe.n_flows,
            duration=end_time,
            n_bursts=self._summary.n_bursts,
            n_sync_events=self._summary.n_sync_events,
            n_sync_linked=self._summary.n_sync_linked,
            precision=self._summary.precision(),
            burst_seconds=self._summary.duration_sum,
            burst_duration_mean=self._summary.duration_mean(),
            burst_drops=self._summary.drops,
            top_totals=self._summary.totals,
            records_written=self.records_written,
        )


class _SummaryAccumulator:
    """Reduces emitted bursts in emission (= offline) order so every
    float fold matches the offline report exactly."""

    def __init__(self) -> None:
        self.n_bursts = 0
        self.n_sync_events = 0
        self.n_sync_linked = 0
        self.precision_values: List[float] = []
        self.duration_sum = 0.0
        self.duration_values: List[float] = []
        self.drops = 0
        self.totals: Dict[int, List[int]] = {}

    def add_burst(
        self, attribution: BurstAttribution, exact: WindowAccountant
    ) -> None:
        self.n_bursts += 1
        if attribution.sync_linked:
            self.n_sync_linked += 1
        self.precision_values.append(attribution.precision)
        self.duration_sum += attribution.episode.duration
        self.duration_values.append(attribution.episode.duration)
        self.drops += attribution.episode.drops
        for flow, entry in exact.span_counts(*attribution.windows).items():
            slot = self.totals.setdefault(flow, [0, 0])
            slot[0] += entry[0]
            slot[1] += entry[1]

    def precision(self) -> float:
        return _mean(self.precision_values)

    def duration_mean(self) -> float:
        return _mean(self.duration_values)


@dataclass
class ForensicsStreamReport:
    """Summary-only stand-in for :class:`ForensicsReport` after a
    streamed run: same scalar properties (so metrics extraction and
    CLI rendering work unchanged), no per-record state (that went out
    on the stream), no series re-export."""

    params: "ForensicsParams"
    n_flows: int
    duration: float
    n_bursts: int
    n_sync_events: int
    n_sync_linked: int
    precision: float
    burst_seconds: float
    burst_duration_mean: float
    burst_drops: int
    top_totals: Dict[int, List[int]] = field(default_factory=dict)
    records_written: int = 0

    @property
    def burst_time_fraction(self) -> float:
        if self.duration <= 0:
            return float("nan")
        return self.burst_seconds / self.duration

    @property
    def burst_rate(self) -> float:
        if self.duration <= 0:
            return float("nan")
        return self.n_bursts / self.duration

    @property
    def sync_linked_fraction(self) -> float:
        if not self.n_bursts:
            return float("nan")
        return self.n_sync_linked / self.n_bursts

    @property
    def top_flow(self) -> int:
        if not self.top_totals:
            return -1
        return ranked_shares(self.top_totals, 1)[0].flow_id

    @property
    def top_flow_share(self) -> float:
        if not self.top_totals:
            return float("nan")
        return ranked_shares(self.top_totals, 1)[0].share

    def as_dict(self) -> Dict[str, Any]:
        return {
            "params": self.params.as_dict(),
            "n_flows": self.n_flows,
            "duration": self.duration,
            "n_bursts": self.n_bursts,
            "n_sync_events": self.n_sync_events,
            "n_sync_linked": self.n_sync_linked,
            "precision_at_k": self.precision,
            "burst_time_fraction": self.burst_time_fraction,
            "top_flow": self.top_flow,
            "top_flow_share": self.top_flow_share,
            "streamed_records": self.records_written,
        }

    def to_series(self) -> List[Tuple[str, "TimeSeries"]]:
        """Per-record series already left on the stream; nothing to re-emit."""
        return []

    def render(self, top: Optional[int] = None) -> str:
        lines = [
            (
                f"Burst forensics (streamed, {self.records_written} records): "
                f"{self.n_bursts} burst(s), {self.n_sync_events} sync "
                f"event(s), {self.n_sync_linked}/{self.n_bursts} sync-linked"
                if self.n_bursts
                else "Burst forensics (streamed): no burst episodes detected"
            )
        ]
        if not math.isnan(self.precision):
            lines.append(
                f"sketch-vs-exact precision@{self.params.top_k}: "
                f"{self.precision:.3f} "
                f"(sketch: {self.params.sketch_capacity} counters)"
            )
        lines.append(
            "per-episode detail is on the stream "
            "(offline mode keeps it in the report)"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Offline replay: the reference the differential test compares against
# ----------------------------------------------------------------------
def offline_stream_records(report: ForensicsReport) -> List[Dict[str, Any]]:
    """The complete record list a streamed run would emit, rebuilt from
    an offline report: header first, then all records in emit-key
    order.  Any prefix of a live stream must match a prefix of this."""
    params = report.params
    keyed: List[Tuple[EmitKey, Dict[str, Any]]] = []
    for index in report.exact.windows():
        keyed.append(
            (
                _window_key(index, report.exact),
                _window_record(index, report.exact, report.sketch, params),
            )
        )
    for sync in report.sync_events:
        keyed.append((_sync_key(sync, params), _sync_record(sync)))
    for attribution in report.bursts:
        keyed.append(
            (
                _burst_key(attribution.episode, report.sync_events, params),
                _burst_record(attribution),
            )
        )
    keyed.sort(key=lambda item: item[0])
    return [_params_record(params, report.n_flows)] + [
        record for _, record in keyed
    ]


def offline_stream_lines(report: ForensicsReport) -> List[str]:
    return [encode_record(record) for record in offline_stream_records(report)]
