"""The forensics report a finished run carries out of the simulator.

Per burst episode: the exact and sketch top-k culprit rankings over the
windows the burst spans, the tie-tolerant precision of the sketch
ranking against the exact one, and the loss-sync linkage (which
synchronization event preceded or was triggered by this burst).  The
report renders as text tables, exports through
:meth:`~repro.obs.bundle.ObsBundle.export` as JSONL/CSV series, and
flattens into the ``forensic_*`` fields of
:class:`~repro.experiments.results.ScenarioMetrics`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.forensics.bursts import BurstEpisode
from repro.forensics.sync import SyncEvent, link_bursts
from repro.forensics.windows import (
    FlowShare,
    SketchWindowAccountant,
    WindowAccountant,
    precision_at_k,
    ranked_shares,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.forensics.probe import ForensicsParams
    from repro.obs.registry import TimeSeries


@dataclass
class BurstAttribution:
    """One burst episode with culprits ranked and its sync linkage."""

    episode: BurstEpisode
    windows: Tuple[int, int]  # first/last window index spanned
    exact_top: List[FlowShare] = field(default_factory=list)
    sketch_top: List[FlowShare] = field(default_factory=list)
    #: mean per-window precision@k over the span's non-empty windows
    precision: float = float("nan")
    sync_relation: str = ""  # "preceding" | "triggered" | ""
    sync_time: float = float("nan")
    sync_flows: int = 0

    @property
    def sync_linked(self) -> bool:
        return bool(self.sync_relation)

    @property
    def top_flow(self) -> int:
        return self.exact_top[0].flow_id if self.exact_top else -1

    @property
    def top_share(self) -> float:
        return self.exact_top[0].share if self.exact_top else float("nan")

    def as_dict(self) -> Dict[str, Any]:
        return {
            **self.episode.as_dict(),
            "windows": list(self.windows),
            "exact_top": [s.as_dict() for s in self.exact_top],
            "sketch_top": [s.as_dict() for s in self.sketch_top],
            "precision": self.precision,
            "sync_relation": self.sync_relation,
            "sync_time": self.sync_time,
            "sync_flows": self.sync_flows,
        }


def build_attributions(
    episodes: List[BurstEpisode],
    syncs: List[SyncEvent],
    exact: WindowAccountant,
    sketch: SketchWindowAccountant,
    params: "ForensicsParams",
) -> List[BurstAttribution]:
    """Rank culprits over each episode's window span and link syncs.

    The culprit tables rank over the whole span; precision is the mean
    *per-window* precision@k across the span's non-empty windows, since
    the per-window ranking is what the bounded-memory sketch actually
    computes (span merging accumulates eviction floors across windows
    and would test an artifact of aggregation, not the data structure).
    """
    links = link_bursts(
        episodes, syncs, params.sync_lookback, params.sync_horizon
    )
    attributions: List[BurstAttribution] = []
    for episode, (relation, sync) in zip(episodes, links):
        first = exact.window_index(episode.start)
        last = exact.window_index(episode.end)
        exact_counts = exact.span_counts(first, last)
        exact_all = ranked_shares(exact_counts)
        sketch_top = ranked_shares(
            sketch.span_counts(first, last), params.top_k
        )
        window_precisions = [
            precision_at_k(
                ranked_shares(exact.window_counts(index)),
                sketch.top_k(index, params.top_k),
                params.top_k,
            )
            for index in range(first, last + 1)
            if exact.window_counts(index)
        ]
        attributions.append(
            BurstAttribution(
                episode=episode,
                windows=(first, last),
                exact_top=exact_all[: params.top_k],
                sketch_top=sketch_top,
                precision=_mean(window_precisions),
                sync_relation=relation,
                sync_time=sync.time if sync is not None else float("nan"),
                sync_flows=sync.n_flows if sync is not None else 0,
            )
        )
    return attributions


def _mean(values: List[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    return sum(finite) / len(finite) if finite else float("nan")


@dataclass
class ForensicsReport:
    """Everything one run's burst forensics concluded."""

    params: "ForensicsParams"
    n_flows: int
    duration: float
    bursts: List[BurstAttribution]
    sync_events: List[SyncEvent]
    exact: WindowAccountant
    sketch: SketchWindowAccountant

    # ------------------------------------------------------------------
    # Summary scalars (the forensic_* fields of ScenarioMetrics)
    # ------------------------------------------------------------------
    @property
    def n_bursts(self) -> int:
        return len(self.bursts)

    @property
    def n_sync_events(self) -> int:
        return len(self.sync_events)

    @property
    def n_sync_linked(self) -> int:
        return sum(1 for b in self.bursts if b.sync_linked)

    @property
    def precision(self) -> float:
        """Mean per-burst precision@k of the sketch vs the exact top-k."""
        return _mean([b.precision for b in self.bursts])

    @property
    def burst_time_fraction(self) -> float:
        """Fraction of the run spent inside a burst episode."""
        if self.duration <= 0:
            return float("nan")
        return (
            sum(b.episode.duration for b in self.bursts) / self.duration
        )

    @property
    def burst_rate(self) -> float:
        """Burst episodes per second of simulated time.

        Finite (0.0 with no bursts) whenever forensics ran at all --
        the sweep layer uses that as its "forensics present" marker.
        """
        if self.duration <= 0:
            return float("nan")
        return self.n_bursts / self.duration

    @property
    def burst_duration_mean(self) -> float:
        """Mean episode duration in seconds (NaN with no bursts)."""
        return _mean([b.episode.duration for b in self.bursts])

    @property
    def burst_drops(self) -> int:
        """Gateway drops charged to burst episodes."""
        return sum(b.episode.drops for b in self.bursts)

    @property
    def sync_linked_fraction(self) -> float:
        """Fraction of bursts linked to a loss-sync event (NaN if none)."""
        if not self.bursts:
            return float("nan")
        return self.n_sync_linked / self.n_bursts

    @property
    def top_flow(self) -> int:
        """The single heaviest contributor across all burst windows."""
        totals = self._burst_totals()
        if not totals:
            return -1
        return ranked_shares(totals, 1)[0].flow_id

    @property
    def top_flow_share(self) -> float:
        totals = self._burst_totals()
        if not totals:
            return float("nan")
        return ranked_shares(totals, 1)[0].share

    def _burst_totals(self) -> Dict[int, List[int]]:
        merged: Dict[int, List[int]] = {}
        for burst in self.bursts:
            for flow, entry in self.exact.span_counts(*burst.windows).items():
                slot = merged.setdefault(flow, [0, 0])
                slot[0] += entry[0]
                slot[1] += entry[1]
        return merged

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Stable payload for JSON export and the golden test."""
        return {
            "params": self.params.as_dict(),
            "n_flows": self.n_flows,
            "duration": self.duration,
            "n_bursts": self.n_bursts,
            "n_sync_events": self.n_sync_events,
            "n_sync_linked": self.n_sync_linked,
            "precision_at_k": self.precision,
            "burst_time_fraction": self.burst_time_fraction,
            "top_flow": self.top_flow,
            "top_flow_share": self.top_flow_share,
            "bursts": [b.as_dict() for b in self.bursts],
            "sync_events": [s.as_dict() for s in self.sync_events],
        }

    def to_series(self) -> List[Tuple[str, "TimeSeries"]]:
        """``(name, series)`` pairs for :meth:`ObsBundle.export`."""
        from repro.obs.registry import TimeSeries

        bursts = TimeSeries(
            "forensic_bursts",
            columns=(
                "end",
                "duration",
                "peak",
                "peak_time",
                "drops",
                "top_flow",
                "top_share",
                "precision",
                "sync_relation",
                "sync_time",
            ),
        )
        for b in self.bursts:
            e = b.episode
            bursts.append(
                e.start,
                e.end,
                e.duration,
                e.peak,
                e.peak_time,
                e.drops,
                b.top_flow,
                b.top_share,
                b.precision,
                b.sync_relation,
                b.sync_time,
            )
        attribution = TimeSeries(
            "forensic_attribution",
            columns=(
                "window",
                "source",
                "rank",
                "flow_id",
                "packets",
                "bytes",
                "share",
            ),
        )
        k = self.params.top_k
        for index in self.exact.windows():
            start = self.exact.window_start(index)
            for source, shares in (
                ("exact", self.exact.top_k(index, k)),
                ("sketch", self.sketch.top_k(index, k)),
            ):
                for rank, share in enumerate(shares, start=1):
                    attribution.append(
                        start,
                        index,
                        source,
                        rank,
                        share.flow_id,
                        share.packets,
                        share.bytes,
                        share.share,
                    )
        syncs = TimeSeries(
            "forensic_sync", columns=("end", "n_flows", "fraction")
        )
        for s in self.sync_events:
            syncs.append(s.time, s.end, s.n_flows, s.fraction)
        return [
            ("forensic_bursts", bursts),
            ("forensic_attribution", attribution),
            ("forensic_sync", syncs),
        ]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, top: Optional[int] = None) -> str:
        """Text report: episode table, per-burst culprits, sync events."""
        from repro.analysis.tables import format_table

        top = top if top is not None else self.params.top_k
        lines: List[str] = []
        lines.append(
            f"Burst forensics: {self.n_bursts} burst(s), "
            f"{self.n_sync_events} sync event(s), "
            f"{self.n_sync_linked}/{self.n_bursts} sync-linked"
            if self.n_bursts
            else "Burst forensics: no burst episodes detected"
        )
        precision = self.precision
        if not math.isnan(precision):
            lines.append(
                f"sketch-vs-exact precision@{self.params.top_k}: "
                f"{precision:.3f} "
                f"(sketch: {self.params.sketch_capacity} counters)"
            )
        if self.bursts:
            rows = [
                [
                    i,
                    round(b.episode.start, 3),
                    round(b.episode.end, 3),
                    b.episode.peak,
                    b.episode.drops,
                    b.sync_relation or "-",
                    (
                        round(b.sync_time, 3)
                        if not math.isnan(b.sync_time)
                        else "-"
                    ),
                    b.sync_flows or "-",
                ]
                for i, b in enumerate(self.bursts)
            ]
            lines.append("")
            lines.append(
                format_table(
                    [
                        "burst",
                        "start s",
                        "end s",
                        "peak pkts",
                        "drops",
                        "sync",
                        "sync t",
                        "sync flows",
                    ],
                    rows,
                    title="Burst episodes",
                )
            )
            for i, b in enumerate(self.bursts):
                sketch_rank = {
                    s.flow_id: rank
                    for rank, s in enumerate(b.sketch_top, start=1)
                }
                rows = [
                    [
                        rank,
                        s.flow_id,
                        s.packets,
                        s.bytes,
                        round(100.0 * s.share, 1),
                        sketch_rank.get(s.flow_id, "-"),
                    ]
                    for rank, s in enumerate(b.exact_top[:top], start=1)
                ]
                lines.append("")
                lines.append(
                    format_table(
                        [
                            "rank",
                            "flow",
                            "pkts",
                            "bytes",
                            "share %",
                            "sketch rank",
                        ],
                        rows,
                        title=(
                            f"Burst {i} culprits "
                            f"(t={b.episode.start:.2f}..{b.episode.end:.2f}s)"
                        ),
                    )
                )
        if self.sync_events:
            rows = [
                [
                    round(s.time, 3),
                    round(s.end, 3),
                    s.n_flows,
                    round(100.0 * s.fraction, 1),
                ]
                for s in self.sync_events
            ]
            lines.append("")
            lines.append(
                format_table(
                    ["t s", "end s", "flows", "% of flows"],
                    rows,
                    title="Loss-synchronization events",
                )
            )
        return "\n".join(lines)
