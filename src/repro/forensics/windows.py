"""Per-window flow attribution: exact accounting and the sketch.

Time is cut into tumbling windows of fixed width (default: one
round-trip propagation delay, the paper's binning).  Every packet the
gateway admits is charged to ``(window, flow)``; the per-window top-k by
bytes is the attribution the burst report ranks culprits with.

Two implementations of the same interface:

* :class:`WindowAccountant` keeps exact per-flow counters per window --
  the ground truth, free in a simulator;
* :class:`SketchWindowAccountant` keeps one bounded-memory space-saving
  sketch per window (``m`` counters regardless of flow count), the
  variant a real switch data plane could afford.  Its estimates
  overshoot true counts by at most ``W / m`` where ``W`` is the
  window's total weight (Metwally et al., the space-saving bound).
  Sketch-side rankings and byte figures use the *guaranteed* weight
  (estimate minus overestimation error): under eviction churn a
  newcomer's inherited floor can dwarf its true traffic, so ranking by
  raw estimates promotes freshly-evicted-and-readmitted flows, while
  the guarantee only counts bytes certainly attributable to the flow.

:func:`precision_at_k` cross-validates the two, tie-tolerantly: a
sketch pick counts as a hit when its *exact* weight reaches the k-th
largest exact weight, so permutations among tied flows are not
penalized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FlowShare:
    """One flow's contribution to one window (or window span)."""

    flow_id: int
    packets: int
    bytes: int
    share: float  # fraction of the span's total bytes

    def as_dict(self) -> Dict[str, object]:
        return {
            "flow_id": self.flow_id,
            "packets": self.packets,
            "bytes": self.bytes,
            "share": self.share,
        }


def _shares(
    counts: Dict[int, List[int]], k: Optional[int] = None
) -> List[FlowShare]:
    """Rank ``{flow: [packets, bytes]}`` into FlowShare rows by bytes.

    Ties break on flow id so the ranking is deterministic.
    """
    total = sum(entry[1] for entry in counts.values())
    ranked = sorted(counts.items(), key=lambda item: (-item[1][1], item[0]))
    if k is not None:
        ranked = ranked[:k]
    return [
        FlowShare(
            flow_id=flow,
            packets=entry[0],
            bytes=entry[1],
            share=entry[1] / total if total else 0.0,
        )
        for flow, entry in ranked
    ]


class WindowAccountant:
    """Exact per-window, per-flow packet/byte counters."""

    def __init__(self, window: float, start: float = 0.0) -> None:
        if window <= 0:
            raise ValueError("window width must be positive")
        self.window = window
        self.start = start
        # window index -> flow id -> [packets, bytes]
        self._windows: Dict[int, Dict[int, List[int]]] = {}

    def window_index(self, time: float) -> int:
        return int((time - self.start) // self.window)

    def window_start(self, index: int) -> float:
        return self.start + index * self.window

    def record(self, flow_id: int, time: float, nbytes: int) -> None:
        """Charge one admitted packet to its (window, flow) cell."""
        counts = self._windows.setdefault(self.window_index(time), {})
        entry = counts.get(flow_id)
        if entry is None:
            counts[flow_id] = [1, nbytes]
        else:
            entry[0] += 1
            entry[1] += nbytes

    def windows(self) -> List[int]:
        """Window indices that saw traffic, ascending."""
        return sorted(self._windows)

    def window_counts(self, index: int) -> Dict[int, List[int]]:
        return self._windows.get(index, {})

    def window_total_bytes(self, index: int) -> int:
        return sum(e[1] for e in self._windows.get(index, {}).values())

    def top_k(self, index: int, k: int) -> List[FlowShare]:
        """The window's k heaviest flows by bytes (ties by flow id)."""
        return _shares(self._windows.get(index, {}), k)

    def span_counts(self, first: int, last: int) -> Dict[int, List[int]]:
        """Summed ``{flow: [packets, bytes]}`` over windows first..last."""
        merged: Dict[int, List[int]] = {}
        for index in range(first, last + 1):
            for flow, entry in self._windows.get(index, {}).items():
                slot = merged.setdefault(flow, [0, 0])
                slot[0] += entry[0]
                slot[1] += entry[1]
        return merged

    def drop_window(self, index: int) -> None:
        """Discard one window's counters (streaming memory bound)."""
        self._windows.pop(index, None)


class SpaceSavingSketch:
    """Space-saving heavy hitters: ``capacity`` counters, any key count.

    On overflow the minimum-weight entry is evicted and the newcomer
    inherits its weight as a floor (recorded as the newcomer's error
    bound), so every tracked estimate satisfies
    ``true <= estimate <= true + error`` with
    ``error <= total_weight / capacity``.
    """

    __slots__ = ("capacity", "total_weight", "_weights", "_counts", "_errors")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("sketch capacity must be at least 1")
        self.capacity = capacity
        self.total_weight = 0
        self._weights: Dict[int, int] = {}
        self._counts: Dict[int, int] = {}  # packet counts, same policy
        self._errors: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._weights)

    def update(self, key: int, weight: int = 1, count: int = 1) -> None:
        """Add ``weight`` (bytes) and ``count`` (packets) for ``key``."""
        self.total_weight += weight
        weights = self._weights
        if key in weights:
            weights[key] += weight
            self._counts[key] += count
            return
        if len(weights) < self.capacity:
            weights[key] = weight
            self._counts[key] = count
            self._errors[key] = 0
            return
        # Evict the minimum-weight entry (ties by key, deterministic);
        # the newcomer inherits its weight floor as error.
        victim = min(weights, key=lambda k: (weights[k], k))
        floor_weight = weights.pop(victim)
        floor_count = self._counts.pop(victim)
        self._errors.pop(victim)
        weights[key] = floor_weight + weight
        self._counts[key] = floor_count + count
        self._errors[key] = floor_weight

    def estimate(self, key: int) -> int:
        """Estimated weight (0 for untracked keys)."""
        return self._weights.get(key, 0)

    def error(self, key: int) -> int:
        """Overshoot bound of this key's estimate (0 if exact)."""
        return self._errors.get(key, 0)

    def guaranteed(self, key: int) -> int:
        """Weight certainly attributable to ``key``: estimate - error."""
        return max(self._weights.get(key, 0) - self._errors.get(key, 0), 0)

    @property
    def max_error(self) -> float:
        """The sketch-wide guarantee: total_weight / capacity."""
        return self.total_weight / self.capacity

    def memory_words(self) -> int:
        """Budgeted storage in machine words: per tracked entry, one
        key plus weight/count/error counters."""
        return 4 * self.capacity

    def entries(self) -> List[Tuple[int, int, int, int]]:
        """``(key, weight, count, error)`` rows, best guarantee first.

        Ranked by guaranteed weight (``weight - error``) descending, ties
        by key: the error term is an inherited eviction floor, not the
        key's own traffic, so the guarantee -- not the raw estimate --
        is what identifies true heavy hitters under churn.
        """
        return sorted(
            (
                (key, self._weights[key], self._counts[key], self._errors[key])
                for key in self._weights
            ),
            key=lambda row: (-(row[1] - row[3]), row[0]),
        )

    def top_k(self, k: int) -> List[Tuple[int, int, int, int]]:
        return self.entries()[:k]


class CountMinSketch:
    """Conservative-update count-min, same interface as space-saving.

    ``depth`` hash rows of ``capacity // depth`` byte counters each (so
    the counter budget matches a space-saving sketch of the same
    ``capacity``), plus a parallel packet-count array and a tracked
    candidate set capped at ``capacity`` keys for top-k readout.  A
    key's estimate is the minimum over its row counters; conservative
    update raises each row counter only to ``estimate + weight``, never
    past it, which keeps collision inflation far below plain count-min.
    Estimates still only *overshoot* (``true <= estimate``) and no
    per-key error floor is known, so ``entries()`` reports ``error=0``
    and rankings use the raw estimate -- the trade-off
    :func:`precision_at_k` quantifies against space-saving's
    guaranteed-weight ranking in ``benchmarks/bench_forensics_sketch.py``.

    Hashing is a fixed-multiplier universal family (no per-instance
    randomness) so runs are reproducible bit-for-bit.
    """

    __slots__ = (
        "capacity",
        "depth",
        "width",
        "total_weight",
        "_rows",
        "_count_rows",
        "_tracked",
    )

    # Fixed odd 64-bit multipliers (splitmix64 outputs), one per row.
    _MULTIPLIERS = (0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB)
    _MASK = (1 << 64) - 1

    def __init__(
        self, capacity: int, depth: int = 2, width: Optional[int] = None
    ) -> None:
        if capacity < 1:
            raise ValueError("sketch capacity must be at least 1")
        if not 1 <= depth <= len(self._MULTIPLIERS):
            raise ValueError("depth must be between 1 and 3")
        if width is not None and width < 1:
            raise ValueError("sketch width must be at least 1")
        self.capacity = capacity
        self.depth = min(depth, capacity)
        self.width = width if width is not None else max(1, capacity // self.depth)
        self.total_weight = 0
        self._rows = [[0] * self.width for _ in range(self.depth)]
        self._count_rows = [[0] * self.width for _ in range(self.depth)]
        self._tracked: Dict[int, None] = {}

    def __len__(self) -> int:
        return len(self._tracked)

    def _bucket(self, row: int, key: int) -> int:
        # Range reduction via the product's HIGH bits ((h * w) >> 64):
        # reducing mod width instead would read only the low bits of
        # the product, which for power-of-two widths depend only on the
        # low bits of the key (multiplication by an odd constant is a
        # bijection mod 2^k) -- dense flow ids then alias badly.
        mixed = ((key + 1) * self._MULTIPLIERS[row]) & self._MASK
        return (mixed * self.width) >> 64

    def update(self, key: int, weight: int = 1, count: int = 1) -> None:
        """Add ``weight`` (bytes) and ``count`` (packets) for ``key``."""
        self.total_weight += weight
        buckets = [self._bucket(row, key) for row in range(self.depth)]
        est = min(self._rows[r][b] for r, b in zip(range(self.depth), buckets))
        cnt = min(
            self._count_rows[r][b] for r, b in zip(range(self.depth), buckets)
        )
        new_est = est + weight
        new_cnt = cnt + count
        for r, b in zip(range(self.depth), buckets):
            if self._rows[r][b] < new_est:
                self._rows[r][b] = new_est
            if self._count_rows[r][b] < new_cnt:
                self._count_rows[r][b] = new_cnt
        tracked = self._tracked
        if key in tracked:
            return
        if len(tracked) < self.capacity:
            tracked[key] = None
            return
        victim = min(tracked, key=lambda k: (self.estimate(k), k))
        if new_est > self.estimate(victim):
            del tracked[victim]
            tracked[key] = None

    def estimate(self, key: int) -> int:
        """Estimated weight: min over this key's row counters."""
        return min(
            self._rows[row][self._bucket(row, key)]
            for row in range(self.depth)
        )

    def _count_estimate(self, key: int) -> int:
        return min(
            self._count_rows[row][self._bucket(row, key)]
            for row in range(self.depth)
        )

    def error(self, key: int) -> int:
        """No per-key floor is known; count-min reports 0."""
        return 0

    def guaranteed(self, key: int) -> int:
        """Best available figure: the (overshooting) estimate itself."""
        return self.estimate(key)

    @property
    def max_error(self) -> float:
        """Expected per-row collision mass: total_weight / width."""
        return self.total_weight / self.width

    def memory_words(self) -> int:
        """Budgeted storage in machine words: byte + packet counter
        arrays plus the tracked-candidate key budget."""
        return 2 * self.depth * self.width + self.capacity

    def entries(self) -> List[Tuple[int, int, int, int]]:
        """``(key, weight, count, error=0)`` rows, best estimate first."""
        return sorted(
            (
                (key, self.estimate(key), self._count_estimate(key), 0)
                for key in self._tracked
            ),
            key=lambda row: (-row[1], row[0]),
        )

    def top_k(self, k: int) -> List[Tuple[int, int, int, int]]:
        return self.entries()[:k]


#: Sketch implementations selectable via the ``forensics_sketch`` knob.
SKETCHES = {
    "spacesaving": SpaceSavingSketch,
    "countmin": CountMinSketch,
}


class SketchWindowAccountant:
    """Bounded-memory twin of :class:`WindowAccountant`.

    One bounded sketch per tumbling window (space-saving by default,
    any :data:`SKETCHES` factory): state while a window is open is
    ``O(capacity)`` regardless of how many flows exist, which is the
    deployability claim the cross-validation tests check against the
    exact accountant.
    """

    def __init__(
        self,
        window: float,
        capacity: int,
        start: float = 0.0,
        factory=SpaceSavingSketch,
    ) -> None:
        if window <= 0:
            raise ValueError("window width must be positive")
        self.window = window
        self.capacity = capacity
        self.start = start
        self.factory = factory
        self._windows: Dict[int, SpaceSavingSketch] = {}

    def window_index(self, time: float) -> int:
        return int((time - self.start) // self.window)

    def record(self, flow_id: int, time: float, nbytes: int) -> None:
        index = self.window_index(time)
        sketch = self._windows.get(index)
        if sketch is None:
            sketch = self._windows[index] = self.factory(self.capacity)
        sketch.update(flow_id, nbytes)

    def windows(self) -> List[int]:
        return sorted(self._windows)

    def sketch(self, index: int) -> Optional[SpaceSavingSketch]:
        return self._windows.get(index)

    def top_k(self, index: int, k: int) -> List[FlowShare]:
        """The window's k best-guaranteed flows (bytes = lower bound)."""
        sketch = self._windows.get(index)
        if sketch is None:
            return []
        total = sketch.total_weight
        return [
            FlowShare(
                flow_id=key,
                packets=count,
                bytes=weight - error,
                share=(weight - error) / total if total else 0.0,
            )
            for key, weight, count, error in sketch.top_k(k)
        ]

    def span_counts(self, first: int, last: int) -> Dict[int, List[int]]:
        """Summed guaranteed weights over windows first..last.

        Merging sums per-key guarantees (each a lower bound, so the sum
        is one too), mirroring register readout + aggregation on a real
        switch.
        """
        merged: Dict[int, List[int]] = {}
        for index in range(first, last + 1):
            sketch = self._windows.get(index)
            if sketch is None:
                continue
            for key, weight, count, error in sketch.entries():
                slot = merged.setdefault(key, [0, 0])
                slot[0] += count
                slot[1] += weight - error
        return merged

    def drop_window(self, index: int) -> None:
        """Discard one window's sketch (streaming memory bound)."""
        self._windows.pop(index, None)


def ranked_shares(
    counts: Dict[int, List[int]], k: Optional[int] = None
) -> List[FlowShare]:
    """Public wrapper over the ranking used by both accountants."""
    return _shares(counts, k)


def precision_at_k(
    exact: List[FlowShare], approx: List[FlowShare], k: int
) -> float:
    """Fraction of the sketch's top-k that belong in the exact top-k.

    Tie-tolerant: an approximate pick is a hit when its exact byte count
    is at least the k-th largest exact byte count, so swapping equally
    heavy flows costs nothing.  Returns 1.0 when there is nothing to
    rank (no exact traffic).
    """
    if not exact:
        return 1.0
    k = min(k, len(exact))
    threshold = exact[k - 1].bytes
    exact_bytes = {s.flow_id: s.bytes for s in exact}
    hits = sum(
        1 for s in approx[:k] if exact_bytes.get(s.flow_id, 0) >= threshold
    )
    return hits / k


def recall_at_k(
    exact: List[FlowShare], approx: List[FlowShare], k: int
) -> float:
    """Fraction of the exact top-k flow ids the sketch's top-k found.

    Stricter than :func:`precision_at_k`: no tie tolerance -- the
    specific flows the exact ranking named must appear.  Returns 1.0
    when there is nothing to rank.
    """
    if not exact:
        return 1.0
    k = min(k, len(exact))
    wanted = {s.flow_id for s in exact[:k]}
    found = {s.flow_id for s in approx[:k]}
    return len(wanted & found) / k
