"""The live forensics probe a :class:`~repro.experiments.scenario.Scenario` attaches.

One object owns all three detectors and feeds them from two sources:

* the bottleneck queue's enqueue/dequeue/drop hooks (occupancy samples,
  per-packet attribution charges, episode drop counts);
* each TCP sender's :meth:`note_state` transitions, forwarded when the
  state is a multiplicative window cut (:data:`LOSS_STATES`).

Everything is observation-only: the probe never mutates a packet, a
queue decision, or a sender, so enabling forensics cannot change any
physics-derived metric (the config knobs are digest-excluded for the
same reason the obs knobs are).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Dict, Optional, Union

from repro.forensics.bursts import BurstDetector
from repro.forensics.report import ForensicsReport, build_attributions
from repro.forensics.sync import LossSyncDetector
from repro.forensics.windows import (
    SKETCHES,
    SketchWindowAccountant,
    WindowAccountant,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.config import ScenarioConfig
    from repro.forensics.stream import ForensicsStream, ForensicsStreamReport
    from repro.net.packet import Packet
    from repro.net.queues import PacketQueue

#: ``note_state`` values that are multiplicative window cuts: these are
#: what the loss-synchronization detector counts.  (Recovery exits,
#: partial ACKs and slow-start exits are transitions, not cuts.)
LOSS_STATES = frozenset({"timeout", "fast_retransmit", "ecn_cut"})


@dataclass(frozen=True)
class ForensicsParams:
    """Resolved (absolute-units) forensics knobs."""

    window: float  # attribution window width, seconds
    top_k: int  # culprits ranked per window/burst
    sketch_capacity: int  # space-saving counters per window
    burst_enter: int  # occupancy (packets) opening a burst
    burst_exit: int  # occupancy closing it (hysteresis)
    sync_window: float  # "within one RTT", seconds
    sync_fraction: float  # quorum as a fraction of flows
    sync_lookback: float = 5.0  # preceding-sync search span, seconds
    sync_horizon: float = 2.0  # triggered-sync slack past burst end

    @classmethod
    def from_config(cls, config: "ScenarioConfig") -> "ForensicsParams":
        """Resolve the fractional ScenarioConfig knobs to packet units.

        Defaults: the attribution and sync windows are one round-trip
        propagation delay (the paper's binning); the sketch gets
        ``4 * top_k`` counters (comfortably above the space-saving
        rule of thumb for recovering a top-k).
        """
        window = config.forensics_window or config.rtt_prop
        top_k = config.forensics_top_k
        capacity = config.forensics_sketch_capacity or 4 * top_k
        enter = max(
            1, int(round(config.forensics_burst_enter * config.buffer_capacity))
        )
        exit_ = int(round(config.forensics_burst_exit * config.buffer_capacity))
        exit_ = min(exit_, enter - 1)
        return cls(
            window=window,
            top_k=top_k,
            sketch_capacity=capacity,
            burst_enter=enter,
            burst_exit=max(exit_, 0),
            sync_window=config.rtt_prop,
            sync_fraction=config.forensics_sync_fraction,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "top_k": self.top_k,
            "sketch_capacity": self.sketch_capacity,
            "burst_enter": self.burst_enter,
            "burst_exit": self.burst_exit,
            "sync_window": self.sync_window,
            "sync_fraction": self.sync_fraction,
            "sync_lookback": self.sync_lookback,
            "sync_horizon": self.sync_horizon,
        }


class ForensicsProbe:
    """Streams one run's gateway events into the three detectors."""

    def __init__(
        self,
        params: ForensicsParams,
        n_flows: int,
        queue: Optional["PacketQueue"] = None,
        sketch_kind: str = "spacesaving",
    ) -> None:
        try:
            factory = SKETCHES[sketch_kind]
        except KeyError:
            raise ValueError(
                f"unknown forensics sketch {sketch_kind!r}; "
                f"choose from {sorted(SKETCHES)}"
            ) from None
        self.params = params
        self.n_flows = n_flows
        self.sketch_kind = sketch_kind
        self.exact = WindowAccountant(params.window)
        self.sketch = SketchWindowAccountant(
            params.window, params.sketch_capacity, factory=factory
        )
        self.bursts = BurstDetector(params.burst_enter, params.burst_exit)
        self.sync = LossSyncDetector(
            n_flows, params.sync_window, params.sync_fraction
        )
        self.queue: Optional["PacketQueue"] = None
        self.stream: Optional["ForensicsStream"] = None
        self._report: Optional[
            Union[ForensicsReport, "ForensicsStreamReport"]
        ] = None
        if queue is not None:
            self.attach(queue)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, queue: "PacketQueue") -> "ForensicsProbe":
        """Register on the queue's enqueue/dequeue/drop hooks."""
        self.queue = queue
        queue.add_enqueue_hook(self._on_enqueue)
        queue.add_dequeue_hook(self._on_dequeue)
        queue.add_drop_hook(self._on_drop)
        return self

    def stream_to(self, sink: IO[str], interval: float) -> "ForensicsStream":
        """Switch to incremental emission: flush final records to
        ``sink`` as JSONL roughly every ``interval`` sim seconds.

        Checkpoints piggyback on the queue hooks the probe already
        owns (no simulator events are scheduled), so streaming cannot
        change event counts or any physics-derived metric.  After a
        streamed run :meth:`finalize` returns the summary-only
        :class:`~repro.forensics.stream.ForensicsStreamReport`.
        """
        from repro.forensics.stream import ForensicsStream

        if self.stream is not None:
            raise RuntimeError("forensics stream already attached")
        self.stream = ForensicsStream(self, sink, interval)
        return self.stream

    # ------------------------------------------------------------------
    # Hook bodies
    # ------------------------------------------------------------------
    def _on_enqueue(self, packet: "Packet", now: float) -> None:
        self.exact.record(packet.flow_id, now, packet.size)
        self.sketch.record(packet.flow_id, now, packet.size)
        self.bursts.on_sample(now, len(self.queue))
        if self.stream is not None:
            self.stream.maybe_flush(now)

    def _on_dequeue(self, packet: "Packet", now: float) -> None:
        self.bursts.on_sample(now, len(self.queue))
        if self.stream is not None:
            self.stream.maybe_flush(now)

    def _on_drop(self, packet: "Packet", now: float) -> None:
        self.bursts.on_drop(now, self.queue.last_drop_cause)

    def on_flow_state(self, flow_id: int, now: float, state: str) -> None:
        """A sender's ``note_state`` transition (all states forwarded;
        only multiplicative cuts are counted)."""
        if state in LOSS_STATES:
            self.sync.on_loss(flow_id, now)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def finalize(
        self, end_time: float
    ) -> Union[ForensicsReport, "ForensicsStreamReport"]:
        """Close open episodes and assemble the report (idempotent).

        Offline mode returns the full :class:`ForensicsReport`; with a
        stream attached the per-record content has already been
        emitted, so this flushes the tail and returns the summary-only
        stream report instead.
        """
        if self._report is not None:
            return self._report
        episodes = self.bursts.finalize(end_time)
        if self.stream is not None:
            self._report = self.stream.finalize(end_time)
            return self._report
        syncs = self.sync.finalize()
        attributions = build_attributions(
            episodes, syncs, self.exact, self.sketch, self.params
        )
        self._report = ForensicsReport(
            params=self.params,
            n_flows=self.n_flows,
            duration=end_time,
            bursts=attributions,
            sync_events=syncs,
            exact=self.exact,
            sketch=self.sketch,
        )
        return self._report
