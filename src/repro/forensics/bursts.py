"""Burst segmentation of the bottleneck-queue occupancy series.

A burst episode opens when the instantaneous queue length reaches the
*enter* threshold and closes when it falls back to the *exit* threshold
(hysteresis: exit < enter, so chatter around a single level never
fragments one build-up into many episodes).  The detector is streaming
-- it consumes the same enqueue/dequeue hook stream the obs layer's
:class:`~repro.obs.probes.QueueProbe` samples from, holding O(1) state
plus the finished episode list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class BurstEpisode:
    """One contiguous queue build-up above the burst threshold."""

    start: float
    end: float = float("nan")
    peak: int = 0
    peak_time: float = float("nan")
    drops: int = 0
    drop_causes: Dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, object]:
        return {
            "start": self.start,
            "end": self.end,
            "peak": self.peak,
            "peak_time": self.peak_time,
            "drops": self.drops,
            "drop_causes": dict(sorted(self.drop_causes.items())),
        }


class BurstDetector:
    """Hysteresis state machine over instantaneous queue length.

    Args:
        enter: occupancy (packets) at or above which a burst opens.
        exit: occupancy at or below which an open burst closes;
            must be strictly below ``enter``.
    """

    def __init__(self, enter: int, exit: int) -> None:
        if enter < 1:
            raise ValueError("burst enter threshold must be >= 1 packet")
        if exit >= enter:
            raise ValueError("burst exit threshold must be below enter")
        if exit < 0:
            raise ValueError("burst exit threshold must be >= 0")
        self.enter = enter
        self.exit = exit
        self.episodes: List[BurstEpisode] = []
        self._open: Optional[BurstEpisode] = None

    @property
    def in_burst(self) -> bool:
        return self._open is not None

    @property
    def open_start(self) -> Optional[float]:
        """Start time of the episode currently open, if any."""
        return self._open.start if self._open is not None else None

    def drain_episodes(self) -> List[BurstEpisode]:
        """Hand over the closed episodes (streaming memory bound)."""
        episodes = self.episodes
        self.episodes = []
        return episodes

    def on_sample(self, now: float, length: int) -> None:
        """Feed one occupancy sample (call on every length change)."""
        episode = self._open
        if episode is None:
            if length >= self.enter:
                self._open = BurstEpisode(
                    start=now, peak=length, peak_time=now
                )
            return
        if length > episode.peak:
            episode.peak = length
            episode.peak_time = now
        if length <= self.exit:
            episode.end = now
            self.episodes.append(episode)
            self._open = None

    def on_drop(self, now: float, cause: str) -> None:
        """Charge a gateway drop to the open episode, if any."""
        episode = self._open
        if episode is None:
            return
        episode.drops += 1
        episode.drop_causes[cause] = episode.drop_causes.get(cause, 0) + 1

    def finalize(self, end_time: float) -> List[BurstEpisode]:
        """Close any episode still open at the end of the run."""
        episode = self._open
        if episode is not None:
            episode.end = end_time
            self.episodes.append(episode)
            self._open = None
        return self.episodes
