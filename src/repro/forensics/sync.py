"""Loss-synchronization detection and burst linkage.

The paper's mechanism for TCP-induced burstiness: a gateway overflow
makes *many* flows halve cwnd at nearly the same instant, their windows
then regrow in lockstep, and the next overload arrives as one
synchronized wave.  :class:`LossSyncDetector` finds those instants --
any one-RTT span in which at least ``max(2, ceil(fraction * n_flows))``
distinct flows cut their window -- and :func:`link_bursts` ties each
burst episode to the sync event that preceded it (the wave that built
the burst) or fired inside it (the cut the burst itself forced).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.forensics.bursts import BurstEpisode


@dataclass(frozen=True)
class SyncEvent:
    """One cluster of near-simultaneous cwnd cuts."""

    time: float  # first cut in the cluster
    end: float  # last cut
    flows: Tuple[int, ...]  # distinct flows that cut, sorted
    fraction: float  # len(flows) / population

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    def as_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "end": self.end,
            "n_flows": self.n_flows,
            "fraction": self.fraction,
        }


class LossSyncDetector:
    """Collects per-flow cwnd-cut events; clusters them on finalize.

    Args:
        n_flows: population size the quorum fraction applies to.
        window: the "within one RTT" span, seconds.
        fraction: quorum as a fraction of ``n_flows``; the absolute
            quorum is ``max(2, ceil(fraction * n_flows))`` (one flow
            halving alone is never synchronization).
    """

    def __init__(self, n_flows: int, window: float, fraction: float) -> None:
        if window <= 0:
            raise ValueError("sync window must be positive")
        if not 0 < fraction <= 1:
            raise ValueError("sync fraction must lie in (0, 1]")
        self.n_flows = n_flows
        self.window = window
        self.fraction = fraction
        self.min_flows = max(2, math.ceil(fraction * n_flows))
        self._events: List[Tuple[float, int]] = []

    @property
    def n_events(self) -> int:
        return len(self._events)

    def on_loss(self, flow_id: int, time: float) -> None:
        """Record one flow's multiplicative window cut."""
        self._events.append((time, flow_id))

    def finalize(self) -> List[SyncEvent]:
        """Cluster the recorded cuts into synchronization events.

        A cut *qualifies* when some window-wide span containing it holds
        cuts from at least ``min_flows`` distinct flows; maximal runs of
        qualifying cuts separated by at most one window become one
        :class:`SyncEvent` each (overlapping qualifying spans merge).
        """
        events = sorted(self._events)
        n = len(events)
        if n == 0:
            return []
        times = [e[0] for e in events]
        flows = [e[1] for e in events]

        # Sliding window [i..j]: how many distinct flows cut within one
        # window of event i?  Mark every event inside a qualifying span.
        covered = [False] * n
        flow_count: Dict[int, int] = {}
        distinct = 0
        j = -1
        marked_until = -1
        for i in range(n):
            while j + 1 < n and times[j + 1] - times[i] <= self.window:
                j += 1
                flow = flows[j]
                flow_count[flow] = flow_count.get(flow, 0) + 1
                if flow_count[flow] == 1:
                    distinct += 1
            if distinct >= self.min_flows:
                for idx in range(max(i, marked_until + 1), j + 1):
                    covered[idx] = True
                covered[i] = True
                marked_until = max(marked_until, j)
            flow = flows[i]
            flow_count[flow] -= 1
            if flow_count[flow] == 0:
                distinct -= 1

        # Group covered events into clusters (gap > window splits).
        clusters: List[List[int]] = []
        current: List[int] = []
        for idx in range(n):
            if not covered[idx]:
                continue
            if current and times[idx] - times[current[-1]] > self.window:
                clusters.append(current)
                current = [idx]
            else:
                current.append(idx)
        if current:
            clusters.append(current)

        result = []
        for cluster in clusters:
            cluster_flows = tuple(sorted({flows[idx] for idx in cluster}))
            result.append(
                SyncEvent(
                    time=times[cluster[0]],
                    end=times[cluster[-1]],
                    flows=cluster_flows,
                    fraction=(
                        len(cluster_flows) / self.n_flows
                        if self.n_flows
                        else 0.0
                    ),
                )
            )
        return result


def link_bursts(
    episodes: List[BurstEpisode],
    syncs: List[SyncEvent],
    lookback: float,
    horizon: float,
) -> List[Tuple[str, Optional[SyncEvent]]]:
    """Match each burst episode to its loss-sync event, if any.

    Returns one ``(relation, sync)`` pair per episode:

    * ``("preceding", sync)`` -- the latest sync whose cuts finished at
      most ``lookback`` seconds before the burst opened (the lockstep
      regrowth wave that built this burst);
    * ``("triggered", sync)`` -- otherwise, the earliest sync starting
      inside ``[start, end + horizon]`` (the cuts this burst's own
      overflow forced; horizon covers detection lag -- dupacks need an
      RTT, timeouts an RTO -- after the queue has already drained);
    * ``("", None)`` -- no sync near the episode at all.
    """
    links: List[Tuple[str, Optional[SyncEvent]]] = []
    for episode in episodes:
        preceding = None
        for sync in syncs:
            if sync.time <= episode.start and (
                episode.start - sync.end
            ) <= lookback:
                if preceding is None or sync.time > preceding.time:
                    preceding = sync
        if preceding is not None:
            links.append(("preceding", preceding))
            continue
        triggered = None
        for sync in syncs:
            if episode.start < sync.time <= episode.end + horizon:
                triggered = sync
                break
        if triggered is not None:
            links.append(("triggered", triggered))
        else:
            links.append(("", None))
    return links
