"""Loss-synchronization detection and burst linkage.

The paper's mechanism for TCP-induced burstiness: a gateway overflow
makes *many* flows halve cwnd at nearly the same instant, their windows
then regrow in lockstep, and the next overload arrives as one
synchronized wave.  :class:`LossSyncDetector` finds those instants --
any one-RTT span in which at least ``max(2, ceil(fraction * n_flows))``
distinct flows cut their window -- and :func:`link_bursts` ties each
burst episode to the sync event that preceded it (the wave that built
the burst) or fired inside it (the cut the burst itself forced).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.forensics.bursts import BurstEpisode


@dataclass(frozen=True)
class SyncEvent:
    """One cluster of near-simultaneous cwnd cuts."""

    time: float  # first cut in the cluster
    end: float  # last cut
    flows: Tuple[int, ...]  # distinct flows that cut, sorted
    fraction: float  # len(flows) / population

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    def as_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "end": self.end,
            "n_flows": self.n_flows,
            "fraction": self.fraction,
        }


class LossSyncDetector:
    """Collects per-flow cwnd-cut events; clusters them on finalize.

    Args:
        n_flows: population size the quorum fraction applies to.
        window: the "within one RTT" span, seconds.
        fraction: quorum as a fraction of ``n_flows``; the absolute
            quorum is ``max(2, ceil(fraction * n_flows))`` (one flow
            halving alone is never synchronization).
    """

    def __init__(self, n_flows: int, window: float, fraction: float) -> None:
        if window <= 0:
            raise ValueError("sync window must be positive")
        if not 0 < fraction <= 1:
            raise ValueError("sync fraction must lie in (0, 1]")
        self.n_flows = n_flows
        self.window = window
        self.fraction = fraction
        self.min_flows = max(2, math.ceil(fraction * n_flows))
        self._events: List[Tuple[float, int]] = []

    @property
    def n_events(self) -> int:
        return len(self._events)

    def on_loss(self, flow_id: int, time: float) -> None:
        """Record one flow's multiplicative window cut."""
        self._events.append((time, flow_id))

    def drain_events(self) -> List[Tuple[float, int]]:
        """Hand the buffered raw cuts over (used by the streaming path,
        which clusters incrementally instead of at finalize)."""
        events = self._events
        self._events = []
        return events

    def finalize(self) -> List[SyncEvent]:
        """Cluster the recorded cuts into synchronization events.

        A cut *qualifies* when some window-wide span containing it holds
        cuts from at least ``min_flows`` distinct flows; maximal runs of
        qualifying cuts separated by at most one window become one
        :class:`SyncEvent` each (overlapping qualifying spans merge).
        """
        events = sorted(self._events)
        if not events:
            return []
        times = [e[0] for e in events]
        flows = [e[1] for e in events]
        _, clusters = _cover_and_cluster(times, flows, self.window, self.min_flows)
        return [
            _cluster_event(times, flows, cluster, self.n_flows)
            for cluster in clusters
        ]


def _cover_and_cluster(
    times: List[float],
    flows: List[int],
    window: float,
    min_flows: int,
) -> Tuple[List[bool], List[List[int]]]:
    """The batch clustering core over sorted cut lists.

    Returns per-event coverage flags and the clusters as index lists:
    an event is covered when some window-wide span containing it holds
    cuts from at least ``min_flows`` distinct flows, and maximal runs
    of covered events separated by at most one window form one cluster.
    """
    n = len(times)
    covered = [False] * n
    flow_count: Dict[int, int] = {}
    distinct = 0
    j = -1
    marked_until = -1
    for i in range(n):
        while j + 1 < n and times[j + 1] - times[i] <= window:
            j += 1
            flow = flows[j]
            flow_count[flow] = flow_count.get(flow, 0) + 1
            if flow_count[flow] == 1:
                distinct += 1
        if distinct >= min_flows:
            for idx in range(max(i, marked_until + 1), j + 1):
                covered[idx] = True
            covered[i] = True
            marked_until = max(marked_until, j)
        flow = flows[i]
        flow_count[flow] -= 1
        if flow_count[flow] == 0:
            distinct -= 1

    clusters: List[List[int]] = []
    current: List[int] = []
    for idx in range(n):
        if not covered[idx]:
            continue
        if current and times[idx] - times[current[-1]] > window:
            clusters.append(current)
            current = [idx]
        else:
            current.append(idx)
    if current:
        clusters.append(current)
    return covered, clusters


def _cluster_event(
    times: List[float],
    flows: List[int],
    cluster: List[int],
    n_flows: int,
) -> SyncEvent:
    cluster_flows = tuple(sorted({flows[idx] for idx in cluster}))
    return SyncEvent(
        time=times[cluster[0]],
        end=times[cluster[-1]],
        flows=cluster_flows,
        fraction=len(cluster_flows) / n_flows if n_flows else 0.0,
    )


class IncrementalSyncClusterer:
    """Online twin of :meth:`LossSyncDetector.finalize`.

    Buffers raw cuts and commits a cluster once no future cut can change
    it.  Coverage of a cut at time ``t`` depends only on cuts within one
    window of ``t`` (qualifying spans are window-wide), so it is final
    once ``safe > t + window``; a closed cluster whose last member is at
    ``t_last`` could still be extended by a covered cut in
    ``(t_last, t_last + window]``, whose own coverage is final at
    ``t_last + 2*window`` -- so a cluster commits once
    ``safe > t_last + 2*window``.  Committed clusters' cuts and
    established-uncovered cuts older than ``safe - 2*window`` leave the
    buffer: removing them cannot flip any remaining cut's coverage
    (covered cuts always leave with their cluster; losing neighbors only
    keeps uncovered cuts uncovered), so re-running the batch core over
    the shrinking buffer reproduces the full batch clustering exactly
    (checked differentially in tests/test_forensics_stream.py).
    """

    def __init__(self, detector: LossSyncDetector) -> None:
        self.detector = detector
        self._buffer: List[Tuple[float, int]] = []

    @property
    def min_buffered_time(self) -> float:
        """Earliest undecided cut still buffered (inf when none).

        Any sync event not yet committed must start at or after this
        time, which is what lets the streaming layer prove a burst's
        linkage can no longer change.
        """
        pending = self.detector._events
        earliest = float("inf")
        if self._buffer:
            earliest = self._buffer[0][0]
        if pending:
            earliest = min(earliest, min(t for t, _ in pending))
        return earliest

    def commit(self, safe: float) -> List[SyncEvent]:
        """Commit every cluster final before ``safe`` (inf commits all)."""
        self._buffer.extend(self.detector.drain_events())
        self._buffer.sort()
        if not self._buffer:
            return []
        window = self.detector.window
        times = [t for t, _ in self._buffer]
        flows = [f for _, f in self._buffer]
        covered, clusters = _cover_and_cluster(
            times, flows, window, self.detector.min_flows
        )
        committed: List[SyncEvent] = []
        remove = set()
        for cluster in clusters:
            if safe > times[cluster[-1]] + 2.0 * window:
                committed.append(
                    _cluster_event(times, flows, cluster, self.detector.n_flows)
                )
                remove.update(cluster)
        for idx in range(len(times)):
            if not covered[idx] and safe > times[idx] + 2.0 * window:
                remove.add(idx)
        if remove:
            self._buffer = [
                cut for idx, cut in enumerate(self._buffer) if idx not in remove
            ]
        return committed


def link_bursts(
    episodes: List[BurstEpisode],
    syncs: List[SyncEvent],
    lookback: float,
    horizon: float,
) -> List[Tuple[str, Optional[SyncEvent]]]:
    """Match each burst episode to its loss-sync event, if any.

    Returns one ``(relation, sync)`` pair per episode:

    * ``("preceding", sync)`` -- the latest sync whose cuts finished at
      most ``lookback`` seconds before the burst opened (the lockstep
      regrowth wave that built this burst);
    * ``("triggered", sync)`` -- otherwise, the earliest sync starting
      inside ``[start, end + horizon]`` (the cuts this burst's own
      overflow forced; horizon covers detection lag -- dupacks need an
      RTT, timeouts an RTO -- after the queue has already drained);
    * ``("", None)`` -- no sync near the episode at all.
    """
    links: List[Tuple[str, Optional[SyncEvent]]] = []
    for episode in episodes:
        preceding = None
        for sync in syncs:
            if sync.time <= episode.start and (
                episode.start - sync.end
            ) <= lookback:
                if preceding is None or sync.time > preceding.time:
                    preceding = sync
        if preceding is not None:
            links.append(("preceding", preceding))
            continue
        triggered = None
        for sync in syncs:
            if episode.start < sync.time <= episode.end + horizon:
                triggered = sync
                break
        if triggered is not None:
            links.append(("triggered", triggered))
        else:
            links.append(("", None))
    return links
