"""Cross-stream dependence: the paper's central mechanism, quantified.

Section 2.2's argument is that the Central Limit Theorem smoothing of
aggregated traffic requires the streams to be *independent*, and that
TCP's congestion control destroys exactly that independence ("TCP can
modulate these streams in such a way that they are no longer
independent").  The paper shows the consequence (aggregate c.o.v.);
this module measures the cause directly:

* pairwise Pearson correlation of the per-flow binned arrival counts;
* the autocorrelation function of the aggregate counts;
* a variance-decomposition check: for independent streams,
  ``var(sum) = sum(var)``; the excess ``var(sum) - sum(var)`` is twice
  the sum of the pairwise covariances -- positive when congestion
  decisions synchronize, and directly responsible for the c.o.v. gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray]


def pairwise_correlations(per_flow_counts: np.ndarray) -> np.ndarray:
    """Upper-triangle pairwise Pearson correlations.

    Args:
        per_flow_counts: shape (n_flows, n_bins) array of per-flow
            per-bin arrival counts.

    Returns:
        1-D array of the n*(n-1)/2 pairwise correlation coefficients
        (flows with zero variance are skipped).
    """
    counts = np.asarray(per_flow_counts, dtype=float)
    if counts.ndim != 2 or counts.shape[0] < 2:
        raise ValueError("need a (n_flows >= 2, n_bins) array")
    variances = counts.var(axis=1)
    active = counts[variances > 0]
    if active.shape[0] < 2:
        return np.zeros(0)
    matrix = np.corrcoef(active)
    upper = matrix[np.triu_indices_from(matrix, k=1)]
    return upper


def mean_pairwise_correlation(per_flow_counts: np.ndarray) -> float:
    """Mean pairwise correlation (0 for independent streams)."""
    correlations = pairwise_correlations(per_flow_counts)
    if correlations.size == 0:
        return 0.0
    return float(correlations.mean())


def autocorrelation(counts: ArrayLike, max_lag: int = 20) -> np.ndarray:
    """Autocorrelation function of a count series, lags 0..max_lag."""
    series = np.asarray(counts, dtype=float)
    if series.size < 2:
        raise ValueError("need at least two observations")
    series = series - series.mean()
    variance = float((series**2).sum())
    if variance == 0:
        return np.concatenate([[1.0], np.zeros(min(max_lag, series.size - 1))])
    lags = range(0, min(max_lag, series.size - 1) + 1)
    return np.array(
        [float((series[: series.size - k] * series[k:]).sum()) / variance for k in lags]
    )


@dataclass
class DependenceReport:
    """Independence diagnostics for one run's per-flow arrivals."""

    n_flows: int
    mean_correlation: float
    max_correlation: float
    fraction_positive: float
    aggregate_variance: float
    sum_of_flow_variances: float
    aggregate_acf_lag1: float

    @property
    def variance_excess_ratio(self) -> float:
        """var(sum)/sum(var): 1 for independent streams, > 1 when the
        streams' fluctuations are positively coupled."""
        if self.sum_of_flow_variances == 0:
            return 1.0 if self.aggregate_variance == 0 else float("inf")
        return self.aggregate_variance / self.sum_of_flow_variances

    def describe(self) -> str:
        """Human-readable summary."""
        return "\n".join(
            [
                f"flows analyzed          = {self.n_flows}",
                f"mean pairwise corr      = {self.mean_correlation:+.4f}",
                f"max pairwise corr       = {self.max_correlation:+.4f}",
                f"fraction positive pairs = {self.fraction_positive:.0%}",
                f"var(sum)/sum(var)       = {self.variance_excess_ratio:.3f}"
                "  (1.0 = independent)",
                f"aggregate ACF at lag 1  = {self.aggregate_acf_lag1:+.4f}",
            ]
        )


def dependence_report(per_flow_counts: np.ndarray) -> DependenceReport:
    """Build a :class:`DependenceReport` from per-flow binned counts."""
    counts = np.asarray(per_flow_counts, dtype=float)
    correlations = pairwise_correlations(counts)
    aggregate = counts.sum(axis=0)
    acf = autocorrelation(aggregate, max_lag=1)
    return DependenceReport(
        n_flows=counts.shape[0],
        mean_correlation=float(correlations.mean()) if correlations.size else 0.0,
        max_correlation=float(correlations.max()) if correlations.size else 0.0,
        fraction_positive=(
            float((correlations > 0).mean()) if correlations.size else 0.0
        ),
        aggregate_variance=float(aggregate.var()),
        sum_of_flow_variances=float(counts.var(axis=1).sum()),
        aggregate_acf_lag1=float(acf[1]) if acf.size > 1 else 0.0,
    )


def bin_flow_times(
    times_by_flow: Dict[int, Sequence[float]],
    bin_width: float,
    t_start: float,
    t_end: float,
) -> np.ndarray:
    """Per-flow binned counts, shape (n_flows, n_bins), flows sorted by id."""
    if bin_width <= 0:
        raise ValueError("bin width must be positive")
    n_bins = int((t_end - t_start) / bin_width)
    if n_bins <= 0:
        raise ValueError("window shorter than one bin")
    flows = sorted(times_by_flow)
    out = np.zeros((len(flows), n_bins))
    window_end = t_start + n_bins * bin_width
    for row, flow in enumerate(flows):
        times = np.asarray(list(times_by_flow[flow]), dtype=float)
        if times.size == 0:
            continue
        in_window = times[(times >= t_start) & (times < window_end)]
        indices = ((in_window - t_start) / bin_width).astype(int)
        out[row] = np.bincount(indices, minlength=n_bins)[:n_bins]
    return out
