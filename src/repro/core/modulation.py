"""The paper's headline comparison: offered vs transported traffic.

A :class:`ModulationReport` puts the two sides of the paper's method
next to each other for one run:

* the c.o.v. of the aggregate the applications *offered* (measured from
  generation times, plus the analytic Poisson value when applicable);
* the c.o.v. of the aggregate the transport actually *delivered to the
  gateway* (measured from arrivals at the bottleneck port);
* the modulation ratio between them -- the number the paper quotes as
  "the TCP c.o.v. numbers are up to X% higher than the aggregated
  Poisson".

Ratios near 1 mean the transport is transparent (UDP); ratios well
above 1 mean the transport injects burstiness (Reno under congestion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.burstiness import BurstinessProfile
from repro.core.cov import coefficient_of_variation

ArrayLike = Union[Sequence[float], np.ndarray]


@dataclass
class ModulationReport:
    """Offered-vs-transported burstiness for one run."""

    offered_cov: float
    transported_cov: float
    analytic_cov: Optional[float]
    offered_profile: BurstinessProfile
    transported_profile: BurstinessProfile

    @property
    def modulation_ratio(self) -> float:
        """transported / offered c.o.v.; > 1 means induced burstiness."""
        if self.offered_cov == 0:
            return float("inf") if self.transported_cov > 0 else 1.0
        return self.transported_cov / self.offered_cov

    @property
    def excess_percent(self) -> float:
        """Percent by which the transported c.o.v. exceeds the offered."""
        return (self.modulation_ratio - 1.0) * 100.0

    @property
    def excess_over_analytic_percent(self) -> Optional[float]:
        """Percent above the analytic (Poisson) c.o.v., if available."""
        if self.analytic_cov is None or self.analytic_cov == 0:
            return None
        return (self.transported_cov / self.analytic_cov - 1.0) * 100.0

    def describe(self) -> str:
        """Human-readable summary paragraph."""
        lines = [
            f"offered c.o.v.     = {self.offered_cov:.4f}",
            f"transported c.o.v. = {self.transported_cov:.4f}",
            f"modulation ratio   = {self.modulation_ratio:.3f}"
            f"  ({self.excess_percent:+.1f}% vs offered)",
        ]
        if self.analytic_cov is not None:
            excess = self.excess_over_analytic_percent
            lines.append(
                f"analytic Poisson   = {self.analytic_cov:.4f}"
                f"  ({excess:+.1f}% vs analytic)"
            )
        return "\n".join(lines)


def modulation_report(
    offered_counts: ArrayLike,
    transported_counts: ArrayLike,
    analytic_cov: Optional[float] = None,
) -> ModulationReport:
    """Build a :class:`ModulationReport` from per-bin count series."""
    offered = np.asarray(offered_counts, dtype=float)
    transported = np.asarray(transported_counts, dtype=float)
    return ModulationReport(
        offered_cov=coefficient_of_variation(offered),
        transported_cov=coefficient_of_variation(transported),
        analytic_cov=analytic_cov,
        offered_profile=BurstinessProfile.from_counts(offered),
        transported_profile=BurstinessProfile.from_counts(transported),
    )
