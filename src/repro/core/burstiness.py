"""Complementary burstiness measures.

The paper argues the c.o.v. at the RTT timescale is the right measure
for statistical-multiplexing effectiveness; these companions quantify
the same counts differently and across timescales, supporting that
argument:

* index of dispersion for counts (IDC): var/mean -- equals 1 for
  Poisson at every timescale, grows with timescale for LRD traffic;
* peak-to-mean ratio: the classic provisioning headroom number;
* multi-scale c.o.v. profile: the c.o.v. recomputed over dyadic
  aggregations of the base bins, the "does it smooth out when you zoom
  out?" question underlying self-similarity claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.core.cov import coefficient_of_variation

ArrayLike = Union[Sequence[float], np.ndarray]


def index_of_dispersion(counts: ArrayLike, ddof: int = 0) -> float:
    """Variance-to-mean ratio of counts (1.0 for a Poisson sample)."""
    counts = np.asarray(counts, dtype=float)
    if counts.size == 0:
        return float("nan")
    mean = counts.mean()
    if mean == 0:
        return 0.0
    return float(counts.var(ddof=ddof) / mean)


def peak_to_mean(counts: ArrayLike) -> float:
    """max/mean of counts (provisioning headroom)."""
    counts = np.asarray(counts, dtype=float)
    if counts.size == 0:
        return float("nan")
    mean = counts.mean()
    if mean == 0:
        return 0.0
    return float(counts.max() / mean)


def aggregate_counts(counts: ArrayLike, factor: int) -> np.ndarray:
    """Sum adjacent groups of ``factor`` bins (coarser timescale)."""
    if factor < 1:
        raise ValueError("aggregation factor must be >= 1")
    counts = np.asarray(counts, dtype=float)
    n_groups = counts.size // factor
    if n_groups == 0:
        return np.zeros(0)
    return counts[: n_groups * factor].reshape(n_groups, factor).sum(axis=1)


def multiscale_cov(
    counts: ArrayLike, factors: Sequence[int] = (1, 2, 4, 8, 16, 32)
) -> Dict[int, float]:
    """c.o.v. at several dyadic aggregations of the base timescale.

    For i.i.d. counts the c.o.v. at factor ``m`` falls like
    ``1/sqrt(m)``; slower decay is the signature of burstiness that
    persists across timescales (self-similarity).
    """
    result: Dict[int, float] = {}
    for factor in factors:
        aggregated = aggregate_counts(counts, factor)
        if aggregated.size >= 2:
            result[factor] = coefficient_of_variation(aggregated)
    return result


@dataclass
class BurstinessProfile:
    """All burstiness measures of one count series, in one place."""

    cov: float
    idc: float
    peak_to_mean: float
    mean: float
    std: float
    multiscale: Dict[int, float]

    @classmethod
    def from_counts(
        cls,
        counts: ArrayLike,
        factors: Sequence[int] = (1, 2, 4, 8, 16, 32),
    ) -> "BurstinessProfile":
        """Compute the full profile of a count series."""
        arr = np.asarray(counts, dtype=float)
        return cls(
            cov=coefficient_of_variation(arr),
            idc=index_of_dispersion(arr),
            peak_to_mean=peak_to_mean(arr),
            mean=float(arr.mean()) if arr.size else float("nan"),
            std=float(arr.std()) if arr.size else float("nan"),
            multiscale=multiscale_cov(arr, factors),
        )

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        lines: List[str] = [
            f"mean={self.mean:.3f} pkts/bin  std={self.std:.3f}",
            f"c.o.v.={self.cov:.4f}  IDC={self.idc:.3f}  peak/mean={self.peak_to_mean:.2f}",
        ]
        if self.multiscale:
            scales = "  ".join(
                f"m={m}:{c:.4f}" for m, c in sorted(self.multiscale.items())
            )
            lines.append(f"multi-scale c.o.v.: {scales}")
        return "\n".join(lines)
