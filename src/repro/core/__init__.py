"""The paper's analytical core: traffic burstiness and TCP modulation.

* :mod:`repro.core.cov` -- the coefficient-of-variation measure of
  Section 2.2 (std/mean of per-RTT packet counts at the gateway).
* :mod:`repro.core.theory` -- closed-form baselines: the c.o.v. of
  aggregated Poisson traffic and Central-Limit-Theorem smoothing.
* :mod:`repro.core.burstiness` -- complementary burstiness measures
  (index of dispersion, peak-to-mean, multi-scale profiles).
* :mod:`repro.core.selfsimilar` -- Hurst-parameter estimators used by
  the literature the paper critiques (R/S, variance-time plots).
* :mod:`repro.core.modulation` -- the paper's headline comparison:
  offered vs TCP-modulated aggregate statistics.
* :mod:`repro.core.fluid` -- deterministic Reno/Vegas closed forms
  used as analytic cross-checks of simulator steady state.
* :mod:`repro.core.fluid_backend` -- the mean-field fluid *scenario
  backend*: the N -> infinity cwnd-distribution + queue ODE system,
  solved as a drop-in replacement for the packet engine.
"""

from repro.core.burstiness import (
    BurstinessProfile,
    index_of_dispersion,
    multiscale_cov,
    peak_to_mean,
)
from repro.core.cov import bin_counts, coefficient_of_variation, cov_from_times
from repro.core.dependence import (
    DependenceReport,
    autocorrelation,
    bin_flow_times,
    dependence_report,
    mean_pairwise_correlation,
    pairwise_correlations,
)
from repro.core.modulation import ModulationReport, modulation_report
from repro.core.selfsimilar import (
    hurst_aggregate_variance,
    hurst_rescaled_range,
    variance_time_plot,
)
from repro.core.theory import (
    clt_smoothing_factor,
    expected_bin_mean,
    poisson_aggregate_cov,
    poisson_cov_curve,
)
from repro.core.fluid import (
    reno_fluid_throughput,
    reno_ideal_sawtooth_cov,
    reno_sawtooth_cov,
    vegas_equilibrium_window,
)
from repro.core.fluid_backend import FluidSolver, run_fluid_scenario

__all__ = [
    "BurstinessProfile",
    "DependenceReport",
    "ModulationReport",
    "autocorrelation",
    "bin_flow_times",
    "dependence_report",
    "mean_pairwise_correlation",
    "pairwise_correlations",
    "bin_counts",
    "clt_smoothing_factor",
    "coefficient_of_variation",
    "cov_from_times",
    "expected_bin_mean",
    "hurst_aggregate_variance",
    "hurst_rescaled_range",
    "index_of_dispersion",
    "modulation_report",
    "multiscale_cov",
    "peak_to_mean",
    "poisson_aggregate_cov",
    "poisson_cov_curve",
    "FluidSolver",
    "reno_fluid_throughput",
    "reno_ideal_sawtooth_cov",
    "reno_sawtooth_cov",
    "run_fluid_scenario",
    "variance_time_plot",
    "vegas_equilibrium_window",
]
