"""Deterministic fluid approximations of Reno and Vegas.

Reference [1] of the paper (Bonald, "Comparison of TCP Reno and TCP
Vegas via Fluid Approximation") analyzes both protocols as fluid
systems.  We provide the standard closed forms as analytic cross-checks
for the simulator's steady state:

* Reno's periodic-loss sawtooth: with loss probability ``p`` per packet
  the long-run throughput is approximately
  ``sqrt(3/2) / (rtt * sqrt(p))`` packets/s (Mathis et al. square-root
  law); the sawtooth oscillating between W/2 and W has a closed-form
  coefficient of variation of its instantaneous rate.
* Vegas's loss-free equilibrium: the window settles where the
  backlogged-packet estimate sits between alpha and beta, i.e. at
  ``W = rate * base_rtt + q`` with ``alpha <= q <= beta``.
"""

from __future__ import annotations

import math
from typing import Tuple


def reno_fluid_throughput(rtt: float, loss_probability: float) -> float:
    """Mathis square-root-law throughput in packets/second."""
    if rtt <= 0:
        raise ValueError("rtt must be positive")
    if not 0 < loss_probability <= 1:
        raise ValueError("loss probability must be in (0, 1]")
    return math.sqrt(1.5) / (rtt * math.sqrt(loss_probability))


def reno_ideal_sawtooth_cov() -> float:
    """c.o.v. of the instantaneous rate of an *ideal* AIMD sawtooth.

    The fluid window ramps linearly from W/2 to W, so the rate is a
    uniform ramp on [W/2, W]: mean 3W/4, variance W^2/48, hence

        c.o.v. = (W / sqrt(48)) / (3W/4) = 4 / (3 * sqrt(48)) ~= 0.1925.

    This is the *intrinsic* per-flow burstiness of Reno's probing even
    with perfectly periodic loss -- a floor the simulated aggregate
    cannot beat once every flow is in the AIMD regime and decisions are
    synchronized.

    Do not confuse this constant with the rate c.o.v. the mean-field
    backend (:mod:`repro.core.fluid_backend`) reports: that one is
    measured from the solved aggregate-rate trajectory (queue coupling,
    timeout droughts, finite-rate sampling floor and all) and varies
    with N, protocol, and gateway -- this closed form is valid only for
    a single backlogged flow under perfectly periodic loss.
    ``tests/test_fluid_modulation.py`` cross-checks the two.
    """
    return 4.0 / (3.0 * math.sqrt(48.0))


def reno_sawtooth_cov() -> float:
    """Deprecated alias of :func:`reno_ideal_sawtooth_cov`.

    Kept for backward compatibility; the rename makes the "ideal
    sawtooth only" validity explicit now that a fluid *backend* also
    reports a (very different) rate c.o.v.
    """
    return reno_ideal_sawtooth_cov()


def reno_sawtooth_period(rtt: float, window_peak: float) -> float:
    """Duration of one W/2 -> W additive-increase ramp, in seconds.

    Congestion avoidance adds one packet per RTT, so the ramp takes
    ``W/2`` RTTs.
    """
    if rtt <= 0 or window_peak <= 0:
        raise ValueError("rtt and window must be positive")
    return (window_peak / 2.0) * rtt


def vegas_equilibrium_window(
    fair_rate: float, base_rtt: float, alpha: float = 1.0, beta: float = 3.0
) -> Tuple[float, float]:
    """The (min, max) equilibrium window of a Vegas flow.

    At equilibrium a Vegas flow keeps between ``alpha`` and ``beta``
    packets queued at the bottleneck, so its window is its fair share of
    the bandwidth-delay product plus that backlog:

        W in [fair_rate * base_rtt + alpha, fair_rate * base_rtt + beta].
    """
    if fair_rate <= 0 or base_rtt <= 0:
        raise ValueError("rate and base RTT must be positive")
    if alpha < 0 or beta < alpha:
        raise ValueError("need 0 <= alpha <= beta")
    bdp = fair_rate * base_rtt
    return (bdp + alpha, bdp + beta)


def vegas_equilibrium_queue(n_flows: int, alpha: float = 1.0, beta: float = 3.0) -> Tuple[float, float]:
    """Aggregate gateway backlog bounds with ``n`` Vegas flows.

    Section 3.4's argument: with 40 streams and (alpha, beta) = (1, 3),
    Vegas keeps 40..120 packets queued -- beyond a RED gateway's
    ``max_th`` of 40, so RED drops continuously.
    """
    if n_flows < 1:
        raise ValueError("need at least one flow")
    if alpha < 0 or beta < alpha:
        raise ValueError("need 0 <= alpha <= beta")
    return (n_flows * alpha, n_flows * beta)
