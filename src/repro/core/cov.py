"""The coefficient of variation (c.o.v.) of binned packet counts.

The paper's burstiness measure (Section 2.2): the ratio of the standard
deviation to the mean of the number of packets arriving at the gateway
in each round-trip propagation delay.  A small c.o.v. means arrivals
concentrate around the mean and statistical multiplexing works well; a
large c.o.v. means bursts.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray, Iterable[float]]


def bin_counts(
    times: ArrayLike,
    bin_width: float,
    t_start: float = 0.0,
    t_end: Optional[float] = None,
) -> np.ndarray:
    """Count events per fixed-width bin over ``[t_start, t_end)``.

    Events outside the window are discarded.  Trailing empty bins up to
    ``t_end`` are included (an interval with no arrivals is still an
    observation of the arrival process).
    """
    if bin_width <= 0:
        raise ValueError("bin width must be positive")
    times = np.asarray(list(times) if not isinstance(times, np.ndarray) else times)
    if t_end is None:
        t_end = float(times.max()) + bin_width if times.size else t_start
    if t_end < t_start:
        raise ValueError("t_end must not precede t_start")
    n_bins = int((t_end - t_start) / bin_width)
    if n_bins <= 0:
        return np.zeros(0)
    window_end = t_start + n_bins * bin_width
    in_window = times[(times >= t_start) & (times < window_end)]
    indices = ((in_window - t_start) / bin_width).astype(int)
    return np.bincount(indices, minlength=n_bins).astype(float)


def coefficient_of_variation(counts: ArrayLike, ddof: int = 0) -> float:
    """std/mean of a sample of counts.

    Returns ``nan`` for empty input and ``inf`` when the mean is zero
    but the sample is not (which cannot happen for counts) -- for an
    all-zero sample the c.o.v. is defined as 0 (a perfectly smooth,
    perfectly idle link).
    """
    counts = np.asarray(
        list(counts) if not isinstance(counts, np.ndarray) else counts, dtype=float
    )
    if counts.size == 0:
        return float("nan")
    mean = counts.mean()
    if mean == 0:
        return 0.0
    return float(counts.std(ddof=ddof) / mean)


def cov_from_times(
    times: ArrayLike,
    bin_width: float,
    t_start: float = 0.0,
    t_end: Optional[float] = None,
    ddof: int = 0,
) -> float:
    """c.o.v. of per-bin counts computed directly from event times."""
    return coefficient_of_variation(
        bin_counts(times, bin_width, t_start, t_end), ddof=ddof
    )
