"""Hurst-parameter estimators.

The self-similarity literature the paper critiques (its references
[11, 14, 15, 16, 19]) characterizes burstiness by the Hurst parameter
``H`` of the packet-count process: ``H = 0.5`` for short-range-dependent
(e.g. Poisson) traffic, ``H -> 1`` for strongly long-range-dependent
traffic.  The paper argues c.o.v. at the RTT scale is the operative
measure for statistical multiplexing; we implement the classical
estimators anyway so the two views can be compared on the same runs:

* aggregate-variance (variance-time plot) estimator;
* rescaled-range (R/S) estimator.

Both are log-log regression estimators; they need reasonably long count
series (hundreds of bins or more) to be meaningful.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray]


def variance_time_plot(
    counts: ArrayLike,
    factors: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    min_groups: int = 8,
) -> Tuple[np.ndarray, np.ndarray]:
    """(m, var of the m-aggregated, m-normalized series) pairs.

    For a self-similar process, ``var(X^(m)) ~ m^(2H-2)`` where
    ``X^(m)`` is the series averaged over blocks of ``m``.
    """
    counts = np.asarray(counts, dtype=float)
    ms: List[int] = []
    variances: List[float] = []
    for m in factors:
        n_groups = counts.size // m
        if n_groups < min_groups:
            continue
        blocks = counts[: n_groups * m].reshape(n_groups, m).mean(axis=1)
        variance = float(blocks.var())
        if variance > 0:
            ms.append(m)
            variances.append(variance)
    return np.asarray(ms, dtype=float), np.asarray(variances)


def hurst_aggregate_variance(
    counts: ArrayLike,
    factors: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    min_groups: int = 8,
) -> float:
    """Hurst estimate from the slope of the variance-time plot.

    Fits ``log var(X^(m)) = beta log m + c``; returns ``H = 1 + beta/2``.
    Returns ``nan`` if fewer than three usable aggregation levels exist.
    """
    ms, variances = variance_time_plot(counts, factors, min_groups)
    if ms.size < 3:
        return float("nan")
    slope = _regress_loglog(ms, variances)
    hurst = 1.0 + slope / 2.0
    return float(min(max(hurst, 0.0), 1.0))


def hurst_rescaled_range(
    counts: ArrayLike,
    block_sizes: Sequence[int] = (8, 16, 32, 64, 128, 256),
    min_blocks: int = 4,
) -> float:
    """Hurst estimate from rescaled-range (R/S) analysis.

    For each block size ``n``, the series is cut into blocks; each
    block's range of mean-adjusted cumulative sums, divided by the block
    standard deviation, scales as ``n^H``.
    """
    counts = np.asarray(counts, dtype=float)
    ns: List[int] = []
    rs_values: List[float] = []
    for n in block_sizes:
        n_blocks = counts.size // n
        if n_blocks < min_blocks:
            continue
        rs_block: List[float] = []
        for b in range(n_blocks):
            block = counts[b * n : (b + 1) * n]
            std = block.std()
            if std == 0:
                continue
            deviations = np.cumsum(block - block.mean())
            rs_block.append((deviations.max() - deviations.min()) / std)
        if rs_block:
            ns.append(n)
            rs_values.append(float(np.mean(rs_block)))
    ns_arr = np.asarray(ns, dtype=float)
    rs_arr = np.asarray(rs_values, dtype=float)
    usable = rs_arr > 0
    if usable.sum() < 3:
        return float("nan")
    hurst = _regress_loglog(ns_arr[usable], rs_arr[usable])
    return float(min(max(hurst, 0.0), 1.0))


def _regress_loglog(x: np.ndarray, y: np.ndarray) -> float:
    """Least-squares slope of log(y) on log(x)."""
    slope, _intercept = np.polyfit(np.log(x), np.log(y), 1)
    return float(slope)
