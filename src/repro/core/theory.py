"""Closed-form baselines from Section 2.2 of the paper.

The unmodulated aggregate of ``N`` independent Poisson sources of rate
``lambda`` observed over windows of width ``T`` is Poisson with mean
``N * lambda * T``; a Poisson count has variance equal to its mean, so

    c.o.v. = sqrt(N lambda T) / (N lambda T) = 1 / sqrt(N lambda T).

This is the smooth reference curve of Figure 2 ("the traffic generated
from the application layer becomes smoother as the number of sources
increases"), an instance of Central-Limit-Theorem smoothing.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def expected_bin_mean(n_sources: int, rate_per_source: float, bin_width: float) -> float:
    """Mean packets per bin for an aggregate of Poisson sources."""
    _validate(n_sources, rate_per_source, bin_width)
    return n_sources * rate_per_source * bin_width


def poisson_aggregate_cov(
    n_sources: int, rate_per_source: float, bin_width: float
) -> float:
    """Analytic c.o.v. of the aggregated Poisson counts: 1/sqrt(N*lambda*T)."""
    mean = expected_bin_mean(n_sources, rate_per_source, bin_width)
    return 1.0 / math.sqrt(mean)


def poisson_cov_curve(
    client_counts: Sequence[int], rate_per_source: float, bin_width: float
) -> np.ndarray:
    """The Figure-2 reference curve over a grid of client counts."""
    return np.array(
        [poisson_aggregate_cov(n, rate_per_source, bin_width) for n in client_counts]
    )


def clt_smoothing_factor(n_sources: int) -> float:
    """Relative spread reduction from aggregating ``n`` i.i.d. sources.

    For any finite-mean, finite-variance source, the c.o.v. of the sum
    of ``n`` independent copies is the single-source c.o.v. divided by
    ``sqrt(n)`` -- the Central Limit Theorem argument of Section 2.2.
    """
    if n_sources < 1:
        raise ValueError("need at least one source")
    return 1.0 / math.sqrt(n_sources)


def aggregate_cov_of_independent(covs: Sequence[float], means: Sequence[float]) -> float:
    """c.o.v. of a sum of independent sources with given per-source stats.

    var(sum) = sum(var_i) = sum((cov_i * mean_i)**2); mean(sum) = sum(mean_i).
    TCP's modulation breaks exactly the independence this formula needs --
    measured aggregate c.o.v. above this value indicates induced coupling.
    """
    covs = np.asarray(covs, dtype=float)
    means = np.asarray(means, dtype=float)
    if covs.shape != means.shape or covs.size == 0:
        raise ValueError("covs and means must be equal-length, non-empty")
    total_mean = means.sum()
    if total_mean <= 0:
        raise ValueError("aggregate mean must be positive")
    total_std = math.sqrt(float(((covs * means) ** 2).sum()))
    return total_std / total_mean


def _validate(n_sources: int, rate_per_source: float, bin_width: float) -> None:
    if n_sources < 1:
        raise ValueError("need at least one source")
    if rate_per_source <= 0:
        raise ValueError("rate must be positive")
    if bin_width <= 0:
        raise ValueError("bin width must be positive")
