"""Mean-field fluid scenario backend: the N -> infinity limit object.

The packet engine's cost grows linearly in client count, topping out
around N=500-1000 per run.  McDonald & Reynier's mean-field analysis of
many TCP connections through a RED buffer shows that in the large-N
limit the *empirical distribution* of congestion windows evolves
deterministically, coupled to a scalar queue ODE.  This module solves
that limit system directly, so a "scenario" at N=10^6 costs the same
wall time as one at N=50 (the solver state is a window density, not N
flows).

The model (DESIGN.md section 12 gives the full derivation):

* ``m(w, t)``: probability density of congestion windows over
  ``[1, W_max]``, discretized into ``n_bins`` cells.  A separate scalar
  compartment ``z(t)`` holds the fraction of flows waiting out a
  retransmission timeout.
* Sending rate of a window-``w`` flow: ``r(w) = min(lambda, w / RTT)``
  with ``RTT = rtt_prop + q / C`` -- the paper's sources are rate-limited
  (Poisson at ``lambda = 1/mean_gap``), not backlogged, which is what
  couples burstiness to N in the first place.
* Queue ODE: ``dq/dt = A (1 - p) - C`` clamped to ``[0, B]``, where
  ``A = N * E[r]`` is the aggregate arrival rate and ``p`` the loss
  probability (droptail overflow or RED's marking curve on the EWMA
  average ``v``, integrated by an exact exponential sub-step).
* Reno drift: additive increase ``dw/dt = r (1 - p_fb) / w``; loss
  halves the window (an interpolated redistribution matrix moves
  density from ``w`` to ``w/2``); halvings that would land below the
  fast-retransmit threshold go to the timeout compartment instead.
* Vegas drift: ``dw/dt = +-1 / RTT`` by comparing the delayed backlog
  estimate ``d = r_fb (rtt_fb - rtt_prop)`` against ``alpha``/``beta``.
* Loss feedback is *one RTT old* (ring buffers of ``p`` and ``q``):
  this delay is the destabilizing element that produces the limit
  cycles -- the deterministic skeleton of the paper's burstiness.
* Droptail loss hits flows in bursts (whole windows clipped at the full
  buffer), so its effective per-flow loss is boosted by a
  window-dependent synchronization factor; RED's randomization
  deliberately desynchronizes (factor 1).
* Timeout droughts: mass entering ``z`` returns to ``w = 1`` spread
  over ``[0.5 tau, 1.5 tau]`` with
  ``tau = min_rto (1 + 2 p) / max(1 - p, 0.3)^2`` (coarse-timer backoff
  under loss), reproducing the synchronized slow-start restarts.

Integration is fixed-step RK4 with projection (density clipped to be
non-negative and renormalized with ``z``; queue clamped to ``[0, B]``);
no scipy dependency.  Validity envelope and tolerance bands versus the
packet engine are documented in DESIGN.md section 12 and enforced by
``tests/test_fluid_differential.py``.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional

import numpy as np

from repro.core.theory import poisson_aggregate_cov

__all__ = ["FluidSolver", "run_fluid_scenario", "fluid_rate_cov"]

#: Window value below which a halving is modeled as a timeout instead of
#: a fast retransmit (fewer than 3 packets in flight cannot generate the
#: triple duplicate ACK).
_TIMEOUT_WINDOW = 3.0


def _smoothstep(x: float, lo: float, hi: float) -> float:
    t = min(max((x - lo) / (hi - lo), 0.0), 1.0)
    return t * t * (3.0 - 2.0 * t)


def fluid_rate_cov(
    times: np.ndarray,
    rates: np.ndarray,
    dt: float,
    bin_width: float,
    warmup: float,
    duration: float,
    sampling_floor: bool = True,
) -> np.ndarray:
    """Bin a continuous aggregate arrival-rate series into per-bin
    packet counts, the fluid analogue of the gateway arrival monitor.

    Returns the bin-count array; the caller computes c.o.v. from it.
    When ``sampling_floor`` is set the counts are later combined with
    the finite-rate Poisson sampling variance (``var + mean``), because
    a fluid rate ``A(t)`` describes the *intensity* of a point process:
    even a perfectly constant intensity yields ``var = mean`` packet
    counts.  Without the floor the counts measure pure deterministic
    modulation (the N -> infinity limit of c.o.v.).
    """
    mask = times >= warmup
    nb = max(int((duration - warmup) / bin_width), 1)
    idx = np.minimum(((times[mask] - warmup) / bin_width).astype(int), nb - 1)
    return np.bincount(idx, weights=rates[mask] * dt, minlength=nb)


class FluidSolver:
    """The discretized mean-field system for one scenario.

    Parameters mirror the physics fields of
    :class:`~repro.experiments.config.ScenarioConfig`;
    :func:`run_fluid_scenario` maps a config onto them.  ``loss_override``
    pins the loss probability to a constant (bypassing the queue/RED
    coupling) for property tests of the density dynamics alone.
    """

    def __init__(
        self,
        *,
        protocol: str = "reno",
        queue: str = "fifo",
        n_flows: int = 50,
        duration: float = 60.0,
        warmup: float = 0.0,
        rtt_prop: float = 0.404,
        capacity_pps: float = 375.0,
        buffer_packets: float = 50.0,
        per_flow_rate: float = 10.0,
        max_window: float = 20.0,
        vegas_alpha: float = 1.0,
        vegas_beta: float = 3.0,
        red_min_th: float = 10.0,
        red_max_th: float = 40.0,
        red_max_p: float = 0.1,
        red_weight: float = 0.002,
        min_rto: float = 1.0,
        n_bins: int = 96,
        dt: Optional[float] = None,
        loss_override: Optional[float] = None,
    ) -> None:
        if protocol not in ("reno", "vegas"):
            raise ValueError(f"fluid solver models reno/vegas, not {protocol!r}")
        if queue not in ("fifo", "red"):
            raise ValueError(f"fluid solver models fifo/red, not {queue!r}")
        self.protocol, self.queue = protocol, queue
        self.n = n_flows
        self.duration, self.warmup = duration, warmup
        self.rtt_prop, self.C, self.B = rtt_prop, capacity_pps, float(buffer_packets)
        self.lam = per_flow_rate
        self.alpha, self.beta = vegas_alpha, vegas_beta
        self.red_min, self.red_max = red_min_th, red_max_th
        self.red_maxp, self.red_weight = red_max_p, red_weight
        self.min_rto = min_rto
        self.loss_override = loss_override
        self.M = n_bins
        self.wlo, self.whi = 1.0, float(max_window)
        self.dw = (self.whi - self.wlo) / self.M
        self.w = self.wlo + (np.arange(self.M) + 0.5) * self.dw
        if dt is None:
            # CFL-limited by the fastest advection (one window per RTT
            # across a bin) and capped well below the feedback delay.
            dt = min(0.4 * self.dw * self.rtt_prop, 0.25 * self.rtt_prop, 0.05)
        self.dt = dt
        # Halving redistribution: mass at w_j lands at w_j / 2, linearly
        # interpolated between the two straddling bins.
        self.half_lo = np.zeros(self.M, dtype=int)
        self.half_hi = np.zeros(self.M, dtype=int)
        self.half_frac = np.zeros(self.M)
        for j in range(self.M):
            target = max(self.w[j] / 2.0, self.wlo)
            pos = (target - self.wlo) / self.dw - 0.5
            lo = int(np.floor(pos))
            frac = pos - lo
            self.half_lo[j] = min(max(lo, 0), self.M - 1)
            self.half_hi[j] = min(max(lo + 1, 0), self.M - 1)
            self.half_frac[j] = min(max(frac, 0.0), 1.0)
        self.to_mask = self.w < _TIMEOUT_WINDOW
        # Timeout-return pipeline state (set per step by run()).
        self._to_return = 0.0
        self._to_entry = 0.0
        self._tau_now = min_rto
        #: Exogenous arrival rate (packets/s) added to the aggregate the
        #: queue sees -- the hybrid backend's foreground feedback term.
        #: The default 0.0 is exact (x + 0.0 is bit-identical for the
        #: non-negative aggregate), so pure-fluid runs are unchanged.
        self.extra_arrival = 0.0

    # ------------------------------------------------------------------
    def loss_probability(self, q: float, v: float, arrival_rate: float) -> float:
        """Instantaneous loss probability from queue state.

        Droptail: the overflow fraction ``1 - C/A`` smoothly switched on
        as the queue reaches the full buffer.  RED: the marking curve on
        the EWMA average ``v``, plus overflow when the instantaneous
        queue still fills.
        """
        if self.loss_override is not None:
            return self.loss_override
        p_tail = max(0.0, 1.0 - self.C / max(arrival_rate, self.C)) * _smoothstep(
            q, self.B - 2.0, self.B - 0.25
        )
        if self.queue == "red":
            if v < self.red_min:
                p_red = 0.0
            elif v < self.red_max:
                p_red = self.red_maxp * (v - self.red_min) / (self.red_max - self.red_min)
            else:
                p_red = 1.0
            return min(1.0, p_red + p_tail * (1.0 - p_red))
        return p_tail

    def rates(self, q: float):
        """Per-bin sending rates and the common RTT at queue level q."""
        rtt = self.rtt_prop + min(max(q, 0.0), self.B) / self.C
        return np.minimum(self.lam, self.w / rtt), rtt

    def rhs(self, m: np.ndarray, z: float, q: float, v: float,
            p_fb: float, q_fb: float):
        """Time derivatives of (m, z, q) plus diagnostics.

        ``p_fb``/``q_fb`` are the one-RTT-delayed loss probability and
        queue level the windows react to.  Probability mass is conserved
        exactly: ``sum(dm) + dz == 0`` (the queue is not part of the
        distribution).
        """
        qc = min(max(q, 0.0), self.B)
        r, rtt = self.rates(qc)
        arrival = self.n * float(r @ m) + self.extra_arrival
        p = self.loss_probability(qc, v, arrival)
        accepted = arrival * (1.0 - p)
        dq = accepted - self.C
        if qc >= self.B - 1e-9 and dq > 0:
            dq = 0.0
        if qc <= 1e-9 and dq < 0:
            dq = 0.0
        # Window drift, reacting to one-RTT-old feedback.
        r_fb, rtt_fb = self.rates(q_fb)
        if self.protocol == "reno":
            a = r * (1.0 - p_fb) / self.w
        else:
            backlog = r_fb * (rtt_fb - self.rtt_prop)
            u = np.where(
                backlog < self.alpha, 1.0,
                np.where(backlog > self.beta, -1.0, 0.0),
            )
            a = u / rtt
        dm = np.zeros(self.M)
        # First-order upwind advection of the density.
        ap = np.maximum(a, 0.0)
        ap[-1] = 0.0
        am = np.minimum(a, 0.0)
        am[0] = 0.0
        flux_up = ap * m / self.dw
        flux_dn = am * m / self.dw
        dm -= flux_up
        dm[1:] += flux_up[:-1]
        dm += flux_dn
        dm[:-1] -= flux_dn[1:]
        # Loss-driven halving.  Droptail overflow clips whole windows at
        # the full buffer, hitting large-window flows in synchronized
        # bursts; RED's randomized early marks do not (sync factor 1).
        if self.queue != "red":
            sync = 1.0 + 2.0 * np.clip((self.w - 1.0) / 2.0, 0.0, 1.0)
        else:
            sync = 1.0
        mu = np.minimum(sync * p_fb * r, 1.0 / rtt)
        h = mu * m
        to_inflow = float(h[self.to_mask].sum())
        h_stay = h.copy()
        h_stay[self.to_mask] = 0.0
        dm -= h
        np.add.at(dm, self.half_lo, h_stay * (1.0 - self.half_frac))
        np.add.at(dm, self.half_hi, h_stay * self.half_frac)
        # Timeout compartment: inflow now, outflow from the delayed
        # pipeline (computed by run() from the entry history).
        tau = self.min_rto * (1.0 + 2.0 * p_fb) / max(1.0 - p_fb, 0.3) ** 2
        back = self._to_return
        dz = to_inflow - back
        dm[0] += back
        self._to_entry = to_inflow
        self._tau_now = tau
        return dm, dz, dq, arrival, p, accepted, float(h_stay.sum())

    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Reset state for incremental stepping (see :meth:`step_once`).

        :meth:`run` is ``begin()`` followed by ``steps`` calls to
        ``step_once()``; the hybrid backend interleaves those steps with
        the discrete-event engine instead, adjusting
        :attr:`extra_arrival` between coupling intervals.  The split
        preserves the exact float-operation order of the original
        monolithic loop, so pure-fluid trajectories are unchanged.
        """
        self._m = np.zeros(self.M)
        self._m[0] = 1.0  # every flow starts at w = 1 (slow start from cold)
        self._z, self._q, self._v = 0.0, 0.0, 0.0
        steps = int(round(self.duration / self.dt))
        self.steps = steps
        self._t_arr = np.empty(steps)
        self._A_arr = np.empty(steps)
        self._q_arr = np.empty(steps)
        self._p_arr = np.empty(steps)
        self._s_arr = np.empty(steps)
        self._w_arr = np.empty(steps)
        self._z_arr = np.empty(steps)
        self._fr_arr = np.empty(steps)
        self._to_arr = np.empty(steps)
        self._p_hist = np.zeros(steps + 1)
        self._q_hist = np.zeros(steps + 1)
        self._in_hist = np.zeros(steps + 1)
        self._to_return = 0.0
        self.step_index = 0

    def step_once(self) -> None:
        """Advance the system by one RK4 step of width ``dt``."""
        i = self.step_index
        m, z, q, v = self._m, self._z, self._q, self._v
        rtt_now = self.rtt_prop + q / self.C
        lag = max(int(round(rtt_now / self.dt)), 1)
        j = max(i - lag, 0)
        p_fb, q_fb = self._p_hist[j], self._q_hist[j]
        # RK4 on (m, z, q); the RED average uses an exact EWMA
        # sub-step afterwards (operator splitting keeps the slow
        # average from stiffening the stage equations).
        k1 = self.rhs(m, z, q, v, p_fb, q_fb)
        k2 = self.rhs(m + 0.5 * self.dt * k1[0], z + 0.5 * self.dt * k1[1],
                      q + 0.5 * self.dt * k1[2], v, p_fb, q_fb)
        k3 = self.rhs(m + 0.5 * self.dt * k2[0], z + 0.5 * self.dt * k2[1],
                      q + 0.5 * self.dt * k2[2], v, p_fb, q_fb)
        k4 = self.rhs(m + self.dt * k3[0], z + self.dt * k3[1],
                      q + self.dt * k3[2], v, p_fb, q_fb)
        m = m + self.dt / 6.0 * (k1[0] + 2 * k2[0] + 2 * k3[0] + k4[0])
        z = z + self.dt / 6.0 * (k1[1] + 2 * k2[1] + 2 * k3[1] + k4[1])
        q = q + self.dt / 6.0 * (k1[2] + 2 * k2[2] + 2 * k3[2] + k4[2])
        # Projection: clip and renormalize so (m, z) stays a
        # probability distribution and q stays in the buffer.
        m = np.maximum(m, 0.0)
        q = min(max(q, 0.0), self.B)
        z = min(max(z, 0.0), 1.0)
        total = m.sum() + z
        if total > 0:
            m /= total
            z /= total
        arrival, p, accepted = k1[3], k1[4], k1[5]
        self._p_hist[i] = p
        self._q_hist[i] = q
        self._in_hist[i] = self._to_entry
        # Timeout returns: mass that entered z between 0.5 tau and
        # 1.5 tau ago comes back now (spread return kernel -- the
        # coarse 500 ms timers quantize individual RTOs, but backoff
        # state disperses them across about one tau).
        lag_lo = max(int(round(0.5 * self._tau_now / self.dt)), 1)
        lag_hi = max(int(round(1.5 * self._tau_now / self.dt)), lag_lo + 1)
        jlo, jhi = max(i - lag_hi, 0), max(i - lag_lo, 0)
        self._to_return = (
            float(self._in_hist[jlo:jhi].mean()) if jhi > jlo and i >= lag_lo else 0.0
        )
        if self.queue == "red":
            k = self.red_weight * max(arrival, 1e-9)
            v = q + (v - q) * math.exp(-k * self.dt)
        self._t_arr[i] = i * self.dt
        self._A_arr[i] = arrival
        self._q_arr[i] = q
        self._p_arr[i] = p
        self._z_arr[i] = z
        self._s_arr[i] = self.C if q > 1e-9 else min(accepted, self.C)
        self._fr_arr[i] = k1[6]
        self._to_arr[i] = self._to_entry
        act = m.sum()
        self._w_arr[i] = float(self.w @ m) / act if act > 0 else 1.0
        self._m, self._z, self._q, self._v = m, z, q, v
        self.step_index = i + 1

    def trajectory(self) -> Dict[str, np.ndarray]:
        """The trajectory arrays accumulated so far (run() returns the
        full-duration view; a hybrid run reads it after the last step)."""
        self._final_m, self._final_z = self._m, self._z
        return dict(t=self._t_arr, A=self._A_arr, q=self._q_arr,
                    p=self._p_arr, s=self._s_arr, w=self._w_arr,
                    z=self._z_arr, fr=self._fr_arr, to=self._to_arr)

    def run(self) -> Dict[str, np.ndarray]:
        """Integrate to ``duration``; returns the trajectory arrays."""
        self.begin()
        while self.step_index < self.steps:
            self.step_once()
        return self.trajectory()

    # ------------------------------------------------------------------
    def summarize(self, traj: Dict[str, np.ndarray], bin_width: float,
                  sampling_floor: bool = True) -> Dict[str, float]:
        """Fold a trajectory into the scalar metrics a sweep keeps."""
        counts = fluid_rate_cov(
            traj["t"], traj["A"], self.dt, bin_width,
            self.warmup, self.duration,
        )
        mean = counts.mean()
        var = counts.var()
        if sampling_floor:
            # The fluid rate is a point-process intensity: finite-rate
            # Poisson sampling adds var = mean on top of the
            # deterministic modulation.
            var = var + mean
        cov = math.sqrt(var) / mean if mean > 0 else float("nan")
        throughput_pps = float(traj["s"].sum() * self.dt / self.duration)
        arrivals = float(traj["A"].sum() * self.dt)
        drops = float((traj["A"] * traj["p"]).sum() * self.dt)
        fast_rtx = float(traj["fr"].sum() * self.dt) * self.n
        timeouts = float(traj["to"].sum() * self.dt) * self.n
        # Accepted-traffic-weighted mean RTT (application-to-ACK latency
        # has no retransmission tail in the fluid limit).
        accepted = traj["A"] * (1.0 - traj["p"])
        weight = accepted.sum()
        rtt_series = self.rtt_prop + traj["q"] / self.C
        mean_latency = (
            float((rtt_series * accepted).sum() / weight) if weight > 0 else 0.0
        )
        return dict(
            cov=cov,
            bin_counts=counts,
            throughput_pps=throughput_pps,
            throughput_packets=int(round(throughput_pps * self.duration)),
            mean_queue=float(traj["q"].mean()),
            loss_percent=100.0 * drops / arrivals if arrivals else 0.0,
            gateway_arrivals=int(round(arrivals)),
            gateway_drops=int(round(drops)),
            utilization=throughput_pps / self.C if self.C else 0.0,
            timeouts=int(round(timeouts)),
            fast_retransmits=int(round(fast_rtx)),
            mean_latency=mean_latency,
            max_latency=float(rtt_series.max()) if rtt_series.size else 0.0,
            steps=int(traj["t"].size),
        )


def run_fluid_scenario(config) -> "ScenarioResult":  # noqa: F821
    """Solve the mean-field system for one config and package the
    result as a :class:`~repro.experiments.scenario.ScenarioResult`
    with the same fields the packet engine fills, so sweeps, caching,
    figures, and the CLI work unchanged.

    Fluid-specific conventions: ``per_flow`` is empty (the limit has no
    individual flows, so fairness is NaN), ``dupacks``/``red_marks`` are
    0, ``events_executed`` counts RK4 steps, and ``cov`` includes the
    finite-rate Poisson sampling floor so it is directly comparable to
    the packet engine's binned-count c.o.v.
    """
    from repro.experiments.scenario import ScenarioResult
    from repro.obs.engineprof import peak_rss_kb

    config.validate()
    solver = FluidSolver(
        protocol=config.protocol,
        queue=config.queue,
        n_flows=config.n_clients,
        duration=config.duration,
        warmup=config.warmup,
        rtt_prop=config.rtt_prop,
        capacity_pps=config.bottleneck_capacity_pps,
        buffer_packets=config.buffer_capacity,
        per_flow_rate=config.per_client_rate,
        max_window=config.advertised_window,
        vegas_alpha=config.vegas_alpha,
        vegas_beta=config.vegas_beta,
        red_min_th=config.red_min_th,
        red_max_th=config.red_max_th,
        red_max_p=config.red_max_p,
        red_weight=config.red_weight,
        min_rto=config.min_rto,
    )
    start = time.perf_counter()
    traj = solver.run()
    summary = solver.summarize(traj, config.effective_bin_width)
    wall_time = time.perf_counter() - start
    if config.traffic == "poisson":
        analytic = poisson_aggregate_cov(
            config.n_clients, config.per_client_rate, config.effective_bin_width
        )
    else:
        analytic = float("nan")
    return ScenarioResult(
        config=config,
        cov=summary["cov"],
        # The fluid offered process is the exact Poisson superposition.
        offered_cov=analytic,
        analytic_cov=analytic,
        throughput_packets=summary["throughput_packets"],
        throughput_pps=summary["throughput_pps"],
        loss_percent=summary["loss_percent"],
        gateway_arrivals=summary["gateway_arrivals"],
        gateway_drops=summary["gateway_drops"],
        timeouts=summary["timeouts"],
        fast_retransmits=summary["fast_retransmits"],
        dupacks=0,
        mean_latency=summary["mean_latency"],
        max_latency=summary["max_latency"],
        bin_counts=summary["bin_counts"],
        offered_bin_counts=np.zeros(0),
        per_flow=[],
        cwnd_traces={},
        mean_queue_length=summary["mean_queue"],
        red_marks=0,
        utilization=summary["utilization"],
        events_executed=summary["steps"],
        wall_time=wall_time,
        peak_rss_kb=peak_rss_kb(),
    )
