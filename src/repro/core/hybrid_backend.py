"""Hybrid fluid/packet backend: packet-exact foreground flows riding a
mean-field background aggregate.

The packet engine gives per-flow fidelity but tops out around N=10^4;
the PR 6 fluid backend reaches N=10^6 by giving up individual flows
entirely.  This module keeps both: the large background aggregate
evolves as the :class:`~repro.core.fluid_backend.FluidSolver` mean-field
system while K foreground flows stay packet-exact in the discrete-event
engine, the two coupled through the shared gateway state (the
test-particle construction the Baccelli--McDonald--Reynier mean-field
literature justifies: a tagged flow against the deterministic limit
trajectory).

Coupling, in both directions (DESIGN.md section 16):

* **Fluid -> packets.**  A foreground packet arriving at the gateway at
  time ``t`` is dropped with the fluid loss probability ``p(t)`` (a
  dedicated ``"hybrid/drop"`` RNG stream keeps this reproducible and
  independent of traffic randomness); if admitted it departs the
  gateway after waiting out the fluid backlog: service starts at
  ``max(t + q(t)/C, previous start)`` so departures stay FIFO, then one
  transmission time and the propagation delay follow as usual.  Both
  ``q(t)`` and ``p(t)`` are piecewise-linear interpolations of the RK4
  step endpoints (:class:`FluidTrajectory`).
* **Packets -> fluid.**  The gateway counts foreground packets offered
  per coupling interval; at each tick the measured rate becomes the
  solver's :attr:`~repro.core.fluid_backend.FluidSolver.extra_arrival`
  term for the next interval, so the background reacts to foreground
  load with a one-interval lag.

Lockstep execution needs no co-routines: the coupler is an ordinary
simulator event that advances the fluid system ``k`` RK4 steps every
``k * dt`` seconds of simulated time (``k`` from
``hybrid_coupling_dt``, default one step).  Because the tick at ``t``
integrates ``[t, t + k dt)`` *before* any packet in that window is
processed (earlier insertion at equal time), packet queries always hit
an already-computed trajectory segment.

Everything downstream of the gateway is the ordinary packet machinery:
per-flow cwnd/RTT/drop traces, obs probes, and burst forensics all see
the K foreground flows exactly as they would in a pure packet run --
which is the point.  Validity envelope and tolerance bands versus the
pure packet engine are documented in DESIGN.md section 16 and enforced
by ``tests/test_hybrid_differential.py``.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

import numpy as np

from repro.core.fluid_backend import FluidSolver
from repro.experiments.scenario import Scenario, ScenarioResult
from repro.net.link import Interface
from repro.net.packet import Packet
from repro.net.queues import PacketQueue
from repro.sim.engine import Simulator

__all__ = [
    "FluidTrajectory",
    "HybridCoupler",
    "HybridGatewayQueue",
    "FluidCoupledInterface",
    "HybridScenario",
    "run_hybrid_scenario",
]


class FluidTrajectory:
    """Piecewise-linear view of the fluid queue/loss trajectory.

    Knot ``i`` sits at time ``i * dt``; knot 0 is the cold start
    ``(q, p) = (0, 0)`` and knot ``i + 1`` is appended after RK4 step
    ``i`` completes.  Queries interpolate linearly between the two
    straddling knots (O(1): the knot index is ``t / dt``) and clamp at
    the filled end, so a query can never read ahead of the integration.
    By construction every interpolated value lies within the bounds of
    its segment's endpoints -- the property
    ``tests/test_hybrid_properties.py`` pins.
    """

    def __init__(self, dt: float, steps: int) -> None:
        self.dt = dt
        self.q = np.zeros(steps + 1)
        self.p = np.zeros(steps + 1)
        self.filled = 0  # index of the last valid knot

    def append(self, q: float, p: float) -> None:
        """Record the endpoint of the next completed RK4 step."""
        self.filled += 1
        self.q[self.filled] = q
        self.p[self.filled] = p

    def _interp(self, arr: np.ndarray, t: float) -> float:
        pos = t / self.dt
        if pos <= 0.0:
            return float(arr[0])
        if pos >= self.filled:
            return float(arr[self.filled])
        lo = int(pos)
        frac = pos - lo
        return float(arr[lo] + (arr[lo + 1] - arr[lo]) * frac)

    def queue_at(self, t: float) -> float:
        """Fluid queue level (packets) at simulated time ``t``."""
        return max(self._interp(self.q, t), 0.0)

    def drop_prob_at(self, t: float) -> float:
        """Fluid loss/marking probability at simulated time ``t``."""
        return min(max(self._interp(self.p, t), 0.0), 1.0)


class HybridCoupler:
    """Advances the fluid solver in lockstep with the event engine.

    One simulator event per coupling interval: integrate ``k`` RK4
    steps, publish their endpoints to the :class:`FluidTrajectory`, and
    turn the foreground packets counted since the previous tick into
    the solver's ``extra_arrival`` feedback rate.
    """

    def __init__(self, solver: FluidSolver, coupling_dt: float = 0.0) -> None:
        solver.begin()
        self.solver = solver
        # Coupling interval quantized to whole RK4 steps (>= 1).
        self.k = max(int(round(coupling_dt / solver.dt)), 1) if coupling_dt > 0 else 1
        self.interval = self.k * solver.dt
        self.trajectory = FluidTrajectory(solver.dt, solver.steps)
        self.foreground_arrivals = 0
        self.ticks = 0

    # ------------------------------------------------------------------
    # Packet-side queries
    # ------------------------------------------------------------------
    def note_foreground_arrival(self, now: float) -> None:
        """Count one foreground packet offered to the gateway."""
        self.foreground_arrivals += 1

    def queue_delay(self, now: float) -> float:
        """Seconds a packet arriving now waits behind the fluid backlog."""
        return self.trajectory.queue_at(now) / self.solver.C

    def queue_level(self, now: float) -> int:
        """Fluid backlog in whole packets (shared-occupancy reporting)."""
        return int(round(self.trajectory.queue_at(now)))

    def drop_probability(self, now: float) -> float:
        """Loss probability a foreground packet faces right now."""
        return self.trajectory.drop_prob_at(now)

    # ------------------------------------------------------------------
    # Fluid-side stepping
    # ------------------------------------------------------------------
    def attach(self, sim: Simulator) -> None:
        """Schedule the first tick; must run before any packet arrives."""
        self._sim = sim
        sim.schedule(0.0, self._tick)

    def _tick(self) -> None:
        solver = self.solver
        # Feedback with a one-interval lag: the rate measured over the
        # interval that just ended drives the one starting now.
        solver.extra_arrival = self.foreground_arrivals / self.interval
        self.foreground_arrivals = 0
        target = min(solver.step_index + self.k, solver.steps)
        while solver.step_index < target:
            i = solver.step_index
            solver.step_once()
            self.trajectory.append(
                float(solver._q_arr[i]), float(solver._p_arr[i])
            )
        self.ticks += 1
        if solver.step_index < solver.steps:
            self._sim.schedule(self.interval, self._tick)


class HybridGatewayQueue(PacketQueue):
    """The gateway discipline foreground packets see.

    Admission is the fluid loss probability ``p(t)`` (Bernoulli on the
    dedicated drop stream) -- droptail overflow and RED early marking
    are both already folded into ``p`` by the solver, so one queue class
    covers both disciplines.  ``__len__`` reports the *shared*
    occupancy (foreground packets queued plus the fluid backlog) so the
    forensics burst detector and queue probes watch the gateway the
    foreground actually experiences.
    """

    def __init__(
        self,
        capacity: int,
        coupler: HybridCoupler,
        rng: random.Random,
        name: str = "q:gateway->server",
    ) -> None:
        super().__init__(capacity, name=name)
        self.coupler = coupler
        self.rng = rng
        self._fluid_cause = (
            "fluid_red_early" if coupler.solver.queue == "red" else "fluid_overflow"
        )

    def __len__(self) -> int:
        return len(self._packets) + self.coupler.queue_level(self._now)

    def _admit(self, packet: Packet, now: float) -> bool:
        self.coupler.note_foreground_arrival(now)
        p = self.coupler.drop_probability(now)
        if p > 0.0 and self.rng.random() < p:
            self.last_drop_cause = self._fluid_cause
            return False
        # Backstop: the foreground's own slots cannot exceed the buffer
        # (the fluid p already models contention for the shared space).
        return len(self._packets) < self.capacity


class FluidCoupledInterface(Interface):
    """Gateway output port whose service rides the fluid backlog.

    An admitted packet starts service after the fluid queue ahead of it
    drains (``q(t)/C`` seconds), no earlier than the previous packet's
    service start plus its transmission time -- service starts are
    non-decreasing, so departures stay FIFO and ``dequeue`` always
    yields the departing packet.
    """

    def __init__(self, *args, coupler: HybridCoupler, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.coupler = coupler
        self._next_free = 0.0

    def send(self, packet: Packet) -> None:
        now = self._sim.now
        for hook in self._send_hooks:
            hook(packet, now)
        if not self.queue.enqueue(packet, now):
            return
        start = max(now + self.coupler.queue_delay(now), self._next_free)
        finish = start + self.transmission_time(packet)
        self._next_free = finish
        self._sim.schedule(finish - now, self._depart)

    def _depart(self) -> None:
        now = self._sim.now
        packet = self.queue.dequeue(now)
        if packet is None:  # pragma: no cover - FIFO invariant
            return
        self.packets_sent += 1
        self.bytes_sent += packet.size
        self._sim.schedule(self.delay, self.dst_node.receive, packet)


class HybridScenario(Scenario):
    """A packet scenario for the K foreground flows, co-simulated with
    the fluid background.

    Construction: the fluid solver and coupler are built first (from
    the *full* config: the background aggregate is
    ``hybrid_background_count`` flows), then the base class wires an
    ordinary K-client dumbbell -- the queue factory and the
    ``_finalize_network`` hook swap in the coupled gateway before any
    monitor attaches or any flow starts.  Foreground clients reuse the
    packet backend's per-index RNG stream names, so flow ``i`` offers
    the same traffic here as in a pure packet run with the same seed --
    the flow-by-flow differential in tests/test_hybrid_differential.py
    depends on this.
    """

    def __init__(self, config) -> None:
        config.validate()
        if config.backend != "hybrid":
            raise ValueError("HybridScenario requires backend='hybrid'")
        self.hybrid_config = config
        self.solver = FluidSolver(
            protocol=config.protocol,
            queue=config.queue,
            n_flows=config.hybrid_background_count,
            duration=config.duration,
            warmup=config.warmup,
            rtt_prop=config.rtt_prop,
            capacity_pps=config.bottleneck_capacity_pps,
            buffer_packets=config.buffer_capacity,
            per_flow_rate=config.per_client_rate,
            max_window=config.advertised_window,
            vegas_alpha=config.vegas_alpha,
            vegas_beta=config.vegas_beta,
            red_min_th=config.red_min_th,
            red_max_th=config.red_max_th,
            red_max_p=config.red_max_p,
            red_weight=config.red_weight,
            min_rto=config.min_rto,
        )
        self.coupler = HybridCoupler(self.solver, config.hybrid_coupling_dt)
        foreground = dataclasses.replace(
            config, n_clients=config.hybrid_foreground_flows
        )
        super().__init__(foreground)

    # ------------------------------------------------------------------
    def _make_bottleneck_queue(self, params, rng) -> PacketQueue:
        return HybridGatewayQueue(
            params.buffer_capacity,
            self.coupler,
            rng=self.streams.stream("hybrid/drop"),
        )

    def _finalize_network(self) -> None:
        network = self.network
        old = network.bottleneck_interface
        coupled = FluidCoupledInterface(
            self.sim,
            old.name,
            old.dst_node,
            old.rate_bps,
            old.delay,
            old.queue,
            coupler=self.coupler,
        )
        network.gateway.attach_interface(network.SERVER, coupled)
        # First tick at t=0, inserted before any source's first packet
        # (equal-time events fire in insertion order on both schedulers).
        self.coupler.attach(self.sim)

    # ------------------------------------------------------------------
    def _collect(self, wall_time: float = float("nan")) -> ScenarioResult:
        result = super()._collect(wall_time)
        traj = self.solver.trajectory()
        duration = self.hybrid_config.duration
        # The gateway queue and utilization are properties of the shared
        # bottleneck: the fluid trajectory carries them (its arrival
        # term already includes the foreground feedback).  Everything
        # else -- cov, throughput, drops, latency, per_flow, forensics,
        # obs -- stays foreground-scoped from the base collection.
        served = float(traj["s"].sum() * self.solver.dt / duration)
        return dataclasses.replace(
            result,
            config=self.hybrid_config,
            mean_queue_length=float(traj["q"].mean()),
            utilization=served / self.solver.C if self.solver.C else 0.0,
        )


def run_hybrid_scenario(config) -> ScenarioResult:
    """Run one hybrid scenario (the :func:`run_scenario` dispatch target).

    Returns the standard :class:`ScenarioResult`; foreground-scoped
    fields (``cov``, throughput, loss, ``per_flow``, recovery counters,
    latency, forensics) describe the K packet-exact flows, while
    ``mean_queue_length``/``utilization`` come from the shared fluid
    gateway state and ``config`` is the full-N hybrid config.
    """
    return HybridScenario(config).run()
