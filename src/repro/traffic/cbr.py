"""Constant-bit-rate traffic: deterministic inter-packet gaps.

The zero-variance workload: useful in tests (exact packet counts) and
as an ablation input (c.o.v. of the offered aggregate is driven only by
phase, not by source randomness).
"""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.traffic.base import TrafficSource
from repro.transport.base import Agent


class CbrSource(TrafficSource):
    """Fixed inter-arrival packet generator."""

    def __init__(
        self,
        sim: Simulator,
        agent: Agent,
        gap: float = 0.1,
        name: str = "cbr",
    ) -> None:
        if gap <= 0:
            raise ValueError("inter-generation gap must be positive")
        super().__init__(sim, agent, name)
        self.gap = gap

    @property
    def rate(self) -> float:
        """Generation rate in packets/second."""
        return 1.0 / self.gap

    def _next_gap(self) -> float:
        return self.gap
