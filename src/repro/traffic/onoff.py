"""Heavy-tailed (Pareto) on/off traffic.

The self-similarity literature the paper responds to (Leland et al.,
Park/Kim/Crovella, Willinger et al.) attributes aggregate burstiness to
heavy-tailed activity periods: superposing many on/off sources whose
ON (or OFF) durations are Pareto with shape 1 < a < 2 yields asymptotic
self-similarity.  This source provides that workload for the ablation
contrasting "burstiness from heavy tails" with "burstiness from TCP".

During an ON period the source emits packets at a fixed peak rate; OFF
periods are silent.  ON and OFF durations are drawn from Pareto
distributions parameterized by (shape, mean).
"""

from __future__ import annotations

import random

from repro.sim.engine import Simulator
from repro.traffic.base import TrafficSource
from repro.transport.base import Agent


def pareto_scale_for_mean(mean: float, shape: float) -> float:
    """Scale (minimum) of a Pareto distribution with the given mean.

    For Pareto(scale ``x_m``, shape ``a > 1``), the mean is
    ``a * x_m / (a - 1)``; solve for ``x_m``.
    """
    if shape <= 1:
        raise ValueError("a Pareto mean only exists for shape > 1")
    if mean <= 0:
        raise ValueError("mean must be positive")
    return mean * (shape - 1.0) / shape


def pareto_variate(rng: random.Random, scale: float, shape: float) -> float:
    """Draw Pareto(scale, shape) via inverse transform."""
    u = rng.random()
    while u <= 0.0:  # guard against an exact zero from the generator
        u = rng.random()
    return scale * u ** (-1.0 / shape)


class ParetoOnOffSource(TrafficSource):
    """Pareto on/off packet generator.

    Args:
        peak_gap: inter-packet gap during ON periods (peak rate = 1/gap).
        mean_on / mean_off: mean durations of ON and OFF periods.
        shape_on / shape_off: Pareto shape parameters; values in (1, 2)
            give infinite variance and long-range-dependent aggregates.
    """

    def __init__(
        self,
        sim: Simulator,
        agent: Agent,
        rng: random.Random,
        peak_gap: float = 0.01,
        mean_on: float = 0.5,
        mean_off: float = 4.5,
        shape_on: float = 1.5,
        shape_off: float = 1.5,
        name: str = "pareto-onoff",
    ) -> None:
        if peak_gap <= 0:
            raise ValueError("peak gap must be positive")
        super().__init__(sim, agent, name)
        self._rng = rng
        self.peak_gap = peak_gap
        self.shape_on = shape_on
        self.shape_off = shape_off
        self.scale_on = pareto_scale_for_mean(mean_on, shape_on)
        self.scale_off = pareto_scale_for_mean(mean_off, shape_off)
        self._on_until = 0.0
        self.on_periods = 0

    @property
    def mean_rate(self) -> float:
        """Long-run average rate in packets/second."""
        mean_on = self.scale_on * self.shape_on / (self.shape_on - 1.0)
        mean_off = self.scale_off * self.shape_off / (self.shape_off - 1.0)
        duty = mean_on / (mean_on + mean_off)
        return duty / self.peak_gap

    def _next_gap(self) -> float:
        # Still inside the current ON period: emit at peak rate.
        if self.sim.now + self.peak_gap <= self._on_until:
            return self.peak_gap
        # Otherwise sleep through an OFF period and start a new ON period.
        off = pareto_variate(self._rng, self.scale_off, self.shape_off)
        on = pareto_variate(self._rng, self.scale_on, self.shape_on)
        self.on_periods += 1
        self._on_until = self.sim.now + off + on
        return off
