"""Application-level traffic generators.

The paper's clients generate Poisson traffic: single packets handed to
the transport stack with exponentially distributed inter-packet times
(mean ``1/lambda``), independent of the congestion window.  This package
also provides constant-bit-rate and heavy-tailed (Pareto on/off) sources
used by the ablation studies, and a recorder that captures the *offered*
(pre-TCP) traffic so its statistics can be compared against what TCP
actually transmits.
"""

from repro.traffic.base import TrafficSource
from repro.traffic.cbr import CbrSource
from repro.traffic.onoff import ParetoOnOffSource, pareto_scale_for_mean
from repro.traffic.poisson import PoissonSource
from repro.traffic.recorder import OfferedTrafficRecorder

__all__ = [
    "CbrSource",
    "OfferedTrafficRecorder",
    "ParetoOnOffSource",
    "PoissonSource",
    "TrafficSource",
    "pareto_scale_for_mean",
]
