"""Traffic source base class."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.engine import Simulator
from repro.transport.base import Agent

GenerateHook = Callable[[float, int], None]


class TrafficSource:
    """Base class: generates application packets into a transport agent.

    Subclasses implement :meth:`_next_gap`, the time until the next
    packet generation; the base class runs the generation loop between
    :meth:`start` and the optional stop time.
    """

    def __init__(self, sim: Simulator, agent: Agent, name: str = "source") -> None:
        self.sim = sim
        self.agent = agent
        self.name = name
        self.generated = 0
        self._hooks: List[GenerateHook] = []
        self._running = False
        self._stop_at: Optional[float] = None
        # Generation token: every start() begins a new epoch, so a tick
        # scheduled by an earlier (stopped) generation loop can never
        # revive and run a second loop alongside the new one.
        self._epoch = 0

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def start(self, at: float = 0.0, stop_at: Optional[float] = None) -> None:
        """Begin generating at absolute time ``at`` (until ``stop_at``)."""
        if self._running:
            raise RuntimeError(f"source {self.name!r} already started")
        self._running = True
        self._stop_at = stop_at
        self._epoch += 1
        self.sim.schedule_at(
            max(at, self.sim.now) + self._next_gap(), self._tick, self._epoch
        )

    def stop(self) -> None:
        """Stop generating (takes effect at the next scheduled tick)."""
        self._running = False

    def add_hook(self, hook: GenerateHook) -> None:
        """Register ``hook(time, n_packets)`` called on each generation."""
        self._hooks.append(hook)

    # ------------------------------------------------------------------
    # Generation loop
    # ------------------------------------------------------------------
    def _tick(self, epoch: int) -> None:
        if epoch != self._epoch or not self._running:
            return
        now = self.sim.now
        if self._stop_at is not None and now > self._stop_at:
            self._running = False
            return
        self._emit(1)
        self.sim.schedule(self._next_gap(), self._tick, epoch)

    def _emit(self, n_packets: int) -> None:
        self.generated += n_packets
        for hook in self._hooks:
            hook(self.sim.now, n_packets)
        self.agent.app_arrival(n_packets)

    def _next_gap(self) -> float:
        """Time until the next generation event."""
        raise NotImplementedError
