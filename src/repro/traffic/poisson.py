"""Poisson traffic: the paper's client workload.

Single packets are submitted to the transport stack with exponentially
distributed inter-packet times of mean ``1/lambda`` (Table 1: mean
inter-generation time 0.1 s, i.e. 10 packets/s per client).
"""

from __future__ import annotations

import random

from repro.sim.engine import Simulator
from repro.traffic.base import TrafficSource
from repro.transport.base import Agent


class PoissonSource(TrafficSource):
    """Exponential inter-arrival packet generator."""

    def __init__(
        self,
        sim: Simulator,
        agent: Agent,
        rng: random.Random,
        mean_gap: float = 0.1,
        name: str = "poisson",
    ) -> None:
        if mean_gap <= 0:
            raise ValueError("mean inter-generation time must be positive")
        super().__init__(sim, agent, name)
        self._rng = rng
        self.mean_gap = mean_gap

    @property
    def rate(self) -> float:
        """Mean generation rate in packets/second."""
        return 1.0 / self.mean_gap

    def _next_gap(self) -> float:
        return self._rng.expovariate(1.0 / self.mean_gap)
