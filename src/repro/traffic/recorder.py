"""Recording the *offered* (application-level) traffic.

The paper's method is a comparison: the c.o.v. of the aggregate traffic
the applications generate versus the c.o.v. of the aggregate after TCP
has modulated it.  This recorder captures the generation process across
any number of sources so both sides of the comparison come from the
same run.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.traffic.base import TrafficSource


class OfferedTrafficRecorder:
    """Collects packet generation times across sources."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.start_time = start_time
        self.times: List[float] = []
        self.total = 0

    def attach(self, source: TrafficSource) -> "OfferedTrafficRecorder":
        """Hook this recorder onto a source; returns self."""
        source.add_hook(self.on_generate)
        return self

    def on_generate(self, time: float, n_packets: int) -> None:
        """Generation hook (``TrafficSource.add_hook`` signature)."""
        if time < self.start_time:
            return
        self.total += n_packets
        self.times.extend([time] * n_packets)

    def on_generate_many(self, times: List[float]) -> None:
        """Record one packet per time; same filter as :meth:`on_generate`.

        The batch engine replays a backlogged flow's deferred arrivals
        in one call instead of one hook invocation per packet.
        """
        start = self.start_time
        kept = [t for t in times if t >= start]
        self.total += len(kept)
        self.times.extend(kept)

    def bin_counts(self, bin_width: float, until: Optional[float] = None) -> np.ndarray:
        """Per-bin generation counts over ``[start_time, until)``."""
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        times = np.asarray(self.times)
        if until is None:
            until = float(times.max()) + bin_width if len(times) else self.start_time
        n_bins = int((until - self.start_time) / bin_width)
        if n_bins <= 0:
            return np.zeros(0)
        in_window = times[(times >= self.start_time) & (times < self.start_time + n_bins * bin_width)]
        indices = ((in_window - self.start_time) / bin_width).astype(int)
        counts = np.bincount(indices, minlength=n_bins).astype(float)
        return counts[:n_bins]
