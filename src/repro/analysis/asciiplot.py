"""Terminal rendering of figures.

The benchmark harness regenerates each of the paper's figures as data
series; these helpers draw them as ASCII charts so the *shape* of each
result (who wins, where the knee is) is visible straight from the
terminal, with the exact numbers alongside.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

_MARKERS = "o*x+#@%&"


def ascii_series_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Scatter/line plot of named (x, y) series on a character canvas.

    Each series gets its own marker; a legend maps markers to names.
    """
    if not series:
        return "(no data)"
    all_x = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    finite = np.isfinite(all_y)
    if not finite.any():
        return "(no finite data)"
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo = float(all_y[finite].min()) if y_min is None else y_min
    y_hi = float(all_y[finite].max()) if y_max is None else y_max
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for index, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in zip(xs, ys):
            if not (np.isfinite(x) and np.isfinite(y)):
                continue
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            row = height - 1 - min(max(row, 0), height - 1)
            col = min(max(col, 0), width - 1)
            canvas[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title.center(width + 10))
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    label_width = max(len(top_label), len(bottom_label), len(ylabel)) + 1
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif row_index == height // 2 and ylabel:
            prefix = ylabel[: label_width - 1].rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * label_width + "+" + "-" * width)
    x_axis = f"{x_lo:.4g}".ljust(width // 2) + f"{x_hi:.4g}".rjust(width - width // 2)
    lines.append(" " * (label_width + 1) + x_axis)
    if xlabel:
        lines.append(" " * (label_width + 1) + xlabel.center(width))
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)


def ascii_step_plot(
    log: Sequence[Tuple[float, float]],
    t_start: float,
    t_end: float,
    width: int = 72,
    height: int = 16,
    title: str = "",
) -> str:
    """Render a step series (e.g. a cwnd trace) over a time window."""
    from repro.analysis.timeseries import sample_step_series, uniform_grid

    times = uniform_grid(t_start, t_end, (t_end - t_start) / max(width, 1))
    values = sample_step_series(log, times)
    return ascii_series_plot(
        {"": (times, values)},
        width=width,
        height=height,
        title=title,
        xlabel="time (s)",
    )
