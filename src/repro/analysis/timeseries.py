"""Time-series utilities for event-sampled traces.

Congestion-window logs are *step series*: (time, value) pairs recorded
on change, with the value holding until the next record.  These helpers
resample such series onto uniform grids (how Figures 5-12 are drawn)
and compute time-weighted means.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

import numpy as np


def sample_step_series(
    log: Sequence[Tuple[float, float]],
    times: Sequence[float],
    initial: float = 0.0,
) -> np.ndarray:
    """Value of a step series at each query time.

    Args:
        log: (time, value) change points, sorted by time.
        times: query instants.
        initial: value before the first change point.
    """
    if not log:
        return np.full(len(times), initial, dtype=float)
    change_times = [t for t, _ in log]
    values = [v for _, v in log]
    out = np.empty(len(times), dtype=float)
    for i, t in enumerate(times):
        idx = bisect.bisect_right(change_times, t) - 1
        out[i] = values[idx] if idx >= 0 else initial
    return out


def uniform_grid(t_start: float, t_end: float, step: float) -> np.ndarray:
    """Uniform sample instants in [t_start, t_end) with spacing ``step``."""
    if step <= 0:
        raise ValueError("step must be positive")
    if t_end <= t_start:
        return np.zeros(0)
    n = int((t_end - t_start) / step)
    return t_start + step * np.arange(n)


def step_mean(
    log: Sequence[Tuple[float, float]],
    t_start: float,
    t_end: float,
    initial: float = 0.0,
) -> float:
    """Time-weighted mean of a step series over [t_start, t_end]."""
    if t_end <= t_start:
        raise ValueError("t_end must exceed t_start")
    points: List[Tuple[float, float]] = [(t, v) for t, v in log if t <= t_end]
    value = initial
    last_time = t_start
    integral = 0.0
    for time, new_value in points:
        if time <= t_start:
            value = new_value
            continue
        integral += value * (time - last_time)
        value = new_value
        last_time = time
    integral += value * (t_end - last_time)
    return integral / (t_end - t_start)
