"""Plain-text table rendering for benchmark/experiment output."""

from __future__ import annotations

from typing import Any, List, Sequence


def _format_cell(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    precision: int = 4,
    title: str = "",
) -> str:
    """Render rows as an aligned plain-text table.

    Numbers are right-aligned and formatted to ``precision`` decimals;
    everything else is left-aligned.
    """
    formatted: List[List[str]] = [
        [_format_cell(cell, precision) for cell in row] for row in rows
    ]
    columns = len(headers)
    for row in formatted:
        if len(row) != columns:
            raise ValueError("row width does not match header width")
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in formatted)) if formatted else len(headers[c])
        for c in range(columns)
    ]
    numeric = [
        bool(rows) and all(isinstance(row[c], (int, float)) for row in rows)
        for c in range(columns)
    ]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            parts.append(cell.rjust(widths[c]) if numeric[c] else cell.ljust(widths[c]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in formatted)
    return "\n".join(lines)
