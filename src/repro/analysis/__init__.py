"""Generic analysis and reporting utilities.

Statistics helpers, time-series resampling (for congestion-window
traces), ASCII rendering of figures and tables for terminal output, and
CSV/JSON result persistence.
"""

from repro.analysis.asciiplot import ascii_series_plot, ascii_step_plot
from repro.analysis.stats import Summary, confidence_interval, summarize
from repro.analysis.tables import format_table
from repro.analysis.timeseries import sample_step_series, step_mean
from repro.analysis.io import results_to_csv, results_to_json

__all__ = [
    "Summary",
    "ascii_series_plot",
    "ascii_step_plot",
    "confidence_interval",
    "format_table",
    "results_to_csv",
    "results_to_json",
    "sample_step_series",
    "step_mean",
    "summarize",
]
