"""Summary statistics and confidence intervals."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray]

# Two-sided critical values of the standard normal for common levels.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    @property
    def cov(self) -> float:
        """Coefficient of variation (std/mean; 0 for a zero-mean sample)."""
        return self.std / self.mean if self.mean else 0.0


def summarize(values: ArrayLike) -> Summary:
    """Compute a :class:`Summary` of a non-empty sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )


def confidence_interval(
    values: ArrayLike, level: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation confidence interval for the sample mean."""
    if level not in _Z_VALUES:
        raise ValueError(f"supported levels: {sorted(_Z_VALUES)}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute an interval of an empty sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return (mean, mean)
    half = _Z_VALUES[level] * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return (mean - half, mean + half)


def jains_fairness_index(values: ArrayLike) -> float:
    """Jain's fairness index of per-flow allocations, in (0, 1].

    1.0 means a perfectly equal share -- the property Figures 10-12 show
    Vegas achieving and Reno failing.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute fairness of an empty sample")
    denominator = arr.size * float((arr**2).sum())
    if denominator == 0:
        return 1.0
    return float(arr.sum()) ** 2 / denominator
