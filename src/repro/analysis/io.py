"""Result persistence: CSV and JSON export of experiment outputs."""

from __future__ import annotations

import csv
import dataclasses
import json
from typing import Any, Mapping, Sequence


def _plain(value: Any) -> Any:
    """Convert a result value to something JSON-serializable."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _plain(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if hasattr(value, "tolist"):  # numpy scalars and arrays
        return value.tolist()
    return value


def results_to_json(results: Any, path: str, indent: int = 2) -> None:
    """Serialize any dataclass/dict/array structure to a JSON file."""
    with open(path, "w") as handle:
        json.dump(_plain(results), handle, indent=indent)
        handle.write("\n")


def results_to_csv(
    rows: Sequence[Mapping[str, Any]],
    path: str,
    field_names: Sequence[str] = None,
) -> int:
    """Write a sequence of flat mappings to CSV; returns rows written."""
    rows = list(rows)
    if field_names is None:
        field_names = []
        seen = set()
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    field_names.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(field_names))
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in field_names})
    return len(rows)
