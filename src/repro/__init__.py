"""repro: reproduction of Tinnakornsrisuphap, Feng & Philp (ICDCS 2000),
"On the Burstiness of the TCP Congestion-Control Mechanism in a
Distributed Computing System".

The package contains a packet-level discrete-event network simulator
(the substrate the paper built on ns), packet-counted implementations of
UDP and TCP Tahoe/Reno/NewReno/Vegas with FIFO and RED gateways, the
paper's traffic-burstiness analysis (per-RTT coefficient of variation),
and an experiment harness that regenerates every table and figure of the
paper's evaluation.

Quickstart::

    from repro import paper_config, run_scenario

    result = run_scenario(paper_config(protocol="reno", n_clients=40,
                                       duration=30.0))
    print(result.cov, result.analytic_cov, result.loss_percent)
"""

from repro.apps import AppMetrics
from repro.core import (
    coefficient_of_variation,
    modulation_report,
    poisson_aggregate_cov,
)
from repro.experiments import (
    ScenarioConfig,
    ScenarioMetrics,
    ScenarioResult,
    paper_config,
    run_scenario,
)

__version__ = "1.1.0"

__all__ = [
    "AppMetrics",
    "ScenarioConfig",
    "ScenarioMetrics",
    "ScenarioResult",
    "__version__",
    "coefficient_of_variation",
    "modulation_report",
    "paper_config",
    "poisson_aggregate_cov",
    "run_scenario",
]
