"""Structured progress telemetry for sweep runs.

:class:`RunLog` appends one JSON object per event to a log file
(JSONL), so a crashed or killed sweep leaves a complete record of what
finished, what failed, and what was still running.  :class:`Progress`
keeps the live completed/failed/cached/retried counters and renders the
one-line status the CLI prints.

Events (all carry ``t`` = wall-clock seconds and ``event``):

* ``sweep_start``  -- ``total`` cells, worker count, cache directory.
* ``task_start``   -- ``index``, ``digest``, ``label``, ``attempt``.
* ``cache_hit``    -- ``index``, ``digest``.
* ``task_done``    -- ``index``, ``digest``, ``elapsed``, plus engine
  telemetry when available: ``events_executed``, ``sim_wall_ratio``,
  ``peak_rss_kb``.
* ``task_retry``   -- ``index``, ``digest``, ``attempt``, ``error``, ``delay``.
* ``task_failed``  -- ``index``, ``digest``, ``error`` (retries exhausted).
* ``sweep_end``    -- final counters.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TextIO


@dataclass
class Progress:
    """Live counters over one sweep."""

    total: int = 0
    completed: int = 0
    failed: int = 0
    cached: int = 0
    retried: int = 0

    @property
    def finished(self) -> int:
        """Cells with a final outcome (success, cache hit, or failure)."""
        return self.completed + self.failed + self.cached

    @property
    def done(self) -> bool:
        return self.finished >= self.total

    def render(self) -> str:
        """One status line, e.g. ``[ 12/40] ok=9 cached=3 failed=0``."""
        width = len(str(self.total))
        return (
            f"[{self.finished:{width}d}/{self.total}] "
            f"ok={self.completed} cached={self.cached} "
            f"failed={self.failed} retried={self.retried}"
        )


class RunLog:
    """JSONL event sink, optionally echoing progress to a stream.

    Args:
        path: JSONL file to append events to (None = no file).
        echo: stream for live one-line progress updates (e.g.
            ``sys.stderr``; None = silent).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        echo: Optional[TextIO] = None,
    ) -> None:
        self.path = path
        self.echo = echo
        self.progress = Progress()
        self._handle: Optional[TextIO] = None
        if path is not None:
            self._handle = open(path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    def emit(self, event: str, **data: Any) -> None:
        """Append one event record, flushing so kills lose nothing."""
        if self._handle is not None:
            record = {"event": event, "t": time.time()}
            record.update(data)
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        if self.echo is not None and event in (
            "task_done",
            "task_failed",
            "cache_hit",
            "sweep_end",
        ):
            self.echo.write(self.progress.render() + "\n")
            self.echo.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Event helpers: keep counter updates and event emission in one place.
    # ------------------------------------------------------------------
    def sweep_start(self, total: int, **data: Any) -> None:
        self.progress.total = total
        self.emit("sweep_start", total=total, **data)

    def task_start(self, index: int, digest: str, label: str, attempt: int) -> None:
        self.emit(
            "task_start", index=index, digest=digest, label=label, attempt=attempt
        )

    def cache_hit(self, index: int, digest: str) -> None:
        self.progress.cached += 1
        self.emit("cache_hit", index=index, digest=digest)

    def task_done(
        self,
        index: int,
        digest: str,
        elapsed: float,
        events_executed: Optional[int] = None,
        sim_wall_ratio: Optional[float] = None,
        peak_rss_kb: Optional[float] = None,
    ) -> None:
        """Record one completed cell, with optional engine telemetry.

        The extras (events executed, simulated-seconds per wall second,
        peak RSS) come from the flight recorder's ``perf_*`` metrics;
        None (or NaN) values are simply omitted from the record.
        """
        self.progress.completed += 1
        extras: Dict[str, Any] = {}
        if events_executed is not None:
            extras["events_executed"] = events_executed
        if sim_wall_ratio is not None and sim_wall_ratio == sim_wall_ratio:
            extras["sim_wall_ratio"] = round(sim_wall_ratio, 3)
        if peak_rss_kb is not None and peak_rss_kb == peak_rss_kb:
            extras["peak_rss_kb"] = peak_rss_kb
        self.emit("task_done", index=index, digest=digest, elapsed=elapsed, **extras)

    def task_retry(
        self, index: int, digest: str, attempt: int, error: str, delay: float
    ) -> None:
        self.progress.retried += 1
        self.emit(
            "task_retry",
            index=index,
            digest=digest,
            attempt=attempt,
            error=error,
            delay=delay,
        )

    def task_failed(self, index: int, digest: str, error: str) -> None:
        self.progress.failed += 1
        self.emit("task_failed", index=index, digest=digest, error=error)

    def sweep_end(self) -> None:
        progress = self.progress
        self.emit(
            "sweep_end",
            total=progress.total,
            completed=progress.completed,
            cached=progress.cached,
            failed=progress.failed,
            retried=progress.retried,
        )


def read_runlog(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL run log back into event dicts (skipping torn lines)."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue  # a torn final line from a killed run
    return events


def stderr_runlog(path: Optional[str] = None, progress: bool = False) -> RunLog:
    """A RunLog wired to ``sys.stderr`` when live progress is wanted."""
    return RunLog(path=path, echo=sys.stderr if progress else None)
