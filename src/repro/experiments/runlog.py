"""Structured progress telemetry for sweep runs.

:class:`RunLog` appends one JSON object per event to a log file
(JSONL), so a crashed or killed sweep leaves a complete record of what
finished, what failed, and what was still running.  :class:`Progress`
keeps the live completed/failed/cached/retried counters and renders the
one-line status the CLI prints.

Events (all carry ``t`` = wall-clock seconds and ``event``):

* ``sweep_start``    -- ``total`` cells, worker count, cache directory,
  executor ``pool`` and ``schedule``.
* ``task_start``     -- ``index``, ``digest``, ``label``, ``attempt``,
  the scenario ``backend`` (``packet``/``fluid``/``hybrid``), and
  (persistent
  pool) the ``worker`` id it was dispatched to.
* ``task_done``      -- ``index``, ``digest``, ``elapsed``, ``attempt``
  count, scheduling ``lane`` (``cost``/``fifo``), the scenario
  ``backend``, ``worker`` id, plus engine telemetry when available:
  ``events_executed``, ``sim_wall_ratio``, ``peak_rss_kb``.  The
  backend tag lets a later sweep's cost model learn separate
  wall-time alphas for packet vs fluid vs hybrid cells from this log.
* ``task_retry``     -- ``index``, ``digest``, ``attempt``, ``error``,
  ``delay``.
* ``task_failed``    -- ``index``, ``digest``, ``error`` (retries
  exhausted).
* ``worker_spawn``   -- ``worker`` id (persistent pool).
* ``worker_respawn`` -- ``worker`` id of the replacement, ``reason``
  (``crash``/``timeout``), the cell ``index`` it was stuck on, and the
  ``replaced`` worker id.  Only the stuck worker is replaced.
* ``sweep_end``      -- final counters plus ``makespan`` (wall seconds
  start to end), total ``busy`` worker-seconds, and ``utilization``
  (busy / (makespan x workers)).

:func:`summarize_runlog` folds an event stream back into a makespan /
worker-utilization report (the ``repro-tcp sweeplog`` subcommand).
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, TextIO


@dataclass
class Progress:
    """Live counters over one sweep."""

    total: int = 0
    completed: int = 0
    failed: int = 0
    cached: int = 0
    retried: int = 0
    respawned: int = 0

    @property
    def finished(self) -> int:
        """Cells with a final outcome (success, cache hit, or failure)."""
        return self.completed + self.failed + self.cached

    @property
    def done(self) -> bool:
        return self.finished >= self.total

    def render(self) -> str:
        """One status line, e.g. ``[ 12/40] ok=9 cached=3 failed=0``."""
        width = len(str(self.total))
        return (
            f"[{self.finished:{width}d}/{self.total}] "
            f"ok={self.completed} cached={self.cached} "
            f"failed={self.failed} retried={self.retried}"
        )


class RunLog:
    """JSONL event sink, optionally echoing progress to a stream.

    Args:
        path: JSONL file to append events to (None = no file).
        echo: stream for live one-line progress updates (e.g.
            ``sys.stderr``; None = silent).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        echo: Optional[TextIO] = None,
    ) -> None:
        self.path = path
        self.echo = echo
        self.progress = Progress()
        self._handle: Optional[TextIO] = None
        self._sweep_t0: Optional[float] = None
        self._workers: int = 0
        self._busy: float = 0.0
        if path is not None:
            self._handle = open(path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    def emit(self, event: str, **data: Any) -> None:
        """Append one event record, flushing so kills lose nothing."""
        if self._handle is not None:
            record = {"event": event, "t": time.time()}
            record.update(data)
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
        if self.echo is not None and event in (
            "task_done",
            "task_failed",
            "cache_hit",
            "sweep_end",
        ):
            self.echo.write(self.progress.render() + "\n")
            self.echo.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Event helpers: keep counter updates and event emission in one place.
    # ------------------------------------------------------------------
    def sweep_start(self, total: int, **data: Any) -> None:
        self.progress.total = total
        self._sweep_t0 = time.monotonic()
        self._workers = int(data.get("workers") or 0)
        self._busy = 0.0
        self.emit("sweep_start", total=total, **data)

    def task_start(
        self,
        index: int,
        digest: str,
        label: str,
        attempt: int,
        worker: Optional[int] = None,
        backend: str = "",
    ) -> None:
        extras: Dict[str, Any] = {}
        if worker is not None:
            extras["worker"] = worker
        if backend:
            extras["backend"] = backend
        self.emit(
            "task_start",
            index=index,
            digest=digest,
            label=label,
            attempt=attempt,
            **extras,
        )

    def cache_hit(self, index: int, digest: str) -> None:
        self.progress.cached += 1
        self.emit("cache_hit", index=index, digest=digest)

    def task_done(
        self,
        index: int,
        digest: str,
        elapsed: float,
        events_executed: Optional[int] = None,
        sim_wall_ratio: Optional[float] = None,
        peak_rss_kb: Optional[float] = None,
        attempt: int = 0,
        lane: str = "",
        worker: Optional[int] = None,
        backend: str = "",
        forensic_bursts: Optional[int] = None,
        forensic_sync_linked: Optional[int] = None,
        forensic_burst_rate: Optional[float] = None,
        forensic_sync_linked_fraction: Optional[float] = None,
    ) -> None:
        """Record one completed cell, with optional engine telemetry.

        ``attempt`` is how many failed attempts preceded this success
        and ``lane`` names the scheduling policy (``cost``/``fifo``)
        that ordered the cell, so retries and makespan wins stay
        auditable from the JSONL log.  ``backend`` tags the row with
        the solver that produced it (``packet``/``fluid``/``hybrid``)
        so cost models seeded from this log keep the wall-time regimes
        apart.  The
        engine extras (events executed, simulated-seconds per wall
        second, peak RSS) come from the flight recorder's ``perf_*``
        metrics; None (or NaN) values are simply omitted from the
        record.  The ``forensic_*`` extras appear when the cell ran
        burst forensics, so ``sweeplog``/``--follow`` can show
        burstiness columns as cells complete.
        """
        self.progress.completed += 1
        self._busy += max(elapsed, 0.0)
        extras: Dict[str, Any] = {}
        if events_executed is not None:
            extras["events_executed"] = events_executed
        if sim_wall_ratio is not None and sim_wall_ratio == sim_wall_ratio:
            extras["sim_wall_ratio"] = round(sim_wall_ratio, 3)
        if peak_rss_kb is not None and peak_rss_kb == peak_rss_kb:
            extras["peak_rss_kb"] = peak_rss_kb
        if lane:
            extras["lane"] = lane
        if worker is not None:
            extras["worker"] = worker
        if backend:
            extras["backend"] = backend
        if forensic_bursts is not None:
            extras["forensic_bursts"] = forensic_bursts
        if forensic_sync_linked is not None:
            extras["forensic_sync_linked"] = forensic_sync_linked
        if (
            forensic_burst_rate is not None
            and forensic_burst_rate == forensic_burst_rate
        ):
            extras["forensic_burst_rate"] = round(forensic_burst_rate, 6)
        if (
            forensic_sync_linked_fraction is not None
            and forensic_sync_linked_fraction == forensic_sync_linked_fraction
        ):
            extras["forensic_sync_linked_fraction"] = round(
                forensic_sync_linked_fraction, 6
            )
        self.emit(
            "task_done",
            index=index,
            digest=digest,
            elapsed=elapsed,
            attempt=attempt,
            **extras,
        )

    def task_retry(
        self, index: int, digest: str, attempt: int, error: str, delay: float
    ) -> None:
        self.progress.retried += 1
        self.emit(
            "task_retry",
            index=index,
            digest=digest,
            attempt=attempt,
            error=error,
            delay=delay,
        )

    def task_failed(self, index: int, digest: str, error: str) -> None:
        self.progress.failed += 1
        self.emit("task_failed", index=index, digest=digest, error=error)

    def worker_spawn(self, worker: int) -> None:
        self.emit("worker_spawn", worker=worker)

    def worker_respawn(
        self,
        worker: int,
        reason: str,
        index: Optional[int] = None,
        replaced: Optional[int] = None,
    ) -> None:
        """One stuck/dead worker was killed and replaced (pool mode)."""
        self.progress.respawned += 1
        self.emit(
            "worker_respawn",
            worker=worker,
            reason=reason,
            index=index,
            replaced=replaced,
        )

    def sweep_end(self) -> None:
        progress = self.progress
        extras: Dict[str, Any] = {}
        if self._sweep_t0 is not None:
            makespan = time.monotonic() - self._sweep_t0
            extras["makespan"] = round(makespan, 6)
            extras["busy"] = round(self._busy, 6)
            if makespan > 0 and self._workers > 0:
                extras["utilization"] = round(
                    self._busy / (makespan * self._workers), 4
                )
        self.emit(
            "sweep_end",
            total=progress.total,
            completed=progress.completed,
            cached=progress.cached,
            failed=progress.failed,
            retried=progress.retried,
            respawned=progress.respawned,
            **extras,
        )


def read_runlog(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL run log back into event dicts (skipping torn lines)."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue  # a torn final line from a killed run
    return events


def summarize_runlog(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold an event stream into a sweep execution summary.

    Returns totals, makespan, worker utilization, the scheduling lane,
    per-worker busy time / cell counts, a per-backend breakdown
    (cells, busy/mean/max seconds, failures -- failures attribute via
    the backend tag their ``task_start`` carried), respawns, and the
    slowest cells — everything needed to audit a sweep's makespan from
    its JSONL log alone (``repro-tcp sweeplog``).  A killed run (no
    ``sweep_end``) still summarizes from the per-task events; makespan
    then falls back to the span of observed timestamps.
    """
    summary: Dict[str, Any] = {
        "sweeps": 0,
        "total": 0,
        "completed": 0,
        "cached": 0,
        "failed": 0,
        "retried": 0,
        "respawned": 0,
        "workers": 0,
        "pool": "",
        "schedule": "",
        "makespan": 0.0,
        "busy": 0.0,
        "utilization": float("nan"),
        "per_worker": {},
        "lanes": {},
        "backends": {},
        "forensics": {
            "cells": 0,
            "bursts": 0,
            "sync_linked": 0,
            "burst_rate_mean": float("nan"),
            "sync_linked_fraction_mean": float("nan"),
        },
        "slowest": [],
    }
    per_worker: Dict[Any, Dict[str, float]] = {}
    done_cells: List[Dict[str, Any]] = []
    rate_sum: List[float] = []
    linked_sum: List[float] = []
    # index -> backend, learned from task_start/task_done tags so
    # task_failed events (which carry no backend) still attribute.
    cell_backend: Dict[Any, str] = {}
    t_first: Optional[float] = None
    t_last: Optional[float] = None
    saw_end = False

    def backend_stats(backend: str) -> Dict[str, Any]:
        return summary["backends"].setdefault(
            backend, {"cells": 0, "busy": 0.0, "max": 0.0, "failed": 0}
        )

    for event in events:
        kind = event.get("event")
        t = event.get("t")
        if isinstance(t, (int, float)):
            t_first = t if t_first is None else min(t_first, t)
            t_last = t if t_last is None else max(t_last, t)
        if kind in ("task_start", "task_done") and event.get("backend"):
            cell_backend[event.get("index")] = event["backend"]
        if kind == "sweep_start":
            summary["sweeps"] += 1
            summary["total"] += int(event.get("total") or 0)
            summary["workers"] = max(
                summary["workers"], int(event.get("workers") or 0)
            )
            summary["pool"] = event.get("pool", summary["pool"]) or ""
            summary["schedule"] = (
                event.get("schedule", summary["schedule"]) or ""
            )
        elif kind == "task_done":
            elapsed = float(event.get("elapsed") or 0.0)
            summary["completed"] += 1
            summary["busy"] += elapsed
            lane = event.get("lane", "")
            if lane:
                summary["lanes"][lane] = summary["lanes"].get(lane, 0) + 1
            backend = event.get("backend", "")
            if backend:
                stats = backend_stats(backend)
                stats["cells"] += 1
                stats["busy"] += elapsed
                stats["max"] = max(stats["max"], elapsed)
            worker = event.get("worker")
            stats = per_worker.setdefault(
                worker, {"cells": 0, "busy": 0.0}
            )
            stats["cells"] += 1
            stats["busy"] += elapsed
            if "forensic_bursts" in event:
                forensics = summary["forensics"]
                forensics["cells"] += 1
                forensics["bursts"] += int(event.get("forensic_bursts") or 0)
                forensics["sync_linked"] += int(
                    event.get("forensic_sync_linked") or 0
                )
                rate_sum.append(float(event.get("forensic_burst_rate") or 0.0))
                linked = event.get("forensic_sync_linked_fraction")
                if linked is not None:
                    linked_sum.append(float(linked))
            done_cells.append(event)
        elif kind == "cache_hit":
            summary["cached"] += 1
        elif kind == "task_failed":
            summary["failed"] += 1
            backend = cell_backend.get(event.get("index"), "")
            if backend:
                backend_stats(backend)["failed"] += 1
        elif kind == "task_retry":
            summary["retried"] += 1
        elif kind == "worker_respawn":
            summary["respawned"] += 1
        elif kind == "sweep_end":
            saw_end = True
            summary["makespan"] += float(event.get("makespan") or 0.0)
    if not saw_end and t_first is not None and t_last is not None:
        summary["makespan"] = t_last - t_first
    if summary["makespan"] > 0 and summary["workers"] > 0:
        summary["utilization"] = summary["busy"] / (
            summary["makespan"] * summary["workers"]
        )
    for stats in summary["backends"].values():
        stats["mean"] = stats["busy"] / stats["cells"] if stats["cells"] else 0.0
    if rate_sum:
        summary["forensics"]["burst_rate_mean"] = sum(rate_sum) / len(rate_sum)
    if linked_sum:
        summary["forensics"]["sync_linked_fraction_mean"] = sum(
            linked_sum
        ) / len(linked_sum)
    summary["per_worker"] = per_worker
    summary["slowest"] = sorted(
        done_cells, key=lambda e: float(e.get("elapsed") or 0.0), reverse=True
    )[:5]
    return summary


def render_runlog_summary(events: List[Dict[str, Any]]) -> str:
    """A ``repro-tcp profile``-style text report of one run log."""
    from repro.analysis.tables import format_table

    summary = summarize_runlog(events)
    lines: List[str] = []
    pool = summary["pool"] or "?"
    schedule = summary["schedule"] or "?"
    lines.append(
        f"Sweep execution: pool={pool} schedule={schedule} "
        f"workers={summary['workers']} "
        f"({summary['sweeps']} sweep(s), {summary['total']} cells)"
    )
    utilization = summary["utilization"]
    utilization_text = (
        f"{100.0 * utilization:.1f}%"
        if utilization == utilization
        else "n/a"
    )
    lines.append(
        f"makespan {summary['makespan']:.3f}s, busy "
        f"{summary['busy']:.3f} worker-seconds, utilization "
        f"{utilization_text}"
    )
    lines.append(
        f"completed={summary['completed']} cached={summary['cached']} "
        f"failed={summary['failed']} retried={summary['retried']} "
        f"respawned={summary['respawned']}"
    )
    forensics = summary.get("forensics") or {}
    if forensics.get("cells"):
        rate = forensics["burst_rate_mean"]
        linked = forensics["sync_linked_fraction_mean"]
        lines.append(
            f"forensics: {forensics['bursts']} burst(s), "
            f"{forensics['sync_linked']} sync-linked across "
            f"{forensics['cells']} cell(s)"
            + (f", mean burst rate {rate:.3f}/s" if rate == rate else "")
            + (f", mean sync-linked {100.0 * linked:.0f}%" if linked == linked else "")
        )
    if summary["backends"]:
        rows = [
            [
                backend,
                int(stats["cells"]),
                round(stats["busy"], 3),
                round(stats.get("mean", 0.0), 3),
                round(stats.get("max", 0.0), 3),
                int(stats.get("failed", 0)),
            ]
            for backend, stats in sorted(summary["backends"].items())
        ]
        lines.append("")
        lines.append(
            format_table(
                ["backend", "cells", "busy s", "mean s", "max s", "failed"],
                rows,
                title="Per-backend breakdown",
            )
        )
    if summary["per_worker"]:
        rows = [
            [
                "-" if worker is None else worker,
                int(stats["cells"]),
                round(stats["busy"], 3),
            ]
            for worker, stats in sorted(
                summary["per_worker"].items(),
                key=lambda item: (item[0] is None, item[0]),
            )
        ]
        lines.append("")
        lines.append(
            format_table(
                ["worker", "cells", "busy s"], rows, title="Per-worker load"
            )
        )
    if summary["slowest"]:
        # Burstiness columns appear only when some cell carried
        # forensic fields, so non-forensics logs render exactly as
        # before.
        with_forensics = any(
            "forensic_bursts" in event for event in summary["slowest"]
        )
        headers = ["cell", "digest", "backend", "elapsed s", "attempt"]
        if with_forensics:
            headers += ["bursts", "sync-linked"]
        rows = []
        for event in summary["slowest"]:
            row = [
                event.get("index", "-"),
                str(event.get("digest", ""))[:12],
                event.get("backend", "") or "-",
                round(float(event.get("elapsed") or 0.0), 3),
                event.get("attempt", 0),
            ]
            if with_forensics:
                if "forensic_bursts" in event:
                    row += [
                        event.get("forensic_bursts", 0),
                        event.get("forensic_sync_linked", 0),
                    ]
                else:
                    row += ["-", "-"]
            rows.append(row)
        lines.append("")
        lines.append(
            format_table(headers, rows, title="Slowest cells")
        )
    return "\n".join(lines)


class RunLogTail:
    """Incremental JSONL reader for a file another process is writing.

    Keeps a byte offset and a partial-line buffer between polls, so a
    record written in two chunks is parsed once complete rather than
    dropped.  A missing file (the sweep has not started yet) reads as
    no new events.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.offset = 0
        self._partial = ""

    def poll(self) -> List[Dict[str, Any]]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                handle.seek(self.offset)
                chunk = handle.read()
                self.offset = handle.tell()
        except OSError:
            return []
        if not chunk:
            return []
        pieces = (self._partial + chunk).split("\n")
        self._partial = pieces.pop()
        events: List[Dict[str, Any]] = []
        for line in pieces:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue  # torn or corrupt line
        return events


def _follow_eta(summary: Dict[str, Any]) -> float:
    """Cost-model ETA: remaining cells at the observed mean cell cost,
    divided across the sweep's workers (cache hits count as done)."""
    finished = summary["completed"] + summary["cached"] + summary["failed"]
    remaining = max(summary["total"] - finished, 0)
    if not remaining:
        return 0.0
    if not summary["completed"]:
        return float("nan")
    mean = summary["busy"] / summary["completed"]
    return remaining * mean / max(summary["workers"], 1)


def render_follow_snapshot(summary: Dict[str, Any]) -> str:
    """The multi-line live-dashboard frame for ``sweeplog --follow``."""
    finished = summary["completed"] + summary["cached"] + summary["failed"]
    utilization = summary["utilization"]
    eta = _follow_eta(summary)
    lines = [
        f"sweep {finished}/{summary['total']} cells "
        f"(ok={summary['completed']} cached={summary['cached']} "
        f"failed={summary['failed']} retried={summary['retried']})",
        f"pool={summary['pool'] or '?'} schedule={summary['schedule'] or '?'} "
        f"workers={summary['workers']} "
        + (
            f"utilization={100.0 * utilization:.1f}% "
            if utilization == utilization
            else "utilization=n/a "
        )
        + (f"ETA={eta:.1f}s" if eta == eta else "ETA=n/a"),
    ]
    if summary["backends"]:
        parts = [
            f"{backend}: {int(stats['cells'])} cells "
            f"(mean {stats.get('mean', 0.0):.2f}s, max {stats['max']:.2f}s)"
            for backend, stats in sorted(summary["backends"].items())
        ]
        lines.append("backends: " + "; ".join(parts))
    if summary["per_worker"]:
        parts = [
            f"{'-' if worker is None else worker}:{int(stats['cells'])}"
            for worker, stats in sorted(
                summary["per_worker"].items(),
                key=lambda item: (item[0] is None, item[0]),
            )
        ]
        lines.append("per-worker cells: " + " ".join(parts))
    forensics = summary.get("forensics") or {}
    if forensics.get("cells"):
        rate = forensics["burst_rate_mean"]
        linked = forensics["sync_linked_fraction_mean"]
        lines.append(
            f"forensics: {forensics['bursts']} burst(s), "
            f"{forensics['sync_linked']} sync-linked across "
            f"{forensics['cells']} cell(s)"
            + (f", mean rate {rate:.3f}/s" if rate == rate else "")
            + (f", linked {100.0 * linked:.0f}%" if linked == linked else "")
        )
    return "\n".join(lines)


def _render_follow_line(summary: Dict[str, Any]) -> str:
    """The one-line (non-TTY) form of the dashboard frame."""
    finished = summary["completed"] + summary["cached"] + summary["failed"]
    utilization = summary["utilization"]
    eta = _follow_eta(summary)
    text = (
        f"[{finished}/{summary['total']}] ok={summary['completed']} "
        f"cached={summary['cached']} failed={summary['failed']} "
        f"workers={summary['workers']} "
        + (
            f"util={100.0 * utilization:.0f}% "
            if utilization == utilization
            else "util=n/a "
        )
        + (f"eta={eta:.0f}s" if eta == eta else "eta=n/a")
    )
    forensics = summary.get("forensics") or {}
    if forensics.get("cells"):
        text += (
            f" bursts={forensics['bursts']}"
            f" sync-linked={forensics['sync_linked']}"
        )
    return text


def follow_runlog(
    path: str,
    stream: Optional[TextIO] = None,
    interval: float = 1.0,
    max_updates: Optional[int] = None,
    tty: Optional[bool] = None,
    sleep=time.sleep,
) -> int:
    """Tail a JSONL run log and render a live sweep dashboard.

    Stdlib-only: on a TTY each update repaints a multi-line frame
    (ANSI home+clear); on anything else (CI logs, pipes) it falls back
    to one status line per update.  Stops when the log's ``sweep_end``
    arrives (rendering the full :func:`render_runlog_summary` report)
    or after ``max_updates`` frames (so smokes terminate on logs with
    no end event).  Returns the number of frames rendered.

    Args:
        path: run-log path; may not exist yet (renders a waiting frame).
        stream: output stream (default stdout).
        interval: seconds between polls.
        max_updates: stop after this many frames (None = until end).
        tty: force TTY/non-TTY rendering (None = ask the stream).
        sleep: injection point for tests.
    """
    out = stream if stream is not None else sys.stdout
    is_tty = (
        tty
        if tty is not None
        else bool(getattr(out, "isatty", lambda: False)())
    )
    clear = "\x1b[H\x1b[2J"
    tail = RunLogTail(path)
    events: List[Dict[str, Any]] = []
    updates = 0
    while True:
        new = tail.poll()
        events.extend(new)
        updates += 1
        if any(e.get("event") == "sweep_end" for e in new):
            body = render_runlog_summary(events)
            if is_tty:
                out.write(clear)
            out.write(body + "\n")
            out.flush()
            return updates
        if new or updates == 1:
            summary = summarize_runlog(events)
            if is_tty:
                out.write(clear + render_follow_snapshot(summary) + "\n")
            else:
                out.write(_render_follow_line(summary) + "\n")
            out.flush()
        if max_updates is not None and updates >= max_updates:
            return updates
        sleep(interval)


def stderr_runlog(path: Optional[str] = None, progress: bool = False) -> RunLog:
    """A RunLog wired to ``sys.stderr`` when live progress is wanted."""
    return RunLog(path=path, echo=sys.stderr if progress else None)
