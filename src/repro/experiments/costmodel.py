"""Per-cell wall-time prediction for sweep scheduling.

A sweep grid is heterogeneous: a Vegas cell at N=500 costs orders of
magnitude more wall time than a UDP cell at N=2.  Launching cells in
input order makes the makespan hostage to whichever big cell happens to
land last; the classic fix is LPT (longest processing time first)
scheduling, which needs a per-cell cost estimate.

:class:`CostModel` predicts a cell's wall time as::

    estimate(config) = alpha[lane] * units(config)

where a *lane* is the ``(backend, protocol, queue, workload)`` tuple
(the knobs that change per-unit cost, not unit count) and ``alpha`` is
learned
from observed wall times: every completed cell refines its lane, cache
hits contribute their recorded ``perf_wall_time``, and a previous run's
JSONL :class:`~repro.experiments.runlog.RunLog` can seed the model
before the first cell launches.  With no observations at all the model
degrades to pure unit-count ordering, which is already a good LPT key
because simulated event count scales with the units.

Packet cells cost ``duration * n_clients`` units (event count grows in
both); fluid cells cost ``duration`` alone -- the mean-field solver's
state is a window density, so its wall time is independent of N.
Hybrid cells cost ``duration * K`` with ``K = hybrid_foreground_flows``:
the event count tracks the K packet-exact foreground flows while the
fluid background is N-independent, so the ambient ``n_clients`` drops
out just as it does for pure fluid.  Keeping ``backend`` in the lane
key means each backend's alpha is learned separately and a mixed grid
is still scheduled LPT-first on sane estimates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.experiments.config import ScenarioConfig

#: The scheduling lanes a SweepRunner can run under.
SCHEDULES = ("cost", "fifo")

_Lane = Tuple[str, str, str, str]


def cell_units(config: ScenarioConfig) -> float:
    """The size proxy a cost estimate scales with.

    Packet cells: simulated event count grows roughly linearly in both
    the simulated duration and the number of clients, so their product
    is the natural unit of work.  Fluid cells: the ODE solver's step
    count depends on duration only (its state is a window density, not
    N flows), so n_clients drops out of the estimate.  Hybrid cells:
    event count tracks the K packet-exact foreground flows, not the
    fluid ambient N.
    """
    units = max(config.duration, 1e-9)
    if config.backend == "hybrid":
        units *= max(config.hybrid_foreground_flows, 1)
    elif config.backend != "fluid":
        units *= max(config.n_clients, 1)
    return units


class CostModel:
    """Learned wall seconds per cell unit, by scheduling lane."""

    def __init__(self) -> None:
        self._wall: Dict[_Lane, float] = {}
        self._units: Dict[_Lane, float] = {}
        self._total_wall = 0.0
        self._total_units = 0.0

    @staticmethod
    def lane(config: ScenarioConfig) -> _Lane:
        return (config.backend, config.protocol, config.queue, config.workload)

    # ------------------------------------------------------------------
    def observe(self, config: ScenarioConfig, wall_seconds: float) -> None:
        """Fold one completed cell's measured wall time into the model."""
        if not (wall_seconds > 0.0):  # rejects NaN and nonsense
            return
        units = cell_units(config)
        key = self.lane(config)
        self._wall[key] = self._wall.get(key, 0.0) + wall_seconds
        self._units[key] = self._units.get(key, 0.0) + units
        self._total_wall += wall_seconds
        self._total_units += units

    def observe_metrics(self, config: ScenarioConfig, metrics) -> None:
        """Observe a cached :class:`ScenarioMetrics` record, if it
        carries a finite recorded wall time (``perf_wall_time``)."""
        wall = getattr(metrics, "perf_wall_time", None)
        if wall is not None and wall == wall and wall > 0.0:
            self.observe(config, float(wall))

    def seed_from_runlog(
        self,
        events: Iterable[Mapping],
        configs_by_digest: Mapping[str, ScenarioConfig],
    ) -> int:
        """Seed from a previous run's JSONL events (``task_done`` rows
        whose digest matches a config in this grid).  Returns the number
        of observations folded in."""
        seeded = 0
        for event in events:
            if event.get("event") != "task_done":
                continue
            config = configs_by_digest.get(event.get("digest", ""))
            elapsed = event.get("elapsed")
            if config is None or not isinstance(elapsed, (int, float)):
                continue
            self.observe(config, float(elapsed))
            seeded += 1
        return seeded

    # ------------------------------------------------------------------
    def alpha(self, config: ScenarioConfig) -> float:
        """Wall seconds per unit for this config's lane (global fallback
        when the lane has no observations; 1.0 when nothing has)."""
        key = self.lane(config)
        units = self._units.get(key, 0.0)
        if units > 0.0:
            return self._wall[key] / units
        if self._total_units > 0.0:
            return self._total_wall / self._total_units
        return 1.0

    def estimate(self, config: ScenarioConfig) -> float:
        """Predicted wall seconds for one cell."""
        return self.alpha(config) * cell_units(config)

    @property
    def observations(self) -> int:
        """How many lanes have at least one observation."""
        return len(self._units)


def make_cost_model(
    schedule: str,
    configs: Iterable[ScenarioConfig] = (),
    runlog_events: Iterable[Mapping] = (),
) -> Optional[CostModel]:
    """A seeded :class:`CostModel` for ``schedule="cost"``, else None."""
    if schedule not in SCHEDULES:
        raise ValueError(f"unknown schedule {schedule!r}; choose from {SCHEDULES}")
    if schedule != "cost":
        return None
    model = CostModel()
    if runlog_events:
        by_digest = {config.config_digest(): config for config in configs}
        model.seed_from_runlog(runlog_events, by_digest)
    return model
