"""Scenario configuration: the paper's Table 1, reconstructed.

The OCR of the paper drops the digits '0' and '5'; DESIGN.md section 3
documents how each value below was recovered from the surviving digits
and the prose constraints (congestion knee between 38 and 39 clients,
gateway buffer overrun by three 17-packet bursts, RED ``max_th``
saturated by 40 Vegas streams, etc.).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Optional, Tuple

#: Bumped whenever the meaning of a config field (or the simulator
#: physics behind it) changes incompatibly, so stale cache entries from
#: older code are never mistaken for current results.
#: v2: closed-loop application workloads (the ``workload`` family of
#: fields) and the sink delivery-hook plumbing behind them.
#: v3: flight-recorder observability (``perf_*``/``obs_*`` summary
#: fields on ScenarioMetrics; older cache entries lack them).
#: v4: the ``backend`` knob (packet engine vs mean-field fluid solver)
#: joins the digest, and ScenarioMetrics records which backend produced
#: each row; pre-backend cache entries are retired wholesale rather
#: than being silently reinterpreted as packet results.
#: v5: the hybrid fluid/packet backend and its digest-included knobs
#: (``hybrid_foreground_flows``, ``hybrid_background_flows``,
#: ``hybrid_coupling_dt``); hybrid metrics are foreground-scoped
#: (``ScenarioMetrics.measured_flows``), so records from schema-v4 code
#: must not satisfy v5 lookups.
CONFIG_SCHEMA_VERSION = 5

#: Fields that only control *observation* (what gets traced), never the
#: simulated dynamics or any physics-derived ScenarioMetrics value, and
#: are therefore excluded from the content digest.  (The obs_* fields do
#: change the obs_* sample-count summaries, but those are observational
#: bookkeeping, not physics -- see tests/test_config.py.)
_DIGEST_EXCLUDED_FIELDS = frozenset(
    {
        "trace_cwnd_flows",
        "obs_trace",
        "obs_profile",
        "obs_queue_sample_interval",
        # Burst forensics (repro.forensics): pure observers fed from the
        # gateway's hooks and the senders' state transitions, so the
        # knobs can never change a physics-derived metric (the
        # forensic_* ScenarioMetrics fields are diagnostic bookkeeping,
        # like the obs_* sample counts).
        "forensics",
        "forensics_window",
        "forensics_top_k",
        "forensics_sketch_capacity",
        "forensics_burst_enter",
        "forensics_burst_exit",
        "forensics_sync_fraction",
        "forensics_sketch",
        # The engine scheduler is an implementation choice, not physics:
        # both schedulers execute the exact same event sequence
        # (tests/test_engine_differential.py), so results cached under
        # one are valid under the other.
        "scheduler",
        # Likewise the flow-state engine: the batch engine produces
        # bit-identical ScenarioMetrics, obs and forensics streams on
        # every supported cell (tests/test_batch_differential.py), so
        # results cached under one engine are valid under the other.
        "engine",
    }
)

# Transport protocol configurations the paper sweeps (Figure 2's legend).
PROTOCOLS = (
    "udp",
    "tahoe",
    "reno",
    "reno_delack",
    "newreno",
    "sack",
    "vegas",
    "reno_ecn",
)

# Gateway queueing disciplines.
QUEUES = ("fifo", "red", "ared", "drr")

# Scenario backends: the discrete-event packet engine (ground truth at
# any N it can afford), the mean-field fluid solver (the N -> infinity
# limit system; cost independent of n_clients), or the hybrid
# co-simulation (K foreground packet flows against the fluid background
# aggregate; cost scales with K, not N).  The fluid and hybrid backends
# model the paper's core grid only -- Reno/Vegas through a droptail or
# RED gateway under the open-loop workload; see _BACKEND_CAPABILITIES.
BACKENDS = ("packet", "fluid", "hybrid")

#: Per-backend capability table: which config features each scenario
#: backend can honor.  validate() walks this table so every rejection
#: names the backend and the unsupported feature, and widening a
#: backend's envelope (or adding a backend) is a data edit here rather
#: than another blanket check.  An absent key means "everything the
#: packet engine accepts".  ``obs`` covers the flight recorder
#: (obs_trace/obs_profile) and ``forensics`` the burst-forensics probe:
#: the hybrid backend supports both because its foreground flows are
#: real packet flows, while the pure fluid limit has no packets to
#: observe or attribute.
_BACKEND_CAPABILITIES = {
    "packet": {},  # the reference engine: every feature is supported
    "fluid": {
        "protocols": ("reno", "vegas"),
        "queues": ("fifo", "red"),
        "workloads": ("open",),
        "traffic": ("poisson", "cbr"),
        "pacing": False,
        "obs": False,
        "forensics": False,
    },
    "hybrid": {
        "protocols": ("reno", "vegas"),
        "queues": ("fifo", "red"),
        "workloads": ("open",),
        "traffic": ("poisson", "cbr"),
        "pacing": False,
        "obs": True,
        "forensics": True,
    },
}

# Application workloads: "open" is the paper's open-loop traffic (the
# `traffic` field picks the source); the rest are the closed-loop
# distributed-computing jobs of :mod:`repro.apps`.
WORKLOADS = ("open", "rpc", "bsp", "bulk")


@dataclass
class ScenarioConfig:
    """Everything needed to build and run one simulation."""

    # Experiment identity.
    protocol: str = "reno"
    queue: str = "fifo"
    # Which solver produces the metrics: "packet" (discrete-event
    # engine) or "fluid" (mean-field ODE limit).  Digest-included: the
    # two backends agree only within documented tolerance bands
    # (tests/test_fluid_differential.py), so their results must never
    # satisfy each other's cache lookups.
    backend: str = "packet"
    n_clients: int = 20
    # Hybrid backend knobs (used only when backend == "hybrid"; all
    # digest-included because they change the simulated physics).
    # ``hybrid_foreground_flows`` is K, the number of packet-exact
    # foreground flows; ``hybrid_background_flows`` pins the fluid
    # aggregate's flow count explicitly (0 = the ambient remainder,
    # n_clients - K); ``hybrid_coupling_dt`` is the foreground->fluid
    # feedback interval in seconds (0 = one fluid RK4 step).
    hybrid_foreground_flows: int = 10
    hybrid_background_flows: int = 0
    hybrid_coupling_dt: float = 0.0
    duration: float = 200.0  # Table 1: total test time
    warmup: float = 0.0  # measurement start (0 = measure from t=0, as the paper)
    seed: int = 1

    # Topology (Table 1).
    client_rate_bps: float = 10e6  # mu_c = 10 Mbps
    client_delay: float = 0.002  # tau_c = 2 ms
    bottleneck_rate_bps: float = 3e6  # mu_s (reconstructed; see DESIGN.md)
    bottleneck_delay: float = 0.200  # tau_s = 200 ms (reconstructed; see DESIGN.md)
    buffer_capacity: int = 50  # B = 50 packets

    # Workload (Table 1).
    packet_size: int = 1000  # bytes
    mean_gap: float = 0.1  # mean packet inter-generation time, seconds
    # Traffic model: "poisson" (the paper), "cbr", or "pareto_onoff"
    # (the heavy-tailed workload of the self-similarity literature).
    traffic: str = "poisson"
    # Pareto on/off knobs (used only when traffic == "pareto_onoff");
    # defaults keep the long-run mean rate equal to the Poisson rate:
    # duty cycle mean_on/(mean_on+mean_off) = 0.1 at 100 pkt/s peak.
    onoff_peak_gap: float = 0.01
    onoff_mean_on: float = 0.5
    onoff_mean_off: float = 4.5
    onoff_shape: float = 1.5

    # Closed-loop application workload (extension; see repro.apps).
    # "open" keeps the paper's open-loop sources; "rpc"/"bsp"/"bulk"
    # replace them with closed-loop distributed-computing jobs whose
    # offered load reacts to transport backpressure.
    workload: str = "open"
    # RPC: request size, modeled response size, think time between a
    # response and the next request, and concurrent requests per client.
    rpc_request_packets: int = 2
    rpc_response_packets: int = 2
    rpc_think_time: float = 0.2
    rpc_outstanding: int = 1
    # BSP: shuffle volume per worker per superstep and the mean local
    # compute time (exponential, so stragglers arise naturally).
    bsp_shuffle_packets: int = 30
    bsp_compute_time: float = 0.5
    # Bulk transfers: job size and the mean idle gap between jobs.
    bulk_job_packets: int = 200
    bulk_job_gap: float = 1.0
    # Work units not fully delivered within this many seconds are
    # abandoned (keeps lossy UDP runs from stalling forever).
    workload_timeout: float = 30.0

    # TCP (Table 1 + standard knobs).
    advertised_window: int = 20  # max advertised window, packets
    ack_delay: float = 0.1  # delayed-ACK timer for the DelAck variant
    # BSD/ns-2-era coarse retransmission timers (500 ms granularity,
    # 1 s floor): the timeout droughts and synchronized slow-start
    # restarts they produce are part of the burstiness the paper measures.
    min_rto: float = 1.0
    initial_rto: float = 3.0
    tcp_tick: float = 0.5

    # TCP pacing extension (not in the paper; see the pacing ablation).
    pacing: bool = False

    # TCP Vegas thresholds (Table 1: 1 / 3 / 1).
    vegas_alpha: float = 1.0
    vegas_beta: float = 3.0
    vegas_gamma: float = 1.0

    # RED gateway (Table 1: min_th 10, max_th 40).
    red_min_th: float = 10.0
    red_max_th: float = 40.0
    red_max_p: float = 0.1
    red_weight: float = 0.002
    red_gentle: bool = False

    # DRR fair-queueing gateway (extension; quantum in bytes).
    drr_quantum: int = 1000

    # Measurement and tracing.
    bin_width: Optional[float] = None  # None = the round-trip propagation delay
    trace_cwnd_flows: Tuple[int, ...] = ()  # flow ids whose cwnd to log
    record_offered: bool = True  # record application generation times
    record_flow_arrivals: bool = False  # per-flow gateway arrival times

    # Flight-recorder observability (see repro.obs).  ``obs_trace``
    # enables trace categories ("cwnd", "rtt", "state", "queue",
    # "drops", or "all"); ``obs_profile`` attaches the engine profiler;
    # ``obs_queue_sample_interval`` thins the queue-occupancy series
    # (0 = keep every sample).  All observation-only: none affects the
    # simulated dynamics or the config digest.
    obs_trace: Tuple[str, ...] = ()
    obs_profile: bool = False
    obs_queue_sample_interval: float = 0.0

    # Burst forensics (see repro.forensics): segment the gateway queue
    # into burst episodes, attribute each to its top-k contributing
    # flows (exact accountant cross-validated against a space-saving
    # sketch), and link episodes to loss-synchronization events.
    # Observation-only, like the obs_* knobs above.  ``forensics_window``
    # is the attribution window width in seconds (0 = one round-trip
    # propagation delay, the paper's binning);
    # ``forensics_sketch_capacity`` is the sketch's counter budget
    # (0 = 4 x top_k); the burst enter/exit thresholds are fractions of
    # the buffer capacity (hysteresis: exit below enter); the sync
    # fraction is the quorum of flows that must halve cwnd within one
    # RTT to count as a synchronization event (a quarter of the
    # population cutting together is already an unambiguous wave --
    # demanding a strict majority misses waves that synchronize most
    # but not all flows).
    forensics: bool = False
    forensics_window: float = 0.0
    forensics_top_k: int = 5
    forensics_sketch_capacity: int = 0
    forensics_burst_enter: float = 0.6
    forensics_burst_exit: float = 0.3
    forensics_sync_fraction: float = 0.25
    # Which bounded-memory sketch backs the per-window attribution:
    # "spacesaving" (guaranteed-weight ranking, the default) or
    # "countmin" (conservative-update count-min; see
    # benchmarks/bench_forensics_sketch.py for the trade-off curves).
    forensics_sketch: str = "spacesaving"

    # Engine scheduler: "heap" (the reference binary heap) or "wheel"
    # (the large-N timer-wheel fast path).  Digest-excluded: both pop
    # events in the exact same order, so every ScenarioMetrics value is
    # identical either way -- the knob trades wall-clock time only.
    scheduler: str = "heap"

    # Flow-state engine: "object" (one sender object per flow, the
    # differential reference) or "batch" (struct-of-arrays FlowBatch
    # with fused transport events; see repro.engine).  Digest-excluded
    # for the same reason as ``scheduler``: the batch engine is pinned
    # bit-identical to the object engine on every cell it accepts
    # (tests/test_batch_differential.py), so it trades wall-clock time
    # only.  The batch envelope is checked in validate_batch_engine().
    engine: str = "object"

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def rtt_prop(self) -> float:
        """Round-trip propagation delay (the paper's c.o.v. bin width)."""
        return 2.0 * (self.client_delay + self.bottleneck_delay)

    @property
    def effective_bin_width(self) -> float:
        """The c.o.v. binning window actually used."""
        return self.bin_width if self.bin_width is not None else self.rtt_prop

    @property
    def per_client_rate(self) -> float:
        """Offered rate per client, packets/second."""
        return 1.0 / self.mean_gap

    @property
    def offered_load_bps(self) -> float:
        """Aggregate offered load in bits/second."""
        return self.n_clients * self.per_client_rate * self.packet_size * 8.0

    @property
    def bottleneck_capacity_pps(self) -> float:
        """Bottleneck service rate in packets/second."""
        return self.bottleneck_rate_bps / (self.packet_size * 8.0)

    def reverse_path_delay(self, n_packets: int = 1) -> float:
        """Modeled one-way latency of ``n_packets`` on the *reverse*
        (server-to-client) path: serialization at both links plus the
        propagation delays.  The reverse direction carries only ACKs and
        is never congested in the dumbbell, so closed-loop workloads use
        this closed form for RPC responses and barrier releases instead
        of simulating reverse data packets (see DESIGN.md)."""
        bits = n_packets * self.packet_size * 8.0
        return (
            bits / self.bottleneck_rate_bps
            + bits / self.client_rate_bps
            + self.client_delay
            + self.bottleneck_delay
        )

    @property
    def congestion_knee_clients(self) -> float:
        """Client count at which offered load equals bottleneck capacity."""
        return self.bottleneck_capacity_pps / self.per_client_rate

    @property
    def hybrid_background_count(self) -> int:
        """Background (fluid-aggregate) flow count of a hybrid run: the
        explicit ``hybrid_background_flows`` knob when set, else the
        ambient remainder ``n_clients - hybrid_foreground_flows``."""
        if self.hybrid_background_flows > 0:
            return self.hybrid_background_flows
        return max(self.n_clients - self.hybrid_foreground_flows, 0)

    @property
    def label(self) -> str:
        """Human-readable protocol/queue label (Figure 2 legend style)."""
        names = {
            "udp": "UDP",
            "tahoe": "Tahoe",
            "reno": "Reno",
            "reno_delack": "Reno/DelayAck",
            "newreno": "NewReno",
            "sack": "SACK",
            "vegas": "Vegas",
            "reno_ecn": "Reno/ECN",
        }
        base = names.get(self.protocol, self.protocol)
        if self.backend == "fluid":
            base = f"{base}~fluid"
        elif self.backend == "hybrid":
            base = f"{base}~hybrid"
        if self.pacing:
            base = f"{base}/Paced"
        if self.workload != "open":
            base = f"{base}+{self.workload.upper()}"
        if self.queue == "red":
            return f"{base}/RED"
        if self.queue == "ared":
            return f"{base}/ARED"
        if self.queue == "drr":
            return f"{base}/DRR"
        return base

    # ------------------------------------------------------------------
    # Validation and variation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ValueError on unknown protocol/queue or bad numbers."""
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; choose from {PROTOCOLS}"
            )
        if self.queue not in QUEUES:
            raise ValueError(f"unknown queue {self.queue!r}; choose from {QUEUES}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        # Capability-table checks: the mean-field backends are derived
        # for the paper's core grid; anything outside it silently
        # running the wrong physics would be worse than an error.  Each
        # rejection names the backend and the unsupported feature.
        caps = _BACKEND_CAPABILITIES[self.backend]
        for feature, name, value in (
            ("protocols", "protocol", self.protocol),
            ("queues", "queue", self.queue),
            ("workloads", "workload", self.workload),
            ("traffic", "traffic model", self.traffic),
        ):
            allowed = caps.get(feature)
            if allowed is not None and value not in allowed:
                raise ValueError(
                    f"the {self.backend} backend does not support "
                    f"{name} {value!r} (supported: {'/'.join(allowed)})"
                )
        if self.pacing and not caps.get("pacing", True):
            raise ValueError(
                f"the {self.backend} backend does not support pacing"
            )
        if (self.obs_trace or self.obs_profile) and not caps.get("obs", True):
            raise ValueError(
                f"the {self.backend} backend does not support the flight "
                "recorder (obs_trace/obs_profile): the mean-field limit "
                "has no per-flow packets to trace"
            )
        if self.forensics and not caps.get("forensics", True):
            raise ValueError(
                f"the {self.backend} backend does not support burst "
                "forensics: no per-flow packets to attribute"
            )
        if self.backend == "hybrid":
            if self.hybrid_foreground_flows < 1:
                raise ValueError(
                    "hybrid_foreground_flows must be at least 1"
                )
            if self.hybrid_foreground_flows > self.n_clients:
                raise ValueError(
                    "hybrid_foreground_flows cannot exceed n_clients "
                    f"({self.hybrid_foreground_flows} > {self.n_clients})"
                )
            if self.hybrid_background_flows < 0:
                raise ValueError(
                    "hybrid_background_flows must be non-negative"
                )
            if self.hybrid_coupling_dt < 0:
                raise ValueError("hybrid_coupling_dt must be non-negative")
        if self.n_clients < 1:
            raise ValueError("need at least one client")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must lie inside [0, duration)")
        if self.mean_gap <= 0 or self.packet_size <= 0:
            raise ValueError("workload parameters must be positive")
        if self.traffic not in ("poisson", "cbr", "pareto_onoff"):
            raise ValueError(f"unknown traffic model {self.traffic!r}")
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; choose from {WORKLOADS}"
            )
        if min(
            self.rpc_request_packets,
            self.rpc_response_packets,
            self.rpc_outstanding,
            self.bsp_shuffle_packets,
            self.bulk_job_packets,
        ) < 1:
            raise ValueError("workload sizes/windows must be at least 1")
        if min(
            self.rpc_think_time,
            self.bsp_compute_time,
            self.bulk_job_gap,
        ) < 0:
            raise ValueError("workload times must be non-negative")
        if self.workload_timeout <= 0:
            raise ValueError("workload_timeout must be positive")
        from repro.obs.probes import TRACE_CATEGORIES

        unknown = set(self.obs_trace) - set(TRACE_CATEGORIES)
        if unknown:
            raise ValueError(
                f"unknown obs_trace categories {sorted(unknown)}; "
                f"choose from {TRACE_CATEGORIES}"
            )
        if self.obs_queue_sample_interval < 0:
            raise ValueError("obs_queue_sample_interval must be non-negative")
        if self.forensics_window < 0:
            raise ValueError("forensics_window must be non-negative")
        if self.forensics_top_k < 1:
            raise ValueError("forensics_top_k must be at least 1")
        if self.forensics_sketch_capacity < 0:
            raise ValueError("forensics_sketch_capacity must be non-negative")
        if not 0 < self.forensics_burst_enter <= 1:
            raise ValueError("forensics_burst_enter must lie in (0, 1]")
        if not 0 <= self.forensics_burst_exit < self.forensics_burst_enter:
            raise ValueError(
                "forensics_burst_exit must lie in [0, forensics_burst_enter)"
            )
        if not 0 < self.forensics_sync_fraction <= 1:
            raise ValueError("forensics_sync_fraction must lie in (0, 1]")
        from repro.forensics.windows import SKETCHES

        if self.forensics_sketch not in SKETCHES:
            raise ValueError(
                f"unknown forensics sketch {self.forensics_sketch!r}; "
                f"choose from {sorted(SKETCHES)}"
            )
        from repro.sim.engine import SCHEDULERS

        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; choose from {SCHEDULERS}"
            )
        from repro.engine import ENGINES

        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        # The hybrid backend runs its foreground through the object-flow
        # scenario machinery regardless of the (digest-excluded) engine
        # knob, so engine="batch" is accepted as a no-op there -- which
        # is what pins hybrid metrics bit-identical across engines.  The
        # other backends keep the strict envelope check.
        if self.engine == "batch" and self.backend != "hybrid":
            self.validate_batch_engine()
        if self.protocol == "reno_ecn" and self.queue == "fifo":
            raise ValueError("reno_ecn requires an ECN-marking (RED) gateway")

    def validate_batch_engine(self) -> None:
        """Raise ValueError when the batch engine cannot pin this cell.

        The struct-of-arrays engine fuses the access hop and the reverse
        ACK path into closed-form arithmetic; those fusions are only
        bit-identical to the object engine inside this envelope
        (see DESIGN.md section 15).  Outside it, refuse loudly rather
        than silently diverge from the differential reference.
        """
        if self.protocol not in ("reno", "vegas"):
            raise ValueError(
                "the batch engine supports reno/vegas only; "
                f"got protocol {self.protocol!r}"
            )
        if self.workload not in ("open", "rpc"):
            raise ValueError(
                "the batch engine supports open/rpc workloads only; "
                f"got workload {self.workload!r}"
            )
        if self.workload == "open" and self.traffic != "poisson":
            raise ValueError(
                "the batch engine models poisson open-loop sources only; "
                f"got traffic {self.traffic!r}"
            )
        if self.pacing:
            raise ValueError("the batch engine does not model pacing")
        if self.backend != "packet":
            raise ValueError("engine='batch' applies to the packet backend")
        if self.client_rate_bps < self.bottleneck_rate_bps:
            raise ValueError(
                "the batch engine assumes access links at least as fast "
                "as the bottleneck (no reverse-path queueing)"
            )
        if self.packet_size < 40:
            raise ValueError(
                "the batch engine assumes data packets no smaller than "
                "ACKs (packet_size >= 40)"
            )
        if self.advertised_window >= 1000:
            raise ValueError(
                "the batch engine assumes the access queue never "
                "overflows (advertised_window < 1000)"
            )
        # Same-time tie-breaking (DESIGN.md section 15): the object
        # engine orders simultaneous events by scheduling order, which
        # for the two events that contend for the bottleneck queue --
        # an arriving packet's enqueue and the transmitter's dequeue --
        # reduces to comparing two config constants: each event is
        # pushed a fixed lag before it fires (the access propagation
        # delay and the bottleneck serialization time respectively).
        # The batch engine replicates that order with a priority class,
        # which requires the comparison to be decidable.
        if self.packet_size * 8.0 / self.bottleneck_rate_bps == self.client_delay:
            raise ValueError(
                "the batch engine cannot replicate the object engine's "
                "tie-break when the bottleneck serialization time equals "
                "the access propagation delay exactly; perturb "
                "packet_size, bottleneck_rate_bps or client_delay"
            )
        if self.min_rto <= self.client_delay:
            raise ValueError(
                "the batch engine assumes retransmit timers are armed "
                "further ahead than the access propagation delay "
                "(min_rto > client_delay), so a timer always precedes a "
                "same-time ACK arrival, as it does in the object engine"
            )

    def with_(self, **overrides) -> "ScenarioConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def digest_payload(self) -> Dict[str, Any]:
        """The canonical dict the content digest is computed over.

        Covers every physics-relevant field (anything that can change a
        :class:`ScenarioMetrics` value) plus the schema version; purely
        observational fields are excluded so e.g. enabling cwnd tracing
        does not invalidate cached metrics.
        """
        payload: Dict[str, Any] = {"schema_version": CONFIG_SCHEMA_VERSION}
        for spec in fields(self):
            if spec.name in _DIGEST_EXCLUDED_FIELDS:
                continue
            value = getattr(self, spec.name)
            if isinstance(value, float):
                # repr() of a float is exact and stable across platforms
                # and processes; str() would be too, but be explicit.
                value = repr(value)
            elif isinstance(value, tuple):
                value = list(value)
            payload[spec.name] = value
        return payload

    def config_digest(self) -> str:
        """Stable hex content hash of this configuration.

        Two configs with identical physics (same digest payload) hash
        identically in any process on any platform, so the digest can
        key an on-disk result cache shared between runs.
        """
        canonical = json.dumps(
            self.digest_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def paper_config(**overrides) -> ScenarioConfig:
    """The reconstructed Table 1 configuration, with overrides."""
    return ScenarioConfig().with_(**overrides)


def table1_rows() -> List[Tuple[str, str]]:
    """The Table 1 parameter listing as (parameter, value) rows."""
    config = ScenarioConfig()
    return [
        ("client link bandwidth (mu_c)", f"{config.client_rate_bps / 1e6:g} Mbps"),
        ("client link delay (tau_c)", f"{config.client_delay * 1e3:g} ms"),
        (
            "bottleneck link bandwidth (mu_s)",
            f"{config.bottleneck_rate_bps / 1e6:g} Mbps",
        ),
        ("bottleneck link delay (tau_s)", f"{config.bottleneck_delay * 1e3:g} ms"),
        ("TCP max advertised window", f"{config.advertised_window} packets"),
        ("gateway buffer size (B)", f"{config.buffer_capacity} packets"),
        ("packet size", f"{config.packet_size} bytes"),
        ("average packet intergeneration time (1/lambda)", f"{config.mean_gap:g} s"),
        ("total test time", f"{config.duration:g} s"),
        ("TCP Vegas alpha", f"{config.vegas_alpha:g}"),
        ("TCP Vegas beta", f"{config.vegas_beta:g}"),
        ("TCP Vegas gamma", f"{config.vegas_gamma:g}"),
        ("RED min_th", f"{config.red_min_th:g} packets"),
        ("RED max_th", f"{config.red_max_th:g} packets"),
    ]
