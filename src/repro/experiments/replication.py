"""Replicated experiments: many seeds, mean +/- confidence interval.

The paper reports single ns runs; serious reproduction wants error
bars.  :func:`replicate` runs one configuration under R different root
seeds (each seed re-derives every per-component RNG stream, so the
replicas are fully independent) and summarizes each metric with a mean
and a normal-approximation confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import confidence_interval
from repro.analysis.tables import format_table
from repro.experiments.config import ScenarioConfig
from repro.experiments.results import ScenarioMetrics
from repro.experiments.sweep import run_many

#: metrics summarized by default (numeric fields of ScenarioMetrics)
DEFAULT_METRICS = (
    "cov",
    "throughput_packets",
    "loss_percent",
    "timeouts",
    "fast_retransmits",
    "timeout_dupack_ratio",
    "mean_queue_length",
    "fairness",
    "utilization",
)


@dataclass
class MetricSummary:
    """Mean and spread of one metric across replicas."""

    name: str
    mean: float
    std: float
    ci_low: float
    ci_high: float
    values: List[float] = field(default_factory=list)

    @property
    def half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0


@dataclass
class ReplicationResult:
    """All replicas of one configuration, summarized."""

    config: ScenarioConfig
    seeds: Tuple[int, ...]
    replicas: List[ScenarioMetrics]
    summaries: Dict[str, MetricSummary]

    def summary(self, metric: str) -> MetricSummary:
        """Summary of one metric (KeyError if not summarized)."""
        return self.summaries[metric]

    def render_table(self, precision: int = 4) -> str:
        """Mean +/- CI table across the summarized metrics."""
        rows = [
            [s.name, s.mean, s.std, s.ci_low, s.ci_high]
            for s in self.summaries.values()
        ]
        return format_table(
            ["metric", "mean", "std", "ci low", "ci high"],
            rows,
            precision=precision,
            title=(
                f"{self.config.label}, {self.config.n_clients} clients: "
                f"{len(self.replicas)} replicas"
            ),
        )


def replicate(
    config: ScenarioConfig,
    n_replicas: int = 5,
    base_seed: int = 1,
    metrics: Sequence[str] = DEFAULT_METRICS,
    level: float = 0.95,
    processes: Optional[int] = 1,
    **runner_kwargs,
) -> ReplicationResult:
    """Run ``config`` under ``n_replicas`` distinct seeds and summarize.

    Seeds are ``base_seed, base_seed+1, ...``; each replica's scenario
    config differs only in its ``seed`` field.  Extra keyword arguments
    (``cache``, ``timeout``, ``retries``, ``run_log``, ``pool``,
    ``schedule``, ...) pass through to
    :func:`repro.experiments.sweep.run_many`, so replicated runs cache,
    resume, and schedule (persistent pool, cost-model ordering) like
    any sweep.  Failed replicas (error-tagged placeholders) are
    excluded from the summaries.
    """
    if n_replicas < 1:
        raise ValueError("need at least one replica")
    seeds = tuple(base_seed + i for i in range(n_replicas))
    configs = [config.with_(seed=seed) for seed in seeds]
    replicas = run_many(configs, processes=processes, **runner_kwargs)
    usable = [replica for replica in replicas if not replica.failed] or replicas
    summaries: Dict[str, MetricSummary] = {}
    for name in metrics:
        values = [float(getattr(replica, name)) for replica in usable]
        arr = np.asarray(values)
        if len(usable) >= 2:
            low, high = confidence_interval(arr, level)
        else:
            low = high = float(arr.mean())
        summaries[name] = MetricSummary(
            name=name,
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if len(usable) >= 2 else 0.0,
            ci_low=low,
            ci_high=high,
            values=values,
        )
    return ReplicationResult(
        config=config, seeds=seeds, replicas=replicas, summaries=summaries
    )


def compare(
    a: ReplicationResult, b: ReplicationResult, metric: str
) -> Tuple[float, bool]:
    """Difference of means (a - b) and whether the CIs are disjoint.

    Disjoint confidence intervals are a conservative indication that the
    difference is real rather than seed noise.
    """
    summary_a = a.summary(metric)
    summary_b = b.summary(metric)
    difference = summary_a.mean - summary_b.mean
    disjoint = (
        summary_a.ci_low > summary_b.ci_high
        or summary_b.ci_low > summary_a.ci_high
    )
    return difference, disjoint
