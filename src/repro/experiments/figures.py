"""One function per paper figure.

Figures 2-4 and 13 all derive from the same protocol-by-client-count
sweep, so :func:`run_protocol_sweep` runs the grid once and each figure
function slices it.  Figures 5-12 are congestion-window traces from
single runs with tracing enabled (:func:`cwnd_trace_experiment`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.forensics.report import ForensicsReport

from repro.analysis.asciiplot import ascii_series_plot
from repro.analysis.tables import format_table
from repro.core.theory import poisson_aggregate_cov
from repro.experiments.config import ScenarioConfig, paper_config
from repro.experiments.results import ScenarioMetrics
from repro.experiments.scenario import ScenarioResult, run_scenario
from repro.experiments.sweep import run_many

# The protocol/queue combinations in Figure 2's legend, in legend order.
FIGURE2_PROTOCOLS: Dict[str, Tuple[str, str]] = {
    "udp": ("udp", "fifo"),
    "reno": ("reno", "fifo"),
    "reno_red": ("reno", "red"),
    "vegas": ("vegas", "fifo"),
    "vegas_red": ("vegas", "red"),
    "reno_delack": ("reno_delack", "fifo"),
}

# Figures 3, 4 and 13 start their x-axis at 30 clients ("the different
# TCP implementations exhibit nearly identical behavior for less than 30
# clients") and omit UDP.
TCP_ONLY_PROTOCOLS = tuple(k for k in FIGURE2_PROTOCOLS if k != "udp")

# The client counts of the paper's congestion-window snapshots.
RENO_CWND_CLIENT_COUNTS = (20, 30, 38, 39, 60)  # Figures 5-9
VEGAS_CWND_CLIENT_COUNTS = (20, 30, 60)  # Figures 10-12

# The large-N extension of Figure 2: client counts out to N=500, the
# statistical-multiplexing regime the paper's ns runs could not reach.
LARGEN_CLIENT_COUNTS = (20, 50, 100, 200, 350, 500)

# Large-N protocol panel: the uncontrolled Poisson baseline (where
# c.o.v. must fall as 1/sqrt(N)) against the paper's headline TCP
# configurations (where congestion control defeats the averaging).
LARGEN_PROTOCOLS: Dict[str, Tuple[str, str]] = {
    "udp": ("udp", "fifo"),
    "reno": ("reno", "fifo"),
    "reno_red": ("reno", "red"),
}

# The forensics sweep grid: the Reno/Vegas headliners under both
# gateway disciplines, at client counts spanning the paper's knee.
# Forensics needs the packet backend, so the counts stay modest.
FORENSICS_CLIENT_COUNTS = (20, 40, 60)

FORENSICS_PROTOCOLS: Dict[str, Tuple[str, str]] = {
    "reno": ("reno", "fifo"),
    "reno_red": ("reno", "red"),
    "vegas": ("vegas", "fifo"),
    "vegas_red": ("vegas", "red"),
}

# The mean-field extension of Figure 2: client counts out to N=10^6,
# reachable only through the fluid backend (solver cost is independent
# of N).  The low counts overlap the packet-validated range so the two
# regimes join up on one curve.
FLUID_CLIENT_COUNTS = (50, 100, 200, 500, 1_000, 10_000, 100_000, 1_000_000)

# The fluid backend's modeled grid: the paper's Reno/Vegas headliners
# under both gateway disciplines.
FLUID_PROTOCOLS: Dict[str, Tuple[str, str]] = {
    "reno": ("reno", "fifo"),
    "reno_red": ("reno", "red"),
    "vegas": ("vegas", "fifo"),
    "vegas_red": ("vegas", "red"),
}

# The hybrid extension of Figure 2: the same ambient ladder as the
# fluid grid, but with K packet-exact foreground flows whose c.o.v. is
# measured packet-level (the fluid cost is N-independent, so the ladder
# tops out at N=10^6 all the same).
HYBRID_CLIENT_COUNTS = FLUID_CLIENT_COUNTS


@dataclass
class FigureData:
    """A regenerated figure: named series plus rendering helpers."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: Dict[str, Tuple[List[float], List[float]]] = field(default_factory=dict)

    def add_series(self, name: str, xs: Sequence[float], ys: Sequence[float]) -> None:
        """Add one named (x, y) series."""
        self.series[name] = (list(xs), list(ys))

    def render_plot(self, width: int = 72, height: int = 20) -> str:
        """ASCII chart of all series."""
        return ascii_series_plot(
            self.series,
            width=width,
            height=height,
            title=f"{self.figure_id}: {self.title}",
            xlabel=self.xlabel,
            ylabel=self.ylabel,
        )

    def render_table(self, precision: int = 4) -> str:
        """Aligned text table: one row per x, one column per series."""
        xs = sorted({x for xs_ys in self.series.values() for x in xs_ys[0]})
        headers = [self.xlabel] + list(self.series)
        rows: List[List[object]] = []
        for x in xs:
            row: List[object] = [x]
            for name in self.series:
                series_x, series_y = self.series[name]
                row.append(
                    series_y[series_x.index(x)] if x in series_x else float("nan")
                )
            rows.append(row)
        return format_table(
            headers, rows, precision=precision, title=f"{self.figure_id}: {self.title}"
        )

    def to_rows(self) -> List[Dict[str, object]]:
        """Long-format rows (series, x, y) for CSV export."""
        rows: List[Dict[str, object]] = []
        for name, (xs, ys) in self.series.items():
            for x, y in zip(xs, ys):
                rows.append({"series": name, self.xlabel: x, self.ylabel: y})
        return rows


SweepData = Dict[str, List[ScenarioMetrics]]


def run_protocol_sweep(
    client_counts: Sequence[int],
    base: Optional[ScenarioConfig] = None,
    protocols: Mapping[str, Tuple[str, str]] = FIGURE2_PROTOCOLS,
    processes: Optional[int] = None,
    **runner_kwargs,
) -> SweepData:
    """Run the (protocol x client-count) grid behind Figures 2-4 and 13.

    Extra keyword arguments (``cache``, ``timeout``, ``retries``,
    ``run_log``, ...) pass through to :func:`run_many`, so figure sweeps
    resume from a cache directory and tolerate failing cells.
    """
    base = base or paper_config()
    keys: List[str] = []
    configs: List[ScenarioConfig] = []
    for key, (protocol, queue) in protocols.items():
        for n in client_counts:
            keys.append(key)
            configs.append(base.with_(protocol=protocol, queue=queue, n_clients=n))
    metrics = run_many(configs, processes=processes, **runner_kwargs)
    sweep: SweepData = {key: [] for key in protocols}
    for key, metric in zip(keys, metrics):
        sweep[key].append(metric)
    for key in sweep:
        sweep[key].sort(key=lambda m: m.n_clients)
    return sweep


def _series_from_sweep(
    sweep: SweepData, attribute: str, keys: Optional[Sequence[str]] = None
) -> Dict[str, Tuple[List[float], List[float]]]:
    series: Dict[str, Tuple[List[float], List[float]]] = {}
    for key in keys if keys is not None else sweep:
        metrics = sweep[key]
        if not metrics:
            continue
        label = metrics[0].label
        xs = [float(m.n_clients) for m in metrics]
        ys = [float(getattr(m, attribute)) for m in metrics]
        series[label] = (xs, ys)
    return series


def figure2_cov(
    sweep: SweepData, base: Optional[ScenarioConfig] = None
) -> FigureData:
    """Figure 2: c.o.v. of the aggregated traffic vs number of clients."""
    base = base or paper_config()
    figure = FigureData(
        figure_id="Figure 2",
        title="Coefficient of Variation of the Aggregated TCP Traffic",
        xlabel="number of clients",
        ylabel="coefficient of variation",
    )
    client_counts = sorted(
        {m.n_clients for metrics in sweep.values() for m in metrics}
    )
    figure.add_series(
        "Poisson",
        [float(n) for n in client_counts],
        [
            poisson_aggregate_cov(n, base.per_client_rate, base.effective_bin_width)
            for n in client_counts
        ],
    )
    for label, xy in _series_from_sweep(sweep, "cov").items():
        figure.add_series(label, *xy)
    return figure


def run_largen_sweep(
    client_counts: Sequence[int] = LARGEN_CLIENT_COUNTS,
    base: Optional[ScenarioConfig] = None,
    protocols: Mapping[str, Tuple[str, str]] = LARGEN_PROTOCOLS,
    processes: Optional[int] = None,
    scheduler: str = "wheel",
    **runner_kwargs,
) -> SweepData:
    """Figure 2's c.o.v.-vs-N sweep pushed out to N=500.

    The paper stops at 60 clients; this grid probes the large-N regime
    where mean-field models predict the interesting aggregate behavior.
    Cells run on the timer-wheel scheduler by default -- at N=500 the
    binary heap's per-pop comparisons dominate the run -- and since the
    scheduler knob is digest-excluded, cached results from either
    scheduler satisfy both.
    """
    base = base or paper_config()
    return run_protocol_sweep(
        client_counts,
        base=base.with_(scheduler=scheduler),
        protocols=protocols,
        processes=processes,
        **runner_kwargs,
    )


def figure_largen_cov(
    sweep: SweepData, base: Optional[ScenarioConfig] = None
) -> FigureData:
    """The large-N c.o.v. figure: Figure 2's axes, client counts to 500.

    The Poisson reference series makes the paper's point at scale: the
    analytic 1/sqrt(N) curve keeps falling while the TCP series flatten
    out (congestion control re-correlates the aggregate).
    """
    figure = figure2_cov(sweep, base)
    figure.figure_id = "Figure 2 (large N)"
    figure.title = "C.o.v. of the Aggregated Traffic, N to 500"
    return figure


def run_fluid_sweep(
    client_counts: Sequence[int] = FLUID_CLIENT_COUNTS,
    base: Optional[ScenarioConfig] = None,
    protocols: Mapping[str, Tuple[str, str]] = FLUID_PROTOCOLS,
    processes: Optional[int] = None,
    **runner_kwargs,
) -> SweepData:
    """Figure 2's c.o.v.-vs-N sweep on the mean-field fluid backend.

    The packet engine tops out around N=500-1000 per run; the fluid
    solver's cost is independent of N, so this grid extends the
    burstiness curve to N=10^6 (the ROADMAP's millions-of-users regime)
    in seconds.  The backend knob is in the config digest, so fluid
    cells cache separately from packet cells of the same grid.
    """
    base = base or paper_config()
    return run_protocol_sweep(
        client_counts,
        base=base.with_(backend="fluid"),
        protocols=protocols,
        processes=processes,
        **runner_kwargs,
    )


def figure_fluid_cov(
    sweep: SweepData, base: Optional[ScenarioConfig] = None
) -> FigureData:
    """The mean-field c.o.v. figure: Figure 2's axes out to N=10^6.

    The Poisson reference keeps falling as 1/sqrt(N) until the link
    saturates (above the congestion knee the aggregate rate -- and with
    it the per-bin count -- stops growing with N, flooring the sampling
    c.o.v. near 1/sqrt(C * bin)); the TCP curves sit above that floor
    because the congestion-control limit cycle survives the N ->
    infinity limit: burstiness is not averaged away.
    """
    figure = figure2_cov(sweep, base)
    figure.figure_id = "Figure 2 (fluid, large N)"
    figure.title = "C.o.v. of the Aggregated Traffic, mean-field N to 1e6"
    return figure


def run_hybrid_sweep(
    client_counts: Sequence[int] = HYBRID_CLIENT_COUNTS,
    base: Optional[ScenarioConfig] = None,
    protocols: Mapping[str, Tuple[str, str]] = FLUID_PROTOCOLS,
    foreground: int = 10,
    processes: Optional[int] = None,
    **runner_kwargs,
) -> SweepData:
    """Figure 2's c.o.v.-vs-N sweep on the hybrid fluid/packet backend.

    Every cell keeps ``foreground`` packet-exact flows against a fluid
    background of the remaining ``n - foreground`` clients, so the
    measured c.o.v. is *packet-level* -- binned arrival counts of real
    foreground packets at the gateway -- at ambient client counts out to
    N=10^6 that only the fluid background makes affordable.  The hybrid
    knobs are in the config digest, so these cells cache separately
    from packet and fluid cells of the same grid.
    """
    base = base or paper_config()
    return run_protocol_sweep(
        client_counts,
        base=base.with_(backend="hybrid", hybrid_foreground_flows=foreground),
        protocols=protocols,
        processes=processes,
        **runner_kwargs,
    )


def figure_hybrid_cov(
    sweep: SweepData,
    base: Optional[ScenarioConfig] = None,
    foreground: int = 10,
) -> FigureData:
    """Foreground (packet-measured) c.o.v. vs ambient N, to N=10^6.

    The reference series is the K-flow Poisson c.o.v. -- constant in
    ambient N, because the foreground population never grows.  Any rise
    of the TCP series above that flat line as N climbs is congestion
    feedback from the shared gateway: the background limit cycle
    modulates what the K real flows experience, which is the paper's
    burstiness mechanism seen from inside a flow.
    """
    base = base or paper_config()
    figure = FigureData(
        figure_id="Figure 2 (hybrid, large N)",
        title=f"C.o.v. of {foreground} packet-level foreground flows, ambient N to 1e6",
        xlabel="number of clients",
        ylabel="coefficient of variation",
    )
    client_counts = sorted(
        {m.n_clients for metrics in sweep.values() for m in metrics}
    )
    figure.add_series(
        f"Poisson ({foreground} flows)",
        [float(n) for n in client_counts],
        [
            poisson_aggregate_cov(
                foreground, base.per_client_rate, base.effective_bin_width
            )
            for _ in client_counts
        ],
    )
    for label, xy in _series_from_sweep(sweep, "cov").items():
        figure.add_series(label, *xy)
    return figure


def _per_flow_series(
    sweep: SweepData, attribute: str, min_clients: int
) -> Dict[str, Tuple[List[float], List[float]]]:
    """Series of ``attribute / measured flows`` vs client count.

    The divisor is ``measured_flows`` when the record carries one (K for
    hybrid cells, N for packet cells) and ``n_clients`` otherwise
    (fluid cells and pre-hybrid records, whose aggregates cover all N
    flows), which is what makes one y-axis comparable across backends.
    """
    series: Dict[str, Tuple[List[float], List[float]]] = {}
    for key, metrics in sweep.items():
        if not metrics:
            continue
        label = metrics[0].label
        points = [
            (float(m.n_clients),
             float(getattr(m, attribute)) / max(m.measured_flows or m.n_clients, 1))
            for m in metrics
            if m.n_clients >= min_clients and not m.failed
        ]
        if points:
            series[label] = ([x for x, _ in points], [y for _, y in points])
    return series


def figure3_throughput_per_flow(
    sweep: SweepData, min_clients: int = 0
) -> FigureData:
    """Figure 3 analogue for any backend: per-flow delivered packets.

    The paper's Figure 3 plots the aggregate total, which only the
    packet backend measures per flow; normalizing by the measured flow
    count puts packet (all N flows), fluid (the aggregate over N), and
    hybrid (K foreground flows) sweeps on one comparable axis.
    """
    figure = FigureData(
        figure_id="Figure 3 (per flow)",
        title="Per-flow Throughput of the TCP Traffic",
        xlabel="number of clients",
        ylabel="packets successfully transmitted per flow",
    )
    for label, (xs, ys) in _per_flow_series(
        sweep, "throughput_packets", min_clients
    ).items():
        figure.add_series(label, xs, ys)
    return figure


def figure4_drops_per_flow(
    sweep: SweepData, min_clients: int = 0
) -> FigureData:
    """Figure 4 analogue for any backend: per-flow gateway drop counts.

    Loss percentage is already population-size-free, so this figure
    plots the complementary absolute count: how many of each measured
    flow's packets the gateway dropped, comparable across packet, fluid,
    and hybrid sweeps via the per-flow normalization.
    """
    figure = FigureData(
        figure_id="Figure 4 (per flow)",
        title="Per-flow Packet Drops of the TCP Traffic",
        xlabel="number of clients",
        ylabel="gateway drops per flow",
    )
    for label, (xs, ys) in _per_flow_series(
        sweep, "gateway_drops", min_clients
    ).items():
        figure.add_series(label, xs, ys)
    return figure


def figure3_throughput(sweep: SweepData, min_clients: int = 30) -> FigureData:
    """Figure 3: total packets successfully transmitted vs clients."""
    figure = FigureData(
        figure_id="Figure 3",
        title="Throughput of the Aggregated TCP Traffic",
        xlabel="number of clients",
        ylabel="total packets successfully transmitted",
    )
    for label, (xs, ys) in _series_from_sweep(
        sweep, "throughput_packets", keys=[k for k in TCP_ONLY_PROTOCOLS if k in sweep]
    ).items():
        kept = [(x, y) for x, y in zip(xs, ys) if x >= min_clients]
        if kept:
            figure.add_series(label, [x for x, _ in kept], [y for _, y in kept])
    return figure


def figure4_loss(sweep: SweepData, min_clients: int = 30) -> FigureData:
    """Figure 4: packet loss percentage vs clients."""
    figure = FigureData(
        figure_id="Figure 4",
        title="Packet Loss Percentage of the Aggregated TCP Traffic",
        xlabel="number of clients",
        ylabel="packet loss percentage (%)",
    )
    for label, (xs, ys) in _series_from_sweep(
        sweep, "loss_percent", keys=[k for k in TCP_ONLY_PROTOCOLS if k in sweep]
    ).items():
        kept = [(x, y) for x, y in zip(xs, ys) if x >= min_clients]
        if kept:
            figure.add_series(label, [x for x, _ in kept], [y for _, y in kept])
    return figure


def figure13_timeout_ratio(sweep: SweepData, min_clients: int = 30) -> FigureData:
    """Figure 13: ratio of timeouts to duplicate ACKs vs clients."""
    figure = FigureData(
        figure_id="Figure 13",
        title="Ratio of Timeouts to Duplicate ACKs",
        xlabel="number of clients",
        ylabel="timeout/duplicate-ACK ratio",
    )
    for label, (xs, ys) in _series_from_sweep(
        sweep,
        "timeout_dupack_ratio",
        keys=[k for k in TCP_ONLY_PROTOCOLS if k in sweep],
    ).items():
        kept = [(x, y) for x, y in zip(xs, ys) if x >= min_clients]
        if kept:
            figure.add_series(label, [x for x, _ in kept], [y for _, y in kept])
    return figure


# The transport/gateway combinations the application-workload
# comparison sweeps (benchmarks/bench_app_workloads.py): the paper's
# headline contrast (Reno vs Vegas vs the uncontrolled UDP baseline)
# under both FIFO and RED gateways.
WORKLOAD_PROTOCOLS: Dict[str, Tuple[str, str]] = {
    "udp": ("udp", "fifo"),
    "reno": ("reno", "fifo"),
    "reno_red": ("reno", "red"),
    "vegas": ("vegas", "fifo"),
    "vegas_red": ("vegas", "red"),
}


def run_workload_sweep(
    client_counts: Sequence[int],
    workload: str,
    base: Optional[ScenarioConfig] = None,
    protocols: Mapping[str, Tuple[str, str]] = WORKLOAD_PROTOCOLS,
    processes: Optional[int] = None,
    **runner_kwargs,
) -> SweepData:
    """Run a (protocol x client-count) grid under a closed-loop workload.

    The same grid shape as :func:`run_protocol_sweep`, but every cell
    runs the given ``workload`` ("rpc", "bsp" or "bulk"), so the
    resulting :class:`ScenarioMetrics` carry job-level ``app_*`` fields
    alongside the packet-level c.o.v./throughput/loss columns.
    """
    base = base or paper_config()
    return run_protocol_sweep(
        client_counts,
        base=base.with_(workload=workload),
        protocols=protocols,
        processes=processes,
        **runner_kwargs,
    )


def figure_workload_latency(sweep: SweepData, workload: str = "rpc") -> FigureData:
    """Job-level latency vs client count for a closed-loop sweep.

    Plots the workload's natural completion-time metric: p99 request
    latency for RPC, mean barrier stall for BSP, mean job completion
    time for bulk transfers.
    """
    attribute, ylabel = {
        "rpc": ("app_latency_p99", "p99 request latency (s)"),
        "bsp": ("app_barrier_stall_mean", "mean barrier stall (s)"),
        "bulk": ("app_job_time_mean", "mean job completion time (s)"),
    }[workload]
    figure = FigureData(
        figure_id=f"Workload {workload}",
        title=f"Application-level latency under the {workload} workload",
        xlabel="number of clients",
        ylabel=ylabel,
    )
    for label, xy in _series_from_sweep(sweep, attribute).items():
        figure.add_series(label, *xy)
    return figure


def cwnd_trace_experiment(
    protocol: str,
    n_clients: int,
    flows: Optional[Sequence[int]] = None,
    base: Optional[ScenarioConfig] = None,
    queue: str = "fifo",
    duration: Optional[float] = None,
) -> ScenarioResult:
    """One run with congestion-window tracing (Figures 5-12).

    The paper traces three spread-out client streams per snapshot
    (e.g. clients 1, 10 and 20 of 20); by default we trace the first,
    middle and last flow.
    """
    base = base or paper_config()
    if flows is None:
        flows = sorted({0, n_clients // 2, n_clients - 1})
    config = base.with_(
        protocol=protocol,
        queue=queue,
        n_clients=n_clients,
        trace_cwnd_flows=tuple(flows),
    )
    if duration is not None:
        config = config.with_(duration=duration)
    return run_scenario(config)


def figure_burst_attribution(
    report: "ForensicsReport", k: int = 3
) -> FigureData:
    """Stacked top-k attribution timeline from a forensics report.

    One point per attribution window.  The flow series are *cumulative*
    (flow a; a+b; a+b+c ...), so the vertical gap between consecutive
    curves is that flow's bytes in the window and the gap up to the
    ``all flows`` curve is everybody else's -- the ASCII rendering of a
    stacked area chart.  Flows are the run's overall top-k by exact
    bytes, heaviest first.
    """
    figure = FigureData(
        figure_id="figF",
        title="burst forensics: stacked top-k flow attribution",
        xlabel="time (s)",
        ylabel="bytes per window",
    )
    windows = report.exact.windows()
    if not windows:
        return figure
    totals: Dict[int, int] = {}
    for index in windows:
        for flow, entry in report.exact.window_counts(index).items():
            totals[flow] = totals.get(flow, 0) + entry[1]
    top_flows = [
        flow
        for flow, _ in sorted(totals.items(), key=lambda i: (-i[1], i[0]))[:k]
    ]
    xs = [report.exact.window_start(index) for index in windows]
    stack = [0.0] * len(windows)
    for depth, flow in enumerate(top_flows):
        for pos, index in enumerate(windows):
            entry = report.exact.window_counts(index).get(flow)
            stack[pos] += entry[1] if entry else 0
        name = "+".join(f"flow{f}" for f in top_flows[: depth + 1])
        figure.add_series(name, xs, list(stack))
    figure.add_series(
        "all flows",
        xs,
        [float(report.exact.window_total_bytes(index)) for index in windows],
    )
    return figure


def run_forensics_sweep(
    client_counts: Sequence[int] = FORENSICS_CLIENT_COUNTS,
    base: Optional[ScenarioConfig] = None,
    protocols: Mapping[str, Tuple[str, str]] = FORENSICS_PROTOCOLS,
    processes: Optional[int] = None,
    cache=None,
    **runner_kwargs,
) -> SweepData:
    """The burstiness-forensics grid: protocol x AQM x client count.

    Runs Figure 2's axes with forensics enabled so every cell carries
    the sweep-grade burst summary (``forensic_burst_rate``,
    ``forensic_sync_linked_fraction``, ...).  Forensics instruments the
    packet engine, so the backend is pinned to ``packet``; the buffer is
    widened to give RED's early-drop region headroom over its
    thresholds.

    The forensics knobs are digest-excluded (enabling a pure observer
    must not invalidate cached physics), which cuts both ways: a cache
    populated by a forensics-free sweep satisfies these cells with
    records that lack the forensic columns.  Cells whose cached metrics
    carry no forensics marker (NaN ``forensic_burst_rate``) are
    therefore re-run cache-blind and the refreshed record overwrites
    the cache entry.
    """
    if base is None:
        base = paper_config().with_(buffer_capacity=100)
    base = base.with_(backend="packet", forensics=True)
    sweep = run_protocol_sweep(
        client_counts,
        base=base,
        protocols=protocols,
        processes=processes,
        cache=cache,
        **runner_kwargs,
    )
    if cache is None:
        return sweep
    # Backfill pass: refresh stale (pre-forensics) cache hits.
    stale: List[Tuple[str, int, ScenarioConfig]] = []
    for key, metrics in sweep.items():
        protocol, queue = protocols[key]
        for pos, metric in enumerate(metrics):
            if metric.failed or math.isfinite(metric.forensic_burst_rate):
                continue
            stale.append(
                (
                    key,
                    pos,
                    base.with_(
                        protocol=protocol,
                        queue=queue,
                        n_clients=metric.n_clients,
                    ),
                )
            )
    if not stale:
        return sweep
    refreshed = run_many(
        [config for _, _, config in stale],
        processes=processes,
        cache=None,
        **runner_kwargs,
    )
    for (key, pos, config), metric in zip(stale, refreshed):
        sweep[key][pos] = metric
        if not metric.failed:
            cache.put(config, metric)
    return sweep


def figure_forensics_sweep(
    sweep: SweepData, attribute: str = "forensic_burst_rate"
) -> FigureData:
    """Burstiness forensics vs N, one series per protocol x AQM.

    With the default attribute this is the figure the paper's mechanism
    story predicts: droptail burst rate climbs with N as the shared
    buffer saturates more often, while RED's early dropping keeps its
    curve flat or falling.  ``forensic_sync_linked_fraction`` plots the
    companion diagnosis -- what share of those bursts follow a
    loss-synchronization event.
    """
    labels = {
        "forensic_burst_rate": "burst episodes per second",
        "forensic_sync_linked_fraction": "fraction of bursts sync-linked",
        "forensic_drop_share": "fraction of drops inside bursts",
        "forensic_burst_duration_mean": "mean burst duration (s)",
    }
    figure = FigureData(
        figure_id=f"figF sweep ({attribute})",
        title="burst forensics across the protocol sweep",
        xlabel="number of clients",
        ylabel=labels.get(attribute, attribute),
    )
    for label, (xs, ys) in _series_from_sweep(sweep, attribute).items():
        kept = [(x, y) for x, y in zip(xs, ys) if math.isfinite(y)]
        if kept:
            figure.add_series(label, [x for x, _ in kept], [y for _, y in kept])
    return figure
