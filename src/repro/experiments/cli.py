"""The ``repro-tcp`` command-line tool.

Subcommands regenerate each paper artifact from the terminal::

    repro-tcp table1
    repro-tcp run --protocol reno --queue red --clients 40
    repro-tcp fig2 --clients 4:60:8 --duration 50
    repro-tcp fig3 / fig4 / fig13
    repro-tcp cwnd --protocol vegas --clients 30

Sweeps accept ``--csv PATH`` / ``--json PATH`` to persist results, plus
execution-backbone flags: ``--jobs/-j`` (worker count), ``--pool``
(``persistent`` long-lived workers, the default, or ``per-task``
processes), ``--schedule`` (``cost`` longest-expected-first or
``fifo``), ``--cache-dir`` / ``--resume`` (content-addressed result
cache; interrupted sweeps pick up where they stopped), ``--timeout`` /
``--retries`` (kill and retry hung or crashed workers), and
``--run-log`` / ``--progress`` (JSONL telemetry / live counters).
``repro-tcp sweeplog RUN.jsonl`` folds a run log back into a makespan /
worker-utilization report.

Observability (the flight recorder)::

    repro-tcp run --trace cwnd,queue --obs-dir out/     # per-flow series
    repro-tcp run --trace-file run.tr                   # ns-2 trace lines
    repro-tcp profile --clients 40 --duration 50        # engine profile

``--trace CATS`` enables trace categories (``cwnd``, ``rtt``,
``state``, ``queue``, ``drops``, or ``all``); ``--obs-dir`` exports the
captured series as JSONL (``--obs-format csv`` for CSV) together with
an engine profile; ``--trace-file`` streams ns-2 format events at the
bottleneck.  The ``profile`` subcommand runs one scenario under the
engine profiler and prints a per-callback-category table
(``--json PATH`` for machine-readable output).

Burst forensics (see repro.forensics)::

    repro-tcp forensics --clients 40 --duration 50       # who caused it?
    repro-tcp run --forensics --queue red --clients 40

``forensics`` segments the gateway queue into burst episodes, ranks
each episode's top-k contributing flows (exact accountant
cross-validated against a space-saving sketch), links episodes to
loss-synchronization events, and prints the stacked attribution
timeline (``--json`` dumps the report payload, ``--obs-dir`` exports
the per-window series).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.io import results_to_csv, results_to_json
from repro.analysis.asciiplot import ascii_step_plot
from repro.analysis.tables import format_table
from repro.experiments.config import WORKLOADS, paper_config, table1_rows
from repro.experiments.figures import (
    FLUID_CLIENT_COUNTS,
    FORENSICS_CLIENT_COUNTS,
    HYBRID_CLIENT_COUNTS,
    LARGEN_CLIENT_COUNTS,
    FigureData,
    cwnd_trace_experiment,
    figure2_cov,
    figure3_throughput,
    figure3_throughput_per_flow,
    figure4_drops_per_flow,
    figure4_loss,
    figure13_timeout_ratio,
    figure_burst_attribution,
    figure_fluid_cov,
    figure_forensics_sweep,
    figure_hybrid_cov,
    figure_largen_cov,
    run_fluid_sweep,
    run_forensics_sweep,
    run_hybrid_sweep,
    run_largen_sweep,
    run_protocol_sweep,
)
from repro.experiments.replication import replicate
from repro.experiments.results import ScenarioMetrics, metrics_table
from repro.experiments.scenario import Scenario, run_scenario
from repro.obs.probes import parse_trace_spec


def parse_range(spec: str) -> List[int]:
    """Parse 'start:stop:step' (inclusive) or a comma list into ints."""
    if ":" in spec:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise argparse.ArgumentTypeError("ranges look like start:stop[:step]")
        start, stop = int(parts[0]), int(parts[1])
        step = int(parts[2]) if len(parts) == 3 else 1
        if step <= 0 or stop < start:
            raise argparse.ArgumentTypeError("need start <= stop and step > 0")
        return list(range(start, stop + 1, step))
    return [int(part) for part in spec.split(",") if part]


#: Default cache directory used by ``--resume`` when ``--cache-dir``
#: was not given explicitly.
DEFAULT_CACHE_DIR = ".repro-cache"


def _positive_float(value: str) -> float:
    parsed = float(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError("must be positive")
    return parsed


def _non_negative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return parsed


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--duration", type=float, default=None, help="run length, s")
    parser.add_argument("--seed", type=int, default=None, help="root RNG seed")
    parser.add_argument(
        "--backend",
        choices=["packet", "fluid", "hybrid"],
        default=None,
        help="scenario solver: the discrete-event packet engine "
        "(default), the mean-field fluid limit (reno/vegas x "
        "fifo/red, cost independent of client count), or the hybrid "
        "co-simulation (K packet-exact foreground flows against the "
        "fluid background)",
    )
    parser.add_argument(
        "--hybrid-foreground",
        type=int,
        default=None,
        metavar="K",
        help="hybrid backend: packet-exact foreground flows (default 10)",
    )
    parser.add_argument(
        "--hybrid-background",
        type=int,
        default=None,
        metavar="N_BG",
        help="hybrid backend: fluid background flows "
        "(default 0 = the ambient remainder, clients - K)",
    )
    parser.add_argument(
        "--hybrid-coupling-dt",
        type=float,
        default=None,
        metavar="SECONDS",
        help="hybrid backend: fluid/packet coupling interval "
        "(default 0 = every RK4 step)",
    )
    parser.add_argument(
        "--scheduler",
        choices=["heap", "wheel"],
        default=None,
        help="engine scheduler: the reference binary heap (default) or "
        "the large-N timer-wheel fast path; results are identical",
    )
    parser.add_argument(
        "--engine",
        choices=["object", "batch"],
        default=None,
        help="flow-state engine: per-flow objects (default) or the "
        "struct-of-arrays batch engine with fused transport events; "
        "results are identical inside the batch envelope "
        "(reno/vegas, open poisson or rpc, packet backend)",
    )
    parser.add_argument("--processes", type=int, default=None, help="worker count")
    parser.add_argument(
        "--jobs",
        "-j",
        dest="processes",
        type=int,
        default=None,
        help="worker count (alias for --processes)",
    )
    parser.add_argument(
        "--pool",
        choices=["persistent", "per-task"],
        default="persistent",
        help="sweep executor: long-lived workers draining the grid "
        "(default) or one process per attempt",
    )
    parser.add_argument(
        "--schedule",
        choices=["cost", "fifo"],
        default="cost",
        help="cell ordering: longest-expected-first via the cost model "
        "(default, minimizes makespan) or submission order",
    )
    parser.add_argument("--csv", default=None, help="write results to CSV")
    parser.add_argument("--json", default=None, help="write results to JSON")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory (hits skip re-runs)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=f"resume an interrupted sweep from the cache "
        f"(defaults --cache-dir to {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        help="per-scenario wall-clock limit, seconds (hung workers are killed)",
    )
    parser.add_argument(
        "--retries",
        type=_non_negative_int,
        default=1,
        help="extra attempts per cell after a crash/timeout (default 1)",
    )
    parser.add_argument(
        "--run-log",
        default=None,
        help="append JSONL progress telemetry to this file",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print live completed/failed/cached counters to stderr",
    )


def _runner_kwargs(args: argparse.Namespace) -> dict:
    """Map the common CLI flags onto run_many/replicate keyword args."""
    from repro.experiments.runlog import stderr_runlog

    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = DEFAULT_CACHE_DIR
    kwargs = {
        "cache": cache_dir,
        "timeout": args.timeout,
        "retries": args.retries,
        "pool": getattr(args, "pool", "persistent"),
        "schedule": getattr(args, "schedule", "cost"),
    }
    if args.run_log or args.progress:
        kwargs["run_log"] = stderr_runlog(path=args.run_log, progress=args.progress)
    return kwargs


def _add_workload(parser: argparse.ArgumentParser) -> None:
    """Closed-loop application-workload flags (see repro.apps)."""
    group = parser.add_argument_group("application workload")
    group.add_argument(
        "--workload",
        choices=list(WORKLOADS),
        default="open",
        help="application model: open-loop sources (default) or a "
        "closed-loop rpc/bsp/bulk job",
    )
    group.add_argument(
        "--rpc-request-packets", type=int, default=None, help="request size, packets"
    )
    group.add_argument(
        "--rpc-response-packets",
        type=int,
        default=None,
        help="modeled response size, packets",
    )
    group.add_argument(
        "--rpc-think", type=float, default=None, help="mean think time, s"
    )
    group.add_argument(
        "--rpc-outstanding",
        type=int,
        default=None,
        help="concurrent requests per client",
    )
    group.add_argument(
        "--bsp-shuffle-packets",
        type=int,
        default=None,
        help="shuffle volume per worker per superstep, packets",
    )
    group.add_argument(
        "--bsp-compute", type=float, default=None, help="mean compute time, s"
    )
    group.add_argument(
        "--bulk-job-packets", type=int, default=None, help="job size, packets"
    )
    group.add_argument(
        "--bulk-job-gap", type=float, default=None, help="mean gap between jobs, s"
    )
    group.add_argument(
        "--workload-timeout",
        type=_positive_float,
        default=None,
        help="abandon work units undelivered after this many seconds",
    )


def _workload_overrides(args: argparse.Namespace) -> dict:
    """Map the workload CLI flags onto ScenarioConfig fields."""
    mapping = {
        "workload": "workload",
        "rpc_request_packets": "rpc_request_packets",
        "rpc_response_packets": "rpc_response_packets",
        "rpc_think": "rpc_think_time",
        "rpc_outstanding": "rpc_outstanding",
        "bsp_shuffle_packets": "bsp_shuffle_packets",
        "bsp_compute": "bsp_compute_time",
        "bulk_job_packets": "bulk_job_packets",
        "bulk_job_gap": "bulk_job_gap",
        "workload_timeout": "workload_timeout",
    }
    overrides = {}
    for arg_name, field in mapping.items():
        value = getattr(args, arg_name, None)
        if value is not None and value != "open":
            overrides[field] = value
    return overrides


def _base_config(args: argparse.Namespace):
    overrides = {}
    if args.duration is not None:
        overrides["duration"] = args.duration
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "scheduler", None) is not None:
        overrides["scheduler"] = args.scheduler
    if getattr(args, "engine", None) is not None:
        overrides["engine"] = args.engine
    if getattr(args, "backend", None) is not None:
        overrides["backend"] = args.backend
    if getattr(args, "hybrid_foreground", None) is not None:
        overrides["hybrid_foreground_flows"] = args.hybrid_foreground
    if getattr(args, "hybrid_background", None) is not None:
        overrides["hybrid_background_flows"] = args.hybrid_background
    if getattr(args, "hybrid_coupling_dt", None) is not None:
        overrides["hybrid_coupling_dt"] = args.hybrid_coupling_dt
    overrides.update(_workload_overrides(args))
    return paper_config(**overrides)


def _emit_figure(figure: FigureData, args: argparse.Namespace) -> None:
    print(figure.render_plot())
    print()
    print(figure.render_table())
    if args.csv:
        results_to_csv(figure.to_rows(), args.csv)
        print(f"\nwrote {args.csv}")
    if args.json:
        results_to_json(figure.series, args.json)
        print(f"\nwrote {args.json}")


def _cmd_table1(args: argparse.Namespace) -> int:
    print(
        format_table(
            ["Parameter", "Value"],
            table1_rows(),
            title="Table 1: Simulation Parameters (reconstructed; see DESIGN.md)",
        )
    )
    return 0


def _trace_spec(value: str) -> tuple:
    try:
        return parse_trace_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _add_obs(parser: argparse.ArgumentParser) -> None:
    """Flight-recorder flags (see repro.obs)."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        type=_trace_spec,
        default=(),
        metavar="CATS",
        help="trace categories to record, comma-separated "
        "(cwnd,rtt,state,queue,drops or 'all')",
    )
    group.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="export the flight-recorder bundle (traces + engine "
        "profile) into this directory; implies engine profiling",
    )
    group.add_argument(
        "--obs-format",
        choices=["jsonl", "csv"],
        default="jsonl",
        help="series export format (default jsonl)",
    )
    group.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="write an ns-2-format packet trace of the bottleneck queue",
    )
    group.add_argument(
        "--forensics",
        action="store_true",
        help="run burst forensics (episode segmentation, top-k flow "
        "attribution, loss-sync linkage) and print the report",
    )
    group.add_argument(
        "--forensics-stream",
        default=None,
        metavar="PATH",
        help="stream forensics records (windows, sync events, burst "
        "attributions) to this JSONL file as the run progresses; "
        "implies --forensics",
    )
    group.add_argument(
        "--forensics-stream-interval",
        type=_positive_float,
        default=1.0,
        metavar="SECONDS",
        help="sim-time checkpoint interval between stream flushes "
        "(default 1.0)",
    )


def _cmd_run(args: argparse.Namespace) -> int:
    stream_path = getattr(args, "forensics_stream", None)
    config = _base_config(args).with_(
        protocol=args.protocol,
        queue=args.queue,
        n_clients=args.clients,
        obs_trace=tuple(args.trace),
        obs_profile=bool(args.obs_dir),
        forensics=bool(getattr(args, "forensics", False)) or bool(stream_path),
    )
    stream = None
    if args.trace_file and config.engine == "batch":
        print(
            "error: --trace-file requires the object engine (the batch "
            "engine fuses the bottleneck interface's per-hop events away); "
            "drop --engine batch to record an ns-2 trace",
            file=sys.stderr,
        )
        return 2
    if args.obs_dir or args.trace_file or stream_path:
        # Build the scenario by hand so pre-run attachments (the ns
        # tracefile writer, the forensics stream) and post-run exports
        # can reach inside it.
        if config.engine == "batch":
            from repro.engine.batch import BatchScenario

            scenario = BatchScenario(config)
        else:
            scenario = Scenario(config)
        trace_handle = None
        stream_handle = None
        if args.trace_file:
            from repro.net.tracefile import NsTraceWriter

            trace_handle = open(args.trace_file, "w", encoding="utf-8")
            writer = NsTraceWriter(trace_handle).attach(
                scenario.network.bottleneck_interface
            )
        if stream_path:
            stream_handle = open(stream_path, "w", encoding="utf-8")
            stream = scenario.attach_forensics_stream(
                stream_handle, interval=args.forensics_stream_interval
            )
        try:
            result = scenario.run()
        finally:
            if trace_handle is not None:
                trace_handle.close()
            if stream_handle is not None:
                stream_handle.close()
    else:
        result = run_scenario(config)
    metrics = ScenarioMetrics.from_result(result)
    print(metrics_table([metrics], title=f"Scenario: {config.label}, {config.n_clients} clients"))
    if result.modulation is not None:
        print()
        print(result.modulation.describe())
    if result.app is not None:
        print()
        print(result.app.describe())
    if result.forensics is not None:
        print()
        print(result.forensics.render())
    if args.trace_file:
        print(f"\nwrote {args.trace_file} ({writer.lines_written} trace lines)")
    if stream is not None:
        print(
            f"\nwrote {stream_path} "
            f"({stream.records_written} forensics stream records)"
        )
    if args.obs_dir and result.obs is not None:
        for path in result.obs.export(args.obs_dir, fmt=args.obs_format):
            print(f"wrote {path}")
        if result.obs.engine is not None:
            print()
            print(result.obs.engine.render_table())
    if args.json:
        results_to_json(metrics.as_dict(), args.json)
        print(f"\nwrote {args.json}")
    if args.csv:
        results_to_csv([metrics.as_dict()], args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run one scenario under the engine profiler and print the profile."""
    config = _base_config(args).with_(
        protocol=args.protocol,
        queue=args.queue,
        n_clients=args.clients,
        obs_profile=True,
    )
    result = run_scenario(config)
    profile = result.obs.engine if result.obs is not None else None
    assert profile is not None  # obs_profile=True guarantees it
    print(
        f"Scenario: {config.label}, {config.n_clients} clients, "
        f"{config.duration:g}s simulated"
    )
    print(profile.render_table())
    if args.json:
        payload = profile.as_dict()
        payload["wall_time_total"] = result.wall_time
        payload["peak_rss_kb"] = result.peak_rss_kb
        results_to_json(payload, args.json)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_forensics_sweep(args: argparse.Namespace) -> int:
    """The forensics grid: burst rate and sync linkage vs N per
    protocol x AQM, next to Figure 2's c.o.v. curve."""
    # Match run_forensics_sweep's no-base default: a widened buffer so
    # RED's early-drop region has headroom over its thresholds.
    base = _base_config(args).with_(buffer_capacity=100)
    sweep = run_forensics_sweep(
        args.sweep,
        base=base,
        processes=args.processes,
        **_runner_kwargs(args),
    )
    rate_figure = figure_forensics_sweep(sweep, "forensic_burst_rate")
    linked_figure = figure_forensics_sweep(
        sweep, "forensic_sync_linked_fraction"
    )
    cov_figure = figure2_cov(sweep, base)
    for figure in (rate_figure, linked_figure, cov_figure):
        print(figure.render_plot())
        print()
        print(figure.render_table())
        print()
    if args.json:
        results_to_json(
            {
                "burst_rate": rate_figure.series,
                "sync_linked_fraction": linked_figure.series,
                "cov": cov_figure.series,
            },
            args.json,
        )
        print(f"wrote {args.json}")
    if args.csv:
        rows = [m.as_dict() for metrics in sweep.values() for m in metrics]
        results_to_csv(rows, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_forensics(args: argparse.Namespace) -> int:
    """Run one scenario under burst forensics and print the report."""
    if args.sweep is not None:
        return _cmd_forensics_sweep(args)
    overrides = {"forensics": True}
    if args.top is not None:
        overrides["forensics_top_k"] = args.top
    if args.window is not None:
        overrides["forensics_window"] = args.window
    if args.sketch is not None:
        overrides["forensics_sketch_capacity"] = args.sketch
    config = _base_config(args).with_(
        protocol=args.protocol,
        queue=args.queue,
        n_clients=args.clients,
        **overrides,
    )
    result = run_scenario(config)
    report = result.forensics
    assert report is not None  # forensics=True guarantees it
    print(
        f"Scenario: {config.label}, {config.n_clients} clients, "
        f"{config.duration:g}s simulated"
    )
    print()
    print(report.render())
    figure = figure_burst_attribution(report)
    if figure.series:
        print()
        print(figure.render_plot())
    if args.obs_dir and result.obs is not None:
        for path in result.obs.export(args.obs_dir, fmt=args.obs_format):
            print(f"wrote {path}")
    if args.json:
        results_to_json(report.as_dict(), args.json)
        print(f"\nwrote {args.json}")
    if args.csv:
        results_to_csv(figure.to_rows(), args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_sweeplog(args: argparse.Namespace) -> int:
    """Summarize a sweep's JSONL run log: makespan, worker utilization,
    per-worker load, respawns, and the slowest cells."""
    from repro.experiments.runlog import (
        follow_runlog,
        read_runlog,
        render_runlog_summary,
        summarize_runlog,
    )

    if args.follow:
        follow_runlog(
            args.path,
            interval=args.interval,
            max_updates=args.max_updates,
        )
        return 0

    events = read_runlog(args.path)
    if not events:
        print(f"no events in {args.path}")
        return 1
    print(render_runlog_summary(events))
    if args.json:
        summary = summarize_runlog(events)
        summary["per_worker"] = {
            str(worker): stats for worker, stats in summary["per_worker"].items()
        }
        results_to_json(summary, args.json)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_sweep_figure(args: argparse.Namespace) -> int:
    base = _base_config(args)
    sweep = run_protocol_sweep(
        args.clients, base=base, processes=args.processes, **_runner_kwargs(args)
    )
    builders = {
        "fig2": lambda: figure2_cov(sweep, base),
        "fig3": lambda: figure3_throughput(sweep),
        "fig4": lambda: figure4_loss(sweep),
        "fig13": lambda: figure13_timeout_ratio(sweep),
    }
    _emit_figure(builders[args.command](), args)
    return 0


def _cmd_largen(args: argparse.Namespace) -> int:
    """The large-N c.o.v. sweep (Figure 2 out to N=500)."""
    base = _base_config(args)
    sweep = run_largen_sweep(
        args.clients,
        base=base,
        processes=args.processes,
        scheduler=args.scheduler or "wheel",
        **_runner_kwargs(args),
    )
    _emit_figure(figure_largen_cov(sweep, base), args)
    return 0


def _cmd_fluid(args: argparse.Namespace) -> int:
    """The mean-field c.o.v. sweep (Figure 2 out to N=10^6)."""
    base = _base_config(args)
    sweep = run_fluid_sweep(
        args.clients,
        base=base,
        processes=args.processes,
        **_runner_kwargs(args),
    )
    _emit_figure(figure_fluid_cov(sweep, base), args)
    return 0


def _cmd_hybrid(args: argparse.Namespace) -> int:
    """The hybrid c.o.v. sweep: K packet-exact foreground flows against
    ambient fluid backgrounds out to N=10^6, plus the per-flow
    throughput/drop analogues of Figures 3 and 4."""
    base = _base_config(args)
    foreground = args.hybrid_foreground or base.hybrid_foreground_flows
    sweep = run_hybrid_sweep(
        args.clients,
        base=base,
        foreground=foreground,
        processes=args.processes,
        **_runner_kwargs(args),
    )
    _emit_figure(figure_hybrid_cov(sweep, base, foreground=foreground), args)
    for figure in (
        figure3_throughput_per_flow(sweep),
        figure4_drops_per_flow(sweep),
    ):
        print()
        print(figure.render_plot())
        print()
        print(figure.render_table())
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    """Regenerate every sweep-derived paper artifact into a directory."""
    import os

    os.makedirs(args.outdir, exist_ok=True)
    base = _base_config(args)

    with open(os.path.join(args.outdir, "table1.txt"), "w") as handle:
        handle.write(
            format_table(
                ["Parameter", "Value"],
                table1_rows(),
                title="Table 1: Simulation Parameters (reconstructed)",
            )
            + "\n"
        )

    print(f"running the protocol sweep over clients={args.clients} ...")
    sweep = run_protocol_sweep(
        args.clients, base=base, processes=args.processes, **_runner_kwargs(args)
    )
    figures = {
        "fig02_cov": figure2_cov(sweep, base),
        "fig03_throughput": figure3_throughput(sweep),
        "fig04_loss": figure4_loss(sweep),
        "fig13_timeout_ratio": figure13_timeout_ratio(sweep),
    }
    for name, figure in figures.items():
        results_to_csv(figure.to_rows(), os.path.join(args.outdir, f"{name}.csv"))
        with open(os.path.join(args.outdir, f"{name}.txt"), "w") as handle:
            handle.write(figure.render_plot() + "\n\n" + figure.render_table() + "\n")
        print(f"wrote {name}.csv / {name}.txt")
    all_metrics = [m.as_dict() for metrics in sweep.values() for m in metrics]
    results_to_csv(all_metrics, os.path.join(args.outdir, "sweep_metrics.csv"))
    print(f"wrote sweep_metrics.csv ({len(all_metrics)} rows) to {args.outdir}")
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    config = _base_config(args).with_(
        protocol=args.protocol, queue=args.queue, n_clients=args.clients
    )
    result = replicate(
        config,
        n_replicas=args.replicas,
        base_seed=args.seed if args.seed is not None else 1,
        processes=args.processes,
        **_runner_kwargs(args),
    )
    print(result.render_table())
    if args.json:
        results_to_json(
            {name: s.values for name, s in result.summaries.items()}, args.json
        )
        print(f"\nwrote {args.json}")
    if args.csv:
        results_to_csv([m.as_dict() for m in result.replicas], args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_dependence(args: argparse.Namespace) -> int:
    config = _base_config(args).with_(
        protocol=args.protocol,
        queue=args.queue,
        n_clients=args.clients,
        record_flow_arrivals=True,
    )
    result = run_scenario(config)
    report = result.dependence()
    print(
        f"{config.label}, {config.n_clients} clients, {config.duration:g}s:"
    )
    if report is None:
        print("(not enough flows with traffic to analyze)")
        return 1
    print(report.describe())
    print(f"aggregate c.o.v. = {result.cov:.4f} "
          f"(analytic Poisson {result.analytic_cov:.4f})")
    if args.json:
        results_to_json(report, args.json)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_cwnd(args: argparse.Namespace) -> int:
    base = _base_config(args)
    result = cwnd_trace_experiment(
        args.protocol,
        args.clients,
        base=base,
        queue=args.queue,
    )
    for flow_id, trace in sorted(result.cwnd_traces.items()):
        print(
            ascii_step_plot(
                trace,
                t_start=0.0,
                t_end=result.config.duration,
                title=(
                    f"cwnd of client {flow_id} "
                    f"({result.config.label}, {args.clients} clients)"
                ),
            )
        )
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The full argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-tcp",
        description="Reproduce the ICDCS 2000 TCP-burstiness experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table 1 parameters")

    run_parser = sub.add_parser("run", help="run one scenario")
    run_parser.add_argument("--protocol", default="reno")
    run_parser.add_argument("--queue", default="fifo")
    run_parser.add_argument("--clients", type=int, default=20)
    _add_common(run_parser)
    _add_workload(run_parser)
    _add_obs(run_parser)

    profile_parser = sub.add_parser(
        "profile", help="profile the event engine over one scenario"
    )
    profile_parser.add_argument("--protocol", default="reno")
    profile_parser.add_argument("--queue", default="fifo")
    profile_parser.add_argument("--clients", type=int, default=20)
    _add_common(profile_parser)
    _add_workload(profile_parser)

    for name, help_text in [
        ("fig2", "c.o.v. vs clients (Figure 2)"),
        ("fig3", "throughput vs clients (Figure 3)"),
        ("fig4", "loss percentage vs clients (Figure 4)"),
        ("fig13", "timeout/dupACK ratio vs clients (Figure 13)"),
    ]:
        figure_parser = sub.add_parser(name, help=help_text)
        figure_parser.add_argument(
            "--clients",
            type=parse_range,
            default=list(range(4, 61, 8)),
            help="client counts, as start:stop:step or a comma list",
        )
        _add_common(figure_parser)

    largen_parser = sub.add_parser(
        "largen",
        help="large-N c.o.v. sweep out to N=500 (timer-wheel fast path)",
    )
    largen_parser.add_argument(
        "--clients",
        type=parse_range,
        default=list(LARGEN_CLIENT_COUNTS),
        help="client counts, as start:stop:step or a comma list",
    )
    _add_common(largen_parser)

    fluid_parser = sub.add_parser(
        "fluid",
        help="mean-field c.o.v. sweep out to N=1e6 (fluid backend)",
    )
    fluid_parser.add_argument(
        "--clients",
        type=parse_range,
        default=list(FLUID_CLIENT_COUNTS),
        help="client counts, as start:stop:step or a comma list",
    )
    _add_common(fluid_parser)

    hybrid_parser = sub.add_parser(
        "hybrid",
        help="hybrid c.o.v. sweep: packet-exact foreground flows "
        "against fluid ambient load out to N=1e6",
    )
    hybrid_parser.add_argument(
        "--clients",
        type=parse_range,
        default=list(HYBRID_CLIENT_COUNTS),
        help="ambient client counts, as start:stop:step or a comma list",
    )
    _add_common(hybrid_parser)

    cwnd_parser = sub.add_parser("cwnd", help="congestion-window traces (Figures 5-12)")
    cwnd_parser.add_argument("--protocol", default="reno")
    cwnd_parser.add_argument("--queue", default="fifo")
    cwnd_parser.add_argument("--clients", type=int, default=20)
    _add_common(cwnd_parser)

    all_parser = sub.add_parser(
        "all", help="regenerate Table 1 and Figures 2/3/4/13 into a directory"
    )
    all_parser.add_argument("--outdir", default="results")
    all_parser.add_argument(
        "--clients",
        type=parse_range,
        default=list(range(4, 61, 8)),
        help="client counts, as start:stop:step or a comma list",
    )
    _add_common(all_parser)

    replicate_parser = sub.add_parser(
        "replicate", help="run one scenario under several seeds (mean +/- CI)"
    )
    replicate_parser.add_argument("--protocol", default="reno")
    replicate_parser.add_argument("--queue", default="fifo")
    replicate_parser.add_argument("--clients", type=int, default=40)
    replicate_parser.add_argument("--replicas", type=int, default=5)
    _add_common(replicate_parser)
    _add_workload(replicate_parser)

    dependence_parser = sub.add_parser(
        "dependence", help="cross-stream dependence diagnostics at the gateway"
    )
    dependence_parser.add_argument("--protocol", default="reno")
    dependence_parser.add_argument("--queue", default="fifo")
    dependence_parser.add_argument("--clients", type=int, default=40)
    _add_common(dependence_parser)

    forensics_parser = sub.add_parser(
        "forensics",
        help="burst forensics: episode segmentation, top-k flow "
        "attribution, loss-synchronization linkage",
    )
    forensics_parser.add_argument("--protocol", default="reno")
    forensics_parser.add_argument("--queue", default="fifo")
    forensics_parser.add_argument("--clients", type=int, default=40)
    forensics_parser.add_argument(
        "--top",
        type=int,
        default=None,
        help="culprits ranked per burst (default 5)",
    )
    forensics_parser.add_argument(
        "--window",
        type=float,
        default=None,
        help="attribution window width, s (default: one round-trip "
        "propagation delay)",
    )
    forensics_parser.add_argument(
        "--sketch",
        type=int,
        default=None,
        help="space-saving counters per window (default: 4 x top-k)",
    )
    forensics_parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="export the forensic series + report into this directory",
    )
    forensics_parser.add_argument(
        "--obs-format",
        choices=["jsonl", "csv"],
        default="jsonl",
        help="series export format (default jsonl)",
    )
    forensics_parser.add_argument(
        "--sweep",
        type=parse_range,
        default=None,
        nargs="?",
        const=list(FORENSICS_CLIENT_COUNTS),
        metavar="CLIENTS",
        help="sweep mode: run the forensics grid (reno/vegas x "
        "fifo/red) over these client counts (start:stop:step or a "
        "comma list; default "
        + ",".join(str(n) for n in FORENSICS_CLIENT_COUNTS)
        + ") and plot burst rate / sync linkage / c.o.v. vs N",
    )
    _add_common(forensics_parser)

    sweeplog_parser = sub.add_parser(
        "sweeplog",
        help="summarize a sweep run log (makespan, worker utilization)",
    )
    sweeplog_parser.add_argument("path", help="JSONL run log (--run-log output)")
    sweeplog_parser.add_argument(
        "--json", default=None, help="write the summary as JSON"
    )
    sweeplog_parser.add_argument(
        "--follow",
        action="store_true",
        help="live dashboard: tail the run log while the sweep runs "
        "(multi-line refresh on a TTY, one status line per update "
        "otherwise); exits when the log's sweep_end arrives",
    )
    sweeplog_parser.add_argument(
        "--interval",
        type=_positive_float,
        default=1.0,
        help="--follow poll interval, seconds (default 1.0)",
    )
    sweeplog_parser.add_argument(
        "--max-updates",
        type=_non_negative_int,
        default=None,
        help="--follow: stop after this many updates (for smoke tests "
        "on logs with no sweep_end)",
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "run": _cmd_run,
        "profile": _cmd_profile,
        "fig2": _cmd_sweep_figure,
        "fig3": _cmd_sweep_figure,
        "fig4": _cmd_sweep_figure,
        "fig13": _cmd_sweep_figure,
        "largen": _cmd_largen,
        "fluid": _cmd_fluid,
        "hybrid": _cmd_hybrid,
        "cwnd": _cmd_cwnd,
        "all": _cmd_all,
        "replicate": _cmd_replicate,
        "dependence": _cmd_dependence,
        "forensics": _cmd_forensics,
        "sweeplog": _cmd_sweeplog,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
